//! Integration tests of the telemetry subsystem: the recorded event
//! stream must be a faithful account of what the sharing engine did.
//!
//! Two properties anchor everything (ISSUE/PR 3):
//!
//! 1. **Conservation** — every `Repartition` event carries a quota
//!    vector summing to the machine's total ways: the engine only ever
//!    moves quota, never creates or destroys it.
//! 2. **Replay** — applying the Repartition stream to the initial quota
//!    vector reproduces `SharingEngine::quotas()` at end of run,
//!    bit-for-bit, for any `--jobs` count.

use proptest::prelude::*;

use nuca_repro::cpusim::l3iface::LastLevel;
use nuca_repro::nuca_core::engine::AdaptiveParams;
use nuca_repro::nuca_core::experiment::{initial_quotas, run_mix_traced, ExperimentConfig};
use nuca_repro::nuca_core::l3::{AdaptiveL3, Organization};
use nuca_repro::simcore::config::MachineConfig;
use nuca_repro::simcore::rng::SimRng;
use nuca_repro::simcore::types::{Address, CoreId, Cycle};
use nuca_repro::telemetry::replay::{check_conservation, replay_quotas};
use nuca_repro::telemetry::{EventKind, Recorder, TraceMeta};
use nuca_repro::tracegen::spec::SpecApp;
use nuca_repro::tracegen::workload::WorkloadPool;

/// Hammers a recorded adaptive L3 with `accesses` random accesses using
/// a short re-evaluation period so repartitions actually happen, then
/// returns the recorder and the final engine quotas.
fn hammer_adaptive(seed: u64, accesses: u64, span: u64) -> (Recorder, Vec<u32>, u64) {
    let cfg = MachineConfig::baseline();
    let params = AdaptiveParams {
        reeval_period: 50,
        ..AdaptiveParams::default()
    };
    let recorder = Recorder::with_capacity(4096);
    let mut l3 = AdaptiveL3::with_sink(&cfg, params, recorder.clone());
    let mut rng = SimRng::seed_from(seed);
    for i in 0..accesses {
        // Skewed traffic: core 0 touches a wide range (many misses),
        // the others reuse small ranges — exactly the imbalance the
        // engine exists to arbitrate.
        let core = CoreId::from_index((rng.next_u64() % 4) as u8);
        let range = if core.index() == 0 {
            span
        } else {
            span / 8 + 1
        };
        let addr = Address::new((rng.next_u64() % range) * 64);
        let write = rng.next_u64().is_multiple_of(4);
        let _ = l3.access(core, addr, write, Cycle::new(i));
    }
    let total = u64::from(cfg.l3.shared.total_ways());
    (recorder, l3.quotas(), total)
}

#[test]
fn repartitions_conserve_quota_and_replay_to_engine_state() {
    let (recorder, final_quotas, total) = hammer_adaptive(7, 60_000, 1 << 22);
    let meta = TraceMeta {
        org: "adaptive".into(),
        cores: 4,
        ring_capacity: 4096,
        initial_quotas: vec![4; 4],
    };
    let trace = recorder.finish(meta, final_quotas.clone());
    assert!(
        trace
            .events
            .iter()
            .any(|r| r.event.kind() == EventKind::Repartition),
        "workload was imbalanced enough to repartition"
    );
    check_conservation(&trace.events, total).expect("quota sum conserved");
    let replayed = replay_quotas(&trace.meta.initial_quotas, &trace.events)
        .expect("repartition stream replays");
    assert_eq!(replayed, final_quotas, "replay lands on engine state");
}

#[test]
fn epoch_snapshots_match_the_repartition_trajectory() {
    let (recorder, final_quotas, _) = hammer_adaptive(11, 40_000, 1 << 21);
    let meta = TraceMeta {
        org: "adaptive".into(),
        cores: 4,
        ring_capacity: 4096,
        initial_quotas: vec![4; 4],
    };
    let trace = recorder.finish(meta, final_quotas);
    // Replay incrementally: at every Epoch event the carried quota
    // vector must equal the state replayed from the Repartitions so far.
    let mut upto = Vec::new();
    let mut checked = 0;
    for record in &trace.events {
        upto.push(record.clone());
        if let nuca_repro::telemetry::Event::Epoch { quotas, .. } = &record.event {
            let replayed = replay_quotas(&trace.meta.initial_quotas, &upto).unwrap();
            assert_eq!(&replayed, quotas, "epoch snapshot at seq {}", record.seq);
            checked += 1;
        }
    }
    assert!(checked > 0, "run crossed at least one epoch boundary");
}

#[test]
fn run_mix_traced_replays_to_final_engine_quotas() {
    let machine = MachineConfig::baseline();
    let exp = ExperimentConfig::quick();
    let mix = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, 1, exp.seed)
        .pop()
        .unwrap();
    let org = Organization::adaptive();
    let (result, trace) = run_mix_traced(&machine, org, &mix, &exp, 8192).unwrap();
    assert_eq!(trace.meta.initial_quotas, initial_quotas(&machine, org));
    let replayed = replay_quotas(&trace.meta.initial_quotas, &trace.events).unwrap();
    assert_eq!(Some(&replayed), result.result.quotas.as_ref());
    assert_eq!(replayed, trace.final_quotas);
    // The same request must trace identically when repeated (the
    // determinism the trace-smoke CI job checks across --jobs values).
    let (_, again) = run_mix_traced(&machine, org, &mix, &exp, 8192).unwrap();
    assert_eq!(trace, again);
}

#[test]
fn disabled_sink_changes_no_results() {
    use nuca_repro::nuca_core::experiment::run_mix;
    let machine = MachineConfig::baseline();
    let exp = ExperimentConfig::quick();
    let mix = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, 1, exp.seed)
        .pop()
        .unwrap();
    let org = Organization::adaptive();
    let untraced = run_mix(&machine, org, &mix, &exp).unwrap();
    let (traced, _) = run_mix_traced(&machine, org, &mix, &exp, 1024).unwrap();
    assert_eq!(
        untraced.result, traced.result,
        "recording must not perturb the simulation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn quota_trajectory_replays_for_arbitrary_seeds(
        seed in 0u64..1_000_000,
        accesses in 10_000u64..40_000,
    ) {
        let (recorder, final_quotas, total) = hammer_adaptive(seed, accesses, 1 << 21);
        let meta = TraceMeta {
            org: "adaptive".into(),
            cores: 4,
            ring_capacity: 4096,
            initial_quotas: vec![4; 4],
        };
        let trace = recorder.finish(meta, final_quotas.clone());
        prop_assert!(check_conservation(&trace.events, total).is_ok());
        let replayed = replay_quotas(&trace.meta.initial_quotas, &trace.events)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(replayed, final_quotas);
        // Sum of the final vector is the machine total, too.
        let sum: u64 = trace.final_quotas.iter().map(|&q| u64::from(q)).sum();
        prop_assert_eq!(sum, total);
    }
}

/// The ring may drop high-frequency events, but never structural ones:
/// replay stays exact under heavy ring pressure.
#[test]
fn replay_survives_ring_pressure() {
    let cfg = MachineConfig::baseline();
    let params = AdaptiveParams {
        reeval_period: 50,
        ..AdaptiveParams::default()
    };
    let recorder = Recorder::with_capacity(16); // tiny ring: most events drop
    let mut l3 = AdaptiveL3::with_sink(&cfg, params, recorder.clone());
    let mut rng = SimRng::seed_from(3);
    for i in 0..50_000u64 {
        let core = CoreId::from_index((rng.next_u64() % 4) as u8);
        let range = if core.index() == 0 { 1 << 22 } else { 1 << 14 };
        let addr = Address::new((rng.next_u64() % range) * 64);
        let _ = l3.access(core, addr, false, Cycle::new(i));
    }
    let final_quotas = l3.quotas();
    let trace = recorder.finish(
        TraceMeta {
            org: "adaptive".into(),
            cores: 4,
            ring_capacity: 16,
            initial_quotas: vec![4; 4],
        },
        final_quotas.clone(),
    );
    assert!(trace.dropped > 0, "the tiny ring must actually drop");
    let replayed = replay_quotas(&trace.meta.initial_quotas, &trace.events).unwrap();
    assert_eq!(replayed, final_quotas);
}
