//! Tests of the parallel-workload extension (the paper's future work):
//! read-shared regions across address spaces.

use nuca_repro::nuca_core::cmp::Cmp;
use nuca_repro::nuca_core::l3::Organization;
use nuca_repro::simcore::config::MachineConfig;
use nuca_repro::simcore::rng::SimRng;
use nuca_repro::simcore::types::Address;
use nuca_repro::tracegen::generator::{is_shared_address, SHARED_BASE};
use nuca_repro::tracegen::spec::SpecApp;
use nuca_repro::tracegen::workload::parallel_workload;
use nuca_repro::tracegen::{OpClass, TraceGenerator};

#[test]
fn shared_addresses_are_recognized_before_and_after_tagging() {
    let a = Address::new(SHARED_BASE + 0x40);
    assert!(is_shared_address(a));
    assert!(is_shared_address(a.with_asid(3)));
    assert!(!is_shared_address(Address::new(0x3000_0000).with_asid(3)));
}

#[test]
fn parallel_profiles_emit_shared_loads() {
    let (profiles, _) = parallel_workload(SpecApp::Galgel, 4, 0.5, 1024, 3);
    let mut gen = TraceGenerator::new(&profiles[0], SimRng::seed_from(3));
    let mut shared_loads = 0;
    let mut loads = 0;
    for _ in 0..50_000 {
        let op = gen.next_op();
        if op.class == OpClass::Load {
            loads += 1;
            if is_shared_address(op.addr.unwrap()) {
                shared_loads += 1;
            }
        }
    }
    let frac = shared_loads as f64 / loads as f64;
    assert!((0.45..0.55).contains(&frac), "shared-load fraction {frac}");
}

#[test]
fn zero_shared_fraction_reproduces_multiprogrammed_mode() {
    // The extension must not perturb the paper's setting.
    let profile = SpecApp::Gzip.profile().clone();
    assert_eq!(profile.shared_read_frac, 0.0);
    let mut gen = TraceGenerator::new(&profile, SimRng::seed_from(5));
    for _ in 0..20_000 {
        if let Some(a) = gen.next_op().addr {
            assert!(!is_shared_address(a));
        }
    }
}

#[test]
fn sharing_organizations_deduplicate_the_shared_region() {
    let machine = MachineConfig::baseline();
    let (profiles, forwards) = parallel_workload(SpecApp::Galgel, 4, 0.4, 1024, 7);

    let run = |org: Organization| {
        let mut cmp = Cmp::with_profiles(&machine, org, &profiles, &forwards, 7).unwrap();
        cmp.warm(400_000);
        cmp.run(100_000);
        cmp.reset_stats();
        cmp.run(150_000);
        cmp.snapshot()
    };

    let private = run(Organization::Private);
    let adaptive = run(Organization::adaptive());

    // Private slices replicate the shared region (4 copies -> more
    // misses); the adaptive organization serves neighbors remotely.
    let adaptive_remote: u64 = adaptive
        .per_core
        .iter()
        .map(|(_, s)| s.l3_remote_hits)
        .sum();
    assert!(adaptive_remote > 0, "cross-core hits must happen");
    assert!(
        adaptive
            .per_core
            .iter()
            .map(|(_, s)| s.l3_misses)
            .sum::<u64>()
            < private
                .per_core
                .iter()
                .map(|(_, s)| s.l3_misses)
                .sum::<u64>(),
        "deduplication must reduce misses"
    );
    assert!(
        adaptive.hmean_ipc > private.hmean_ipc,
        "the paper's hypothesis: the scheme helps parallel workloads too \
         (adaptive {:.4} vs private {:.4})",
        adaptive.hmean_ipc,
        private.hmean_ipc
    );
}

#[test]
fn adaptive_invariants_hold_with_shared_blocks() {
    let machine = MachineConfig::baseline();
    let (profiles, forwards) = parallel_workload(SpecApp::Twolf, 4, 0.5, 512, 13);
    let mut cmp =
        Cmp::with_profiles(&machine, Organization::adaptive(), &profiles, &forwards, 13).unwrap();
    cmp.warm(300_000);
    cmp.run(100_000);
    assert!(cmp.l3().as_adaptive().unwrap().check_invariants());
}
