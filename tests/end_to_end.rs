//! End-to-end integration tests spanning every crate: trace generation →
//! out-of-order cores → last-level organizations → contended memory,
//! driven through the experiment harness.

use nuca_repro::nuca_core::cmp::Cmp;
use nuca_repro::nuca_core::experiment::{
    compare_schemes, run_mix, run_mix_traced, ExperimentConfig,
};
use nuca_repro::nuca_core::l3::Organization;
use nuca_repro::simcore::config::MachineConfig;
use nuca_repro::telemetry::export::render_jsonl;
use nuca_repro::tracegen::spec::SpecApp;
use nuca_repro::tracegen::workload::{Mix, WorkloadPool};

fn exp() -> ExperimentConfig {
    ExperimentConfig::quick()
}

fn mixed() -> Mix {
    Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Gzip, SpecApp::Crafty, SpecApp::Mcf],
        forwards: vec![600_000_000, 700_000_000, 800_000_000, 900_000_000],
    }
}

#[test]
fn every_organization_completes_a_mixed_workload() {
    let machine = MachineConfig::baseline();
    for org in [
        Organization::Private,
        Organization::PrivateScaled { factor: 4 },
        Organization::Shared,
        Organization::adaptive(),
        Organization::Cooperative { seed: 1 },
    ] {
        let r = run_mix(&machine, org, &mixed(), &exp()).unwrap();
        assert_eq!(r.result.per_core.len(), 4, "{}", org.label());
        for (app, s) in &r.result.per_core {
            assert!(s.committed > 0, "{}/{app} made no progress", org.label());
            assert!(s.ipc() > 0.0 && s.ipc() <= 4.0);
        }
        assert!(r.result.hmean_ipc <= r.result.amean_ipc + 1e-9);
        assert!(r.result.memory.requests > 0, "memory saw traffic");
    }
}

#[test]
fn experiments_are_deterministic() {
    let machine = MachineConfig::baseline();
    let a = run_mix(&machine, Organization::adaptive(), &mixed(), &exp()).unwrap();
    let b = run_mix(&machine, Organization::adaptive(), &mixed(), &exp()).unwrap();
    assert_eq!(a.result.per_core, b.result.per_core);
    assert_eq!(a.result.quotas, b.result.quotas);
}

#[test]
fn seed_changes_the_outcome() {
    let machine = MachineConfig::baseline();
    let mut e2 = exp();
    e2.seed += 1;
    let a = run_mix(&machine, Organization::adaptive(), &mixed(), &exp()).unwrap();
    let b = run_mix(&machine, Organization::adaptive(), &mixed(), &e2).unwrap();
    assert_ne!(
        a.result.per_core[0].1.committed,
        b.result.per_core[0].1.committed
    );
}

#[test]
fn schemes_share_identical_workloads() {
    let machine = MachineConfig::baseline();
    let rs = compare_schemes(
        &machine,
        &[
            Organization::Private,
            Organization::Shared,
            Organization::adaptive(),
        ],
        &mixed(),
        &exp(),
    )
    .unwrap();
    for pair in rs.windows(2) {
        assert_eq!(pair[0].mix, pair[1].mix);
        for i in 0..4 {
            assert_eq!(pair[0].result.per_core[i].0, pair[1].result.per_core[i].0);
        }
    }
}

#[test]
fn adaptive_quota_conservation_holds_throughout_a_run() {
    let machine = MachineConfig::baseline();
    let mix = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), 4, 1, 5)
        .pop()
        .unwrap();
    let mut cmp = Cmp::new(&machine, Organization::adaptive(), &mix, 5).unwrap();
    cmp.warm(200_000);
    for _ in 0..20 {
        cmp.run(10_000);
        let quotas = cmp.l3().as_adaptive().unwrap().quotas();
        assert_eq!(quotas.iter().sum::<u32>(), 16, "quota conservation");
        assert!(quotas.iter().all(|&q| (1..=13).contains(&q)));
    }
}

#[test]
fn adaptive_structure_invariants_survive_a_full_run() {
    let machine = MachineConfig::baseline();
    let mut cmp = Cmp::new(&machine, Organization::adaptive(), &mixed(), 9).unwrap();
    cmp.warm(300_000);
    cmp.run(100_000);
    assert!(cmp.l3().as_adaptive().unwrap().check_invariants());
}

#[test]
fn private_org_isolates_cores_but_adaptive_shares() {
    // Under private slices, a light app's L3 stats are independent of its
    // neighbors' appetite; under the adaptive scheme the hungry neighbor
    // borrows capacity (visible as shared-partition hits).
    let machine = MachineConfig::baseline();
    let r = run_mix(&machine, Organization::adaptive(), &mixed(), &exp()).unwrap();
    let total_remote: u64 = r
        .result
        .per_core
        .iter()
        .map(|(_, s)| s.l3_remote_hits)
        .sum();
    assert!(
        total_remote > 0,
        "adaptive scheme produced shared-partition hits"
    );
    let p = run_mix(&machine, Organization::Private, &mixed(), &exp()).unwrap();
    let private_remote: u64 = p
        .result
        .per_core
        .iter()
        .map(|(_, s)| s.l3_remote_hits)
        .sum();
    assert_eq!(private_remote, 0, "private slices never hit remotely");
}

#[test]
fn cooperative_spills_show_up_as_remote_hits() {
    let machine = MachineConfig::baseline();
    let r = run_mix(
        &machine,
        Organization::Cooperative { seed: 3 },
        &mixed(),
        &exp(),
    )
    .unwrap();
    let remote: u64 = r
        .result
        .per_core
        .iter()
        .map(|(_, s)| s.l3_remote_hits)
        .sum();
    assert!(remote > 0, "spilled blocks were found in neighbor slices");
}

#[test]
fn technology_scaled_machine_runs_and_slows_memory() {
    let machine = MachineConfig::baseline();
    let scaled = machine.technology_scaled();
    let base = run_mix(&machine, Organization::Private, &mixed(), &exp()).unwrap();
    let slow = run_mix(&scaled, Organization::Private, &mixed(), &exp()).unwrap();
    // Same workload, slower memory: every core is no faster.
    for i in 0..4 {
        assert!(
            slow.result.ipc[i] <= base.result.ipc[i] * 1.02 + 1e-9,
            "core {i}: scaled {:.4} vs base {:.4}",
            slow.result.ipc[i],
            base.result.ipc[i]
        );
    }
}

#[test]
fn eight_megabyte_l3_reduces_misses() {
    let machine = MachineConfig::baseline();
    let big = machine.with_l3_scale(2).unwrap();
    let mix = Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Art, SpecApp::Twolf, SpecApp::Vpr],
        forwards: vec![700_000_000; 4],
    };
    let small = run_mix(&machine, Organization::Private, &mix, &exp()).unwrap();
    let large = run_mix(&big, Organization::Private, &mix, &exp()).unwrap();
    assert!(
        large.result.total_l3_misses() < small.result.total_l3_misses(),
        "denser cache must miss less for cache-hungry mixes"
    );
}

#[test]
fn sample_sets_zero_is_byte_identical_to_a_full_run() {
    // `--sample-sets 0` means "every set is a member": the estimator
    // wrapper forwards every access, so both the simulated quantities
    // and the CLI's rendered report must match a run without the flag
    // byte for byte (the report prints a sampling line only for a real
    // shift). This pins the wrapper as a true identity at shift 0.
    use nuca_repro::cli::{parse_args, render, run};
    let to_args = |extra: &[&str]| -> Vec<String> {
        let mut v: Vec<String> = [
            "--org",
            "adaptive",
            "--apps",
            "ammp,gzip,crafty,mcf",
            "--warm",
            "200000",
            "--warmup",
            "10000",
            "--measure",
            "60000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    let full_req = parse_args(&to_args(&[])).unwrap();
    let samp_req = parse_args(&to_args(&["--sample-sets", "0"])).unwrap();
    let full = run(&full_req).unwrap();
    let samp = run(&samp_req).unwrap();
    assert_eq!(full.per_core, samp.per_core);
    assert_eq!(full.ipc, samp.ipc);
    assert_eq!(full.memory, samp.memory);
    assert_eq!(full.quotas, samp.quotas);
    let report = samp.sampling.expect("sampled run carries a report");
    assert_eq!(report.shift, 0);
    assert_eq!(report.sampled_sets, report.total_sets);
    assert_eq!(report.estimated_accesses, 0);
    assert_eq!(
        render(&full_req, "adaptive", &full),
        render(&samp_req, "adaptive", &samp),
        "rendered reports must be byte-identical at shift 0"
    );
}

#[test]
fn cycle_skip_is_invisible_end_to_end() {
    // The event-driven fast path must be a pure execution policy: for
    // every organization, the measured window, the figure-feeding rows
    // and the *byte-rendered* telemetry stream match the reference
    // stepping loop exactly.
    let machine = MachineConfig::baseline();
    for org in [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
    ] {
        let (fast, fast_trace) =
            run_mix_traced(&machine, org, &mixed(), &exp().with_cycle_skip(true), 4096).unwrap();
        let (slow, slow_trace) =
            run_mix_traced(&machine, org, &mixed(), &exp().with_cycle_skip(false), 4096).unwrap();
        assert_eq!(fast.result, slow.result, "{} window differs", org.label());
        assert_eq!(
            render_jsonl(std::slice::from_ref(&fast_trace)),
            render_jsonl(std::slice::from_ref(&slow_trace)),
            "{} telemetry JSONL differs",
            org.label()
        );
    }
    // And through the multi-cell figure harness: the scheme-comparison
    // rows (what every figure consumes) are bit-identical too.
    let orgs = [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
    ];
    let rows_fast =
        compare_schemes(&machine, &orgs, &mixed(), &exp().with_cycle_skip(true)).unwrap();
    let rows_slow =
        compare_schemes(&machine, &orgs, &mixed(), &exp().with_cycle_skip(false)).unwrap();
    assert_eq!(rows_fast, rows_slow);
}

#[test]
fn time_sample_zero_gap_is_byte_identical_end_to_end() {
    // A `detail:0` schedule has no functional gaps: the scheduler must
    // collapse to the plain detailed path, so the measured window, the
    // byte-rendered telemetry stream and the CLI report all match a run
    // without the flag exactly — for every organization kind.
    let machine = MachineConfig::baseline();
    for org in [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
        Organization::Cooperative { seed: 1 },
    ] {
        let (full, full_trace) = run_mix_traced(&machine, org, &mixed(), &exp(), 4096).unwrap();
        let (ts, ts_trace) = run_mix_traced(
            &machine,
            org,
            &mixed(),
            &exp().with_time_sample(Some((5_000, 0))),
            4096,
        )
        .unwrap();
        assert_eq!(full.result, ts.result, "{} window differs", org.label());
        assert!(
            ts.result.time_sampling.is_none(),
            "a 0-gap schedule is full detail and reports no estimate"
        );
        assert_eq!(
            render_jsonl(std::slice::from_ref(&full_trace)),
            render_jsonl(std::slice::from_ref(&ts_trace)),
            "{} telemetry JSONL differs",
            org.label()
        );
    }

    // And the CLI surface: stdout must be byte-identical too.
    use nuca_repro::cli::{parse_args, render, run};
    let to_args = |extra: &[&str]| -> Vec<String> {
        let mut v: Vec<String> = [
            "--org",
            "adaptive",
            "--apps",
            "ammp,gzip,crafty,mcf",
            "--warm",
            "200000",
            "--warmup",
            "10000",
            "--measure",
            "60000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    let full_req = parse_args(&to_args(&[])).unwrap();
    let ts_req = parse_args(&to_args(&["--time-sample", "5000:0"])).unwrap();
    let full = run(&full_req).unwrap();
    let ts = run(&ts_req).unwrap();
    assert_eq!(full, ts);
    assert_eq!(
        render(&full_req, "adaptive", &full),
        render(&ts_req, "adaptive", &ts),
        "rendered reports must be byte-identical at gap 0"
    );
}

#[test]
fn time_sampling_composes_with_set_sampling() {
    // The two sampling dimensions are orthogonal: a run can estimate
    // over time (detailed windows) and over space (a subset of L3 sets)
    // at once. Both accuracy reports must be present and consistent,
    // and the composition must stay deterministic.
    let machine = MachineConfig::baseline();
    let run = || {
        run_mix(
            &machine,
            Organization::adaptive(),
            &mixed(),
            &exp()
                .with_sample_sets(Some(2))
                .with_time_sample(Some((3_000, 9_000))),
        )
        .unwrap()
    };
    let a = run();
    let ts = a.result.time_sampling.expect("time-sampling report");
    let samp = a.result.sampling.expect("set-sampling report");
    assert_eq!((ts.detail, ts.gap), (3_000, 9_000));
    assert!(ts.windows >= 2, "the quick window fits several periods");
    assert_eq!(
        ts.detailed_cycles + ts.functional_cycles,
        exp().measure_cycles
    );
    assert_eq!(samp.shift, 2);
    assert!(ts.mean_window_hmean_ipc > 0.0);
    assert!(a.result.hmean_ipc > 0.0 && a.result.hmean_ipc <= 4.0);
    // Estimated IPC comes from detailed cycles only: what the windows
    // committed is a strict subset of the raw counter, which also
    // counts functional retires.
    for (i, (_, s)) in a.result.per_core.iter().enumerate() {
        let detailed_committed = a.result.ipc[i] * ts.detailed_cycles as f64;
        assert!(detailed_committed > 0.0);
        assert!(detailed_committed < s.committed as f64);
    }
    let b = run();
    assert_eq!(a.result, b.result, "composition must stay deterministic");
}

#[test]
fn no_fast_path_is_invisible_end_to_end() {
    // The fused TLB+L1 probe, way/page memos, slab decode and pipeline
    // bookkeeping bypass are pure search-order optimizations: turning
    // them off with `--no-fast-path` must change nothing — not the
    // measured window, not the byte-rendered telemetry stream, not the
    // CLI report — for every organization kind.
    let machine = MachineConfig::baseline();
    for org in [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
        Organization::Cooperative { seed: 1 },
    ] {
        let (fast, fast_trace) = run_mix_traced(&machine, org, &mixed(), &exp(), 4096).unwrap();
        let (slow, slow_trace) =
            run_mix_traced(&machine, org, &mixed(), &exp().with_fast_path(false), 4096).unwrap();
        assert_eq!(fast.result, slow.result, "{} window differs", org.label());
        assert_eq!(
            render_jsonl(std::slice::from_ref(&fast_trace)),
            render_jsonl(std::slice::from_ref(&slow_trace)),
            "{} telemetry JSONL differs",
            org.label()
        );
    }

    // And the CLI surface: stdout must be byte-identical too.
    use nuca_repro::cli::{parse_args, render, run};
    let to_args = |extra: &[&str]| -> Vec<String> {
        let mut v: Vec<String> = [
            "--org",
            "adaptive",
            "--apps",
            "ammp,gzip,crafty,mcf",
            "--warm",
            "200000",
            "--warmup",
            "10000",
            "--measure",
            "60000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    let fast_req = parse_args(&to_args(&[])).unwrap();
    let slow_req = parse_args(&to_args(&["--no-fast-path"])).unwrap();
    let fast = run(&fast_req).unwrap();
    let slow = run(&slow_req).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(
        render(&fast_req, "adaptive", &fast),
        render(&slow_req, "adaptive", &slow),
        "rendered reports must be byte-identical without the fast path"
    );
}
