//! Robustness tests: configurations away from the paper's defaults
//! (different core counts, tiny caches, extreme parameters) must still
//! behave correctly — the paper's §6 claims the scheme "will scale to
//! systems with a higher processor count".

// Test-harness helpers may panic freely; clippy's in-tests exemption only
// covers #[test] fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_repro::nuca_core::cmp::Cmp;
use nuca_repro::nuca_core::engine::AdaptiveParams;
use nuca_repro::nuca_core::experiment::{run_mix, ExperimentConfig};
use nuca_repro::nuca_core::l3::Organization;
use nuca_repro::simcore::config::{MachineConfig, MachineConfigBuilder};
use nuca_repro::tracegen::spec::SpecApp;
use nuca_repro::tracegen::workload::Mix;

fn exp() -> ExperimentConfig {
    ExperimentConfig::quick()
}

fn machine_with_cores(cores: usize) -> MachineConfig {
    MachineConfigBuilder::new()
        .cores(cores)
        .l3_capacity(cores as u64 * 1024 * 1024)
        .build()
        .unwrap()
}

#[test]
fn two_core_chip_runs_every_organization() {
    let machine = machine_with_cores(2);
    let mix = Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Crafty],
        forwards: vec![600_000_000, 700_000_000],
    };
    for org in [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
        Organization::Cooperative { seed: 2 },
    ] {
        let r = run_mix(&machine, org, &mix, &exp()).unwrap();
        assert_eq!(r.result.per_core.len(), 2, "{}", org.label());
        assert!(r.result.hmean_ipc > 0.0, "{}", org.label());
        if let Some(q) = &r.result.quotas {
            assert_eq!(q.iter().sum::<u32>(), 8, "2-core chip has 8 aggregate ways");
        }
    }
}

#[test]
fn eight_core_chip_scales() {
    let machine = machine_with_cores(8);
    let mix = Mix {
        apps: vec![
            SpecApp::Ammp,
            SpecApp::Gzip,
            SpecApp::Crafty,
            SpecApp::Eon,
            SpecApp::Mcf,
            SpecApp::Mesa,
            SpecApp::Art,
            SpecApp::Gap,
        ],
        forwards: vec![600_000_000; 8],
    };
    let r = run_mix(&machine, Organization::adaptive(), &mix, &exp()).unwrap();
    assert_eq!(r.result.per_core.len(), 8);
    let quotas = r.result.quotas.unwrap();
    assert_eq!(quotas.iter().sum::<u32>(), 32);
    assert!(quotas.iter().all(|&q| q >= 1));
    for (app, s) in &r.result.per_core {
        assert!(s.committed > 0, "{app} stalled on the 8-core chip");
    }
}

#[test]
fn extreme_reeval_periods_are_stable() {
    let machine = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Gzip, SpecApp::Swim, SpecApp::Eon],
        forwards: vec![500_000_000; 4],
    };
    for period in [1u64, 10, 1_000_000_000] {
        let params = AdaptiveParams {
            reeval_period: period,
            ..AdaptiveParams::default()
        };
        let r = run_mix(&machine, Organization::Adaptive(params), &mix, &exp()).unwrap();
        let quotas = r.result.quotas.unwrap();
        assert_eq!(quotas.iter().sum::<u32>(), 16, "period {period}");
    }
}

#[test]
fn shared_reserve_extremes_preserve_invariants() {
    let machine = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![SpecApp::Art, SpecApp::Mcf, SpecApp::Gzip, SpecApp::Lucas],
        forwards: vec![500_000_000; 4],
    };
    for reserve in [0u32, 1, 2, 4] {
        let params = AdaptiveParams {
            shared_reserve: reserve,
            ..AdaptiveParams::default()
        };
        let mut cmp = Cmp::new(&machine, Organization::Adaptive(params), &mix, 3).unwrap();
        cmp.warm(150_000);
        cmp.run(30_000);
        assert!(
            cmp.l3().as_adaptive().unwrap().check_invariants(),
            "reserve {reserve}"
        );
    }
}

#[test]
fn shadow_sampling_shift_changes_cost_not_correctness() {
    let machine = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Gzip, SpecApp::Crafty, SpecApp::Eon],
        forwards: vec![500_000_000; 4],
    };
    let full = run_mix(&machine, Organization::adaptive(), &mix, &exp()).unwrap();
    let params = AdaptiveParams {
        shadow_sampling: nuca_repro::cachesim::shadow::SetSampling::LowestIndex { shift: 4 },
        ..AdaptiveParams::default()
    };
    let sampled = run_mix(&machine, Organization::Adaptive(params), &mix, &exp()).unwrap();
    // Sampled estimation must stay in the same ballpark (the paper:
    // ±0.1% at full scale; quick scale is noisier, so allow 15%).
    let ratio = sampled.result.hmean_ipc / full.result.hmean_ipc;
    assert!(
        (0.85..1.15).contains(&ratio),
        "sampling changed hmean by {ratio}"
    );
}

#[test]
fn duplicate_applications_on_all_cores_are_fine() {
    // The paper's 3x ammp + wupwise experiment: duplicates must coexist
    // (distinct address spaces via ASIDs).
    let machine = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![
            SpecApp::Ammp,
            SpecApp::Ammp,
            SpecApp::Ammp,
            SpecApp::Wupwise,
        ],
        forwards: vec![500_000_000, 800_000_000, 1_100_000_000, 900_000_000],
    };
    let r = run_mix(&machine, Organization::adaptive(), &mix, &exp()).unwrap();
    for i in 0..3 {
        assert!(r.result.ipc[i] > 0.0);
    }
    // The three ammp instances see statistically similar service.
    let a = r.result.ipc[0];
    let b = r.result.ipc[1];
    let c = r.result.ipc[2];
    let max = a.max(b).max(c);
    let min = a.min(b).min(c);
    assert!(min > 0.3 * max, "ammp instances diverged: {a} {b} {c}");
}

#[test]
fn zero_l3_traffic_app_is_harmless() {
    // An app that fits entirely in L1 must not confuse the quota engine.
    let machine = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![SpecApp::Eon, SpecApp::Eon, SpecApp::Eon, SpecApp::Eon],
        forwards: vec![500_000_000; 4],
    };
    let r = run_mix(&machine, Organization::adaptive(), &mix, &exp()).unwrap();
    let quotas = r.result.quotas.unwrap();
    assert_eq!(quotas.iter().sum::<u32>(), 16);
    for (_, s) in &r.result.per_core {
        assert!(s.ipc() > 0.3, "light app should run fast, got {}", s.ipc());
    }
}

#[test]
fn cooperative_scheme_handles_two_cores() {
    // random_neighbor with exactly one neighbor must always pick it.
    let machine = machine_with_cores(2);
    let mix = Mix {
        apps: vec![SpecApp::Gzip, SpecApp::Crafty],
        forwards: vec![500_000_000; 2],
    };
    let r = run_mix(
        &machine,
        Organization::Cooperative { seed: 1 },
        &mix,
        &exp(),
    )
    .unwrap();
    assert!(r.result.hmean_ipc > 0.0);
}
