//! Integration tests of the campaign engine against the *committed*
//! spec files: every spec under `specs/` must parse and render to a
//! fixed point, and the smoke spec must honor the engine's byte-level
//! contracts (shard merge ≡ serial, kill + resume ≡ uninterrupted)
//! end to end through the public API the `nuca-sim campaign`
//! subcommand drives.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;
use std::path::{Path, PathBuf};

use nuca_repro::campaign::runner::{run_campaign, Event, RunOptions};
use nuca_repro::campaign::spec::CampaignSpec;
use nuca_repro::campaign::{driver, manifest};

fn specs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("specs")
}

fn committed_specs() -> Vec<(String, String)> {
    let mut specs: Vec<(String, String)> = fs::read_dir(specs_dir())
        .expect("specs/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name, fs::read_to_string(&p).expect("readable spec"))
        })
        .collect();
    specs.sort();
    specs
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nuca-campaign-it-{}-{name}", std::process::id()))
}

fn smoke_spec() -> CampaignSpec {
    let text = fs::read_to_string(specs_dir().join("smoke.toml")).expect("smoke spec");
    CampaignSpec::parse(&text).expect("smoke spec parses")
}

fn run_to(spec: &CampaignSpec, opts: RunOptions) -> nuca_repro::campaign::runner::Report {
    let _ = fs::remove_file(&opts.out);
    run_campaign(spec, &opts, &mut |_| {}).expect("campaign runs")
}

#[test]
fn every_committed_spec_parses_and_renders_to_a_fixed_point() {
    let specs = committed_specs();
    assert!(
        specs.len() >= 7,
        "expected the full committed spec set, found {}",
        specs.len()
    );
    for (name, text) in specs {
        let spec = CampaignSpec::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!spec.cells().is_empty(), "{name}: empty grid");
        // render() is the canonical form: parsing it back must
        // reproduce both the spec and the rendering byte-for-byte.
        let canon = spec.render();
        let reparsed = CampaignSpec::parse(&canon).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(spec, reparsed, "{name}: render round-trip drifted");
        assert_eq!(canon, reparsed.render(), "{name}: render not a fixed point");
    }
}

#[test]
fn smoke_spec_shards_merge_and_resume_byte_identically() {
    let spec = smoke_spec();

    // Uninterrupted single-process reference manifest.
    let serial_out = tmp("serial.jsonl");
    let report = run_to(
        &spec,
        RunOptions {
            jobs: 2,
            out: serial_out.clone(),
            ..RunOptions::default()
        },
    );
    assert_eq!(report.ran, 4, "smoke spec is a 4-cell grid");
    let serial = fs::read(&serial_out).expect("serial manifest");

    // Two shards, run independently, merged: same bytes.
    let shard_out = [tmp("s1.jsonl"), tmp("s2.jsonl")];
    for (k, out) in shard_out.iter().enumerate() {
        run_to(
            &spec,
            RunOptions {
                jobs: 2,
                shard: (k as u32 + 1, 2),
                out: out.clone(),
                ..RunOptions::default()
            },
        );
    }
    let merged = manifest::merge(&shard_out).expect("merge");
    assert_eq!(merged.into_bytes(), serial, "shard merge diverged");

    // Kill shard 1 after one appended line, resume it, and the manifest
    // must match the uninterrupted shard byte-for-byte.
    let killed_out = tmp("s1-killed.jsonl");
    let mut killed_events = Vec::new();
    let _ = fs::remove_file(&killed_out);
    let killed = run_campaign(
        &spec,
        &RunOptions {
            jobs: 2,
            shard: (1, 2),
            fail_after: Some(1),
            out: killed_out.clone(),
            ..RunOptions::default()
        },
        &mut |e| killed_events.push(e.clone()),
    )
    .expect("killed invocation still reports");
    assert!(killed.killed);
    assert!(killed_events
        .iter()
        .any(|e| matches!(e, Event::Killed { appended: 1 })));

    let resumed = run_campaign(
        &spec,
        &RunOptions {
            jobs: 2,
            shard: (1, 2),
            resume: true,
            out: killed_out.clone(),
            ..RunOptions::default()
        },
        &mut |_| {},
    )
    .expect("resume");
    assert!(!resumed.killed);
    assert_eq!(resumed.skipped, 1, "resume skips the completed cell");
    assert_eq!(
        fs::read(&killed_out).expect("resumed manifest"),
        fs::read(&shard_out[0]).expect("uninterrupted shard"),
        "kill + resume diverged from the uninterrupted shard"
    );

    // The merge subcommand (what CI's campaign-smoke job calls) agrees.
    let merged2_out = tmp("merged2.jsonl");
    let mut printed = Vec::new();
    let code = driver::run(
        &[
            "merge".to_string(),
            merged2_out.to_string_lossy().into_owned(),
            killed_out.to_string_lossy().into_owned(),
            shard_out[1].to_string_lossy().into_owned(),
        ],
        &mut |line| printed.push(line.to_string()),
    );
    assert_eq!(code, 0, "merge subcommand failed: {printed:?}");
    assert_eq!(
        fs::read(&merged2_out).expect("merged manifest"),
        serial,
        "driver merge diverged from the serial manifest"
    );

    for p in [serial_out, killed_out, merged2_out]
        .into_iter()
        .chain(shard_out)
    {
        let _ = fs::remove_file(p);
    }
}
