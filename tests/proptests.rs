//! Property-based tests (proptest) of the core data structures and the
//! invariants listed in DESIGN.md §6.

use proptest::prelude::*;

use nuca_repro::cachesim::cache::Cache;
use nuca_repro::cachesim::lru::LruStack;
use nuca_repro::cpusim::l3iface::LastLevel;
use nuca_repro::nuca_core::engine::{AdaptiveParams, SharingEngine};
use nuca_repro::nuca_core::l3::AdaptiveL3;
use nuca_repro::simcore::config::{CacheGeometry, MachineConfigBuilder};
use nuca_repro::simcore::rng::SimRng;
use nuca_repro::simcore::stats::{arithmetic_mean, geometric_mean, harmonic_mean};
use nuca_repro::simcore::types::{Address, BlockAddr, CoreId, Cycle};

// ---------------------------------------------------------------------
// LRU stack vs a reference model.

#[derive(Debug, Clone)]
enum LruOp {
    Touch(u8),
    PushMru(u8),
    PopLru,
    Remove(u8),
}

fn lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (0u8..16).prop_map(LruOp::Touch),
        (0u8..16).prop_map(LruOp::PushMru),
        Just(LruOp::PopLru),
        (0u8..16).prop_map(LruOp::Remove),
    ]
}

proptest! {
    #[test]
    fn lru_stack_matches_reference_model(ops in proptest::collection::vec(lru_op(), 0..200)) {
        let mut stack = LruStack::new();
        let mut model: Vec<u8> = Vec::new(); // front = MRU
        for op in ops {
            match op {
                LruOp::Touch(w) => {
                    stack.touch(w);
                    model.retain(|&x| x != w);
                    model.insert(0, w);
                }
                LruOp::PushMru(w) => {
                    if !model.contains(&w) {
                        stack.push_mru(w);
                        model.insert(0, w);
                    }
                }
                LruOp::PopLru => {
                    prop_assert_eq!(stack.pop_lru(), model.pop());
                }
                LruOp::Remove(w) => {
                    let present = model.contains(&w);
                    prop_assert_eq!(stack.remove(w), present);
                    model.retain(|&x| x != w);
                }
            }
            prop_assert_eq!(stack.iter_from_mru().collect::<Vec<_>>(), model.clone());
            prop_assert_eq!(stack.lru(), model.last().copied());
            prop_assert_eq!(stack.mru(), model.first().copied());
        }
    }
}

// ---------------------------------------------------------------------
// Set-associative cache vs a reference LRU model.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cache_matches_reference_lru(
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..400)
    ) {
        // 2 sets x 4 ways; addresses cover 64 blocks so conflicts abound.
        let geom = CacheGeometry::new(512, 4, 64, 1).unwrap();
        let mut cache = Cache::new(geom);
        let core = CoreId::from_index(0);
        // Reference: per-set vector of block numbers, front = MRU.
        let mut model: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for (blk, write) in accesses {
            let addr = Address::new(blk * 64);
            let set = (blk % 2) as usize;
            let hit = cache.access(addr, write, core).is_hit();
            let model_hit = model[set].contains(&blk);
            prop_assert_eq!(hit, model_hit, "block {} set {}", blk, set);
            if hit {
                model[set].retain(|&b| b != blk);
                model[set].insert(0, blk);
            } else {
                cache.fill(addr, write, core);
                model[set].insert(0, blk);
                model[set].truncate(4);
            }
            prop_assert!(cache.check_invariants());
        }
    }
}

// ---------------------------------------------------------------------
// Sharing engine: quota conservation under arbitrary event sequences.

#[derive(Debug, Clone)]
enum EngineOp {
    LruHit(u8),
    Evict(u8, u64),
    Miss(u8, u64),
}

fn engine_op() -> impl Strategy<Value = EngineOp> {
    prop_oneof![
        (0u8..4).prop_map(EngineOp::LruHit),
        (0u8..4, 0u64..64).prop_map(|(c, t)| EngineOp::Evict(c, t)),
        (0u8..4, 0u64..64).prop_map(|(c, t)| EngineOp::Miss(c, t)),
    ]
}

proptest! {
    #[test]
    fn engine_quotas_conserve_under_any_events(
        ops in proptest::collection::vec(engine_op(), 0..2000),
        period in 1u64..50,
    ) {
        let params = AdaptiveParams { reeval_period: period, ..AdaptiveParams::default() };
        let mut eng = SharingEngine::new(16, 4, 16, 4, params);
        for op in ops {
            match op {
                EngineOp::LruHit(c) => eng.record_lru_hit(CoreId::from_index(c)),
                EngineOp::Evict(c, t) => {
                    eng.record_eviction((t % 16) as usize, CoreId::from_index(c), BlockAddr::new(t))
                }
                EngineOp::Miss(c, t) => {
                    eng.observe_miss((t % 16) as usize, CoreId::from_index(c), BlockAddr::new(t));
                }
            }
            prop_assert!(eng.check_invariants());
        }
    }
}

// ---------------------------------------------------------------------
// Adaptive L3: structural invariants under random multiprogrammed
// access streams (DESIGN.md §6).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn adaptive_l3_invariants_under_random_streams(seed in 0u64..1000, period in 10u64..500) {
        let cfg = MachineConfigBuilder::new()
            .l3_capacity(16 * 16 * 64) // 16 sets
            .build()
            .unwrap();
        let params = AdaptiveParams { reeval_period: period, ..AdaptiveParams::default() };
        let mut l3 = AdaptiveL3::new(&cfg, params);
        let mut rng = SimRng::seed_from(seed);
        for i in 0..4_000u64 {
            let core = CoreId::from_index(rng.below(4) as u8);
            let addr = Address::new(rng.below(1 << 13) * 64).with_asid(core.asid());
            l3.access(core, addr, rng.chance(0.3), Cycle::new(i * 7));
        }
        prop_assert!(l3.check_invariants());
        let quotas = l3.quotas();
        prop_assert_eq!(quotas.iter().sum::<u32>(), 16);
    }
}

// ---------------------------------------------------------------------
// Unified Invariant audit: the structured audit (simcore::invariant)
// reports zero violations after EVERY step of a random multi-core trace,
// not just at the end — in particular across quota re-evaluation
// boundaries, where lazy repartitioning transiently relabels ways. The
// paper's production period is 2000 misses; tiny periods force many
// re-evaluations inside one short trace.

fn reeval_period() -> impl Strategy<Value = u64> {
    prop_oneof![
        5u64..40,      // many boundary crossings per trace
        Just(2000u64)  // the paper's default period
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn adaptive_l3_audit_is_clean_after_every_step(
        seed in 0u64..1000,
        period in reeval_period(),
    ) {
        use nuca_repro::simcore::invariant::Invariant;

        let cfg = MachineConfigBuilder::new()
            .l3_capacity(16 * 16 * 64) // 16 sets
            .build()
            .unwrap();
        let params = AdaptiveParams { reeval_period: period, ..AdaptiveParams::default() };
        let mut l3 = AdaptiveL3::new(&cfg, params);
        let mut rng = SimRng::seed_from(seed);
        for i in 0..1_500u64 {
            let core = CoreId::from_index(rng.below(4) as u8);
            let addr = Address::new(rng.below(1 << 13) * 64).with_asid(core.asid());
            l3.access(core, addr, rng.chance(0.3), Cycle::new(i * 7));
            let violations = l3.audit();
            prop_assert!(
                violations.is_empty(),
                "step {} (period {}): {:?}",
                i,
                period,
                violations
            );
        }
        // The bool wrapper and the structured audit must agree.
        prop_assert!(l3.check_invariants());
    }
}

// ---------------------------------------------------------------------
// Statistics: mean inequalities and determinism of the RNG.

proptest! {
    #[test]
    fn mean_inequality_chain(values in proptest::collection::vec(0.01f64..10.0, 1..20)) {
        let h = harmonic_mean(&values);
        let g = geometric_mean(&values);
        let a = arithmetic_mean(&values);
        prop_assert!(h <= g + 1e-9);
        prop_assert!(g <= a + 1e-9);
    }

    #[test]
    fn rng_below_is_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

// ---------------------------------------------------------------------
// Trace generators: every op stream is well-formed for any profile knobs.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn generated_streams_are_well_formed(
        seed in any::<u64>(),
        loads in 0.05f64..0.35,
        stores in 0.02f64..0.15,
        branches in 0.02f64..0.25,
        hot_kb in 64u64..2048,
        skew in 1.0f64..3.0,
        loop_frac in 0.0f64..1.0,
    ) {
        use nuca_repro::tracegen::profile::AppProfileBuilder;
        use nuca_repro::tracegen::TraceGenerator;
        let profile = AppProfileBuilder::new("prop")
            .loads(loads)
            .stores(stores)
            .branches(branches)
            .hot_kb(hot_kb)
            .hot_skew(skew)
            .hot_loop(loop_frac)
            .build()
            .unwrap();
        let mut gen = TraceGenerator::new(&profile, SimRng::seed_from(seed));
        for _ in 0..500 {
            let op = gen.next_op();
            prop_assert!(op.dep1 >= 1);
            prop_assert!(op.latency >= 1);
            if op.class.is_mem() {
                prop_assert!(op.addr.is_some());
            } else {
                prop_assert!(op.addr.is_none());
            }
        }
    }
}

// ---------------------------------------------------------------------
// SWAR digest probes vs the scalar reference walk.

use nuca_repro::cachesim::swar::LANES;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn swar_probe_matches_scalar_reference(
        tags in proptest::collection::vec(0u64..(1 << 40), 1..17),
        probes in proptest::collection::vec(0u64..(1 << 40), 1..64),
    ) {
        use nuca_repro::cachesim::swar::{digest, TagFilter};
        // One set holding `tags`; the filter mirrors it digest-for-digest.
        let ways = tags.len();
        let mut filter = TagFilter::new(1, ways);
        for (w, &t) in tags.iter().enumerate() {
            filter.record(0, w, digest(t));
        }
        for probe in probes.iter().chain(tags.iter()) {
            // Reference: first way whose tag matches, low to high.
            let scalar = tags.iter().position(|&t| t == *probe);
            // SWAR: walk the candidate mask low-to-high, confirming each
            // digest hit against the real tag.
            // The cache pairs the mask with its valid mask: lanes past
            // the recorded ways hold the zero digest and must be ignored.
            let valid = (1u32 << ways) - 1;
            let mut mask = filter.candidates(0, digest(*probe)) & valid;
            let mut swar = None;
            while mask != 0 {
                let w = mask.trailing_zeros() as usize;
                if tags[w] == *probe {
                    swar = Some(w);
                    break;
                }
                mask &= mask - 1;
            }
            prop_assert_eq!(swar, scalar, "probe {:#x} against {:?}", probe, tags);
            // The filter can never miss a real match (no false negatives):
            // every way whose tag equals the probe must be in the mask.
            let mask = filter.candidates(0, digest(*probe)) & valid;
            for (w, &t) in tags.iter().enumerate() {
                if t == *probe {
                    prop_assert!(mask & (1 << w) != 0, "way {} dropped", w);
                }
            }
        }
    }

    #[test]
    fn match_mask_flags_exactly_the_matching_lanes(
        digests in proptest::collection::vec(any::<u8>(), LANES..LANES + 1),
        needle in any::<u8>(),
    ) {
        use nuca_repro::cachesim::swar::match_mask;
        let mut word = 0u64;
        for (lane, &d) in digests.iter().enumerate() {
            word |= (d as u64) << (lane * 8);
        }
        let mask = match_mask(word, needle);
        for (lane, &d) in digests.iter().enumerate() {
            let flagged = mask & (1 << lane) != 0;
            prop_assert_eq!(flagged, d == needle, "lane {} digest {:#x}", lane, d);
        }
    }
}

// ---------------------------------------------------------------------
// Campaign snapshot/fork (DESIGN.md §9): functional warm-up, snapshot,
// restore into a fresh chip, timed run — bit-identical to warming and
// running straight through, across randomized organizations, latency
// points and workload mixes. This is the property that lets a campaign
// pay one warm-up per (machine, mix) and fork it across latency axes.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn snapshot_restore_run_equals_run_through(
        org_pick in 0u8..4,
        l2_latency in 9u64..12,
        l3_shared_latency in 14u64..17,
        neighbor_extra in 0u64..6,
        first_chunk_extra in 0u64..81,
        mix_seed in 1u64..1_000,
        seed in 1u64..1_000,
    ) {
        use nuca_repro::nuca_core::cmp::Cmp;
        use nuca_repro::nuca_core::l3::Organization;
        use nuca_repro::simcore::config::MachineConfig;
        use nuca_repro::tracegen::spec::SpecApp;
        use nuca_repro::tracegen::workload::WorkloadPool;

        let org = match org_pick {
            0 => Organization::Private,
            1 => Organization::Shared,
            2 => Organization::adaptive(),
            _ => Organization::Cooperative { seed: 7 },
        };
        let mut cfg = MachineConfig::baseline();
        cfg.l2 = cfg.l2.with_latency(l2_latency);
        cfg.l3.shared = cfg.l3.shared.with_latency(l3_shared_latency);
        cfg.l3.neighbor_latency = 19 + neighbor_extra;
        cfg.memory.first_chunk_private = 258 + first_chunk_extra;
        cfg.memory.first_chunk_shared = 260 + first_chunk_extra;
        let mix = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), 4, 1, mix_seed)
            .pop()
            .unwrap();

        let mut through = Cmp::new(&cfg, org, &mix, seed).unwrap();
        through.warm(4_000);
        let bytes = through.save_chip_state().unwrap();

        let mut forked = Cmp::new(&cfg, org, &mix, seed).unwrap();
        forked.load_chip_state(&bytes).unwrap();

        let finish = |cmp: &mut Cmp| {
            cmp.run(2_000);
            cmp.reset_stats();
            cmp.run(4_000);
            cmp.snapshot()
        };
        prop_assert_eq!(finish(&mut through), finish(&mut forked));
    }
}

// ---------------------------------------------------------------------
// Time sampling: the functional-gap engine vs the warm reference, and
// window-boundary state integrity (DESIGN.md §8 "Time sampling").

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn functional_gap_engine_matches_the_warm_reference_state(
        org_pick in 0u8..2,
        cycles in 2_000u64..12_000,
        l2_latency in 9u64..12,
        first_chunk_extra in 0u64..81,
        mix_seed in 1u64..1_000,
        seed in 1u64..1_000,
    ) {
        use nuca_repro::nuca_core::cmp::Cmp;
        use nuca_repro::nuca_core::l3::Organization;
        use nuca_repro::simcore::config::MachineConfig;
        use nuca_repro::tracegen::spec::SpecApp;
        use nuca_repro::tracegen::workload::WorkloadPool;

        // Non-adaptive organizations: the only difference between the
        // warm path and a functional gap is the adaptation freeze, so
        // with no adaptation the two engines must produce bit-identical
        // chip state from bit-identical histories.
        let org = if org_pick == 0 { Organization::Private } else { Organization::Shared };
        let mix = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), 4, 1, mix_seed)
            .pop()
            .unwrap();
        let cfg = MachineConfig::baseline();

        let mut warmed = Cmp::new(&cfg, org, &mix, seed).unwrap();
        warmed.warm(cycles);
        let warm_bytes = warmed.save_chip_state().unwrap();

        let mut gapped = Cmp::new(&cfg, org, &mix, seed).unwrap();
        gapped.run_functional(cycles);
        let gap_bytes = gapped.save_chip_state().unwrap();
        prop_assert_eq!(&warm_bytes, &gap_bytes, "gap engine diverged from warm");

        // And the functional state is latency-insensitive: no timing
        // model runs in a gap, so latency knobs must not leak into it.
        let mut slow_cfg = cfg;
        slow_cfg.l2 = slow_cfg.l2.with_latency(l2_latency);
        slow_cfg.memory.first_chunk_private = 258 + first_chunk_extra;
        slow_cfg.memory.first_chunk_shared = 260 + first_chunk_extra;
        let mut slow = Cmp::new(&slow_cfg, org, &mix, seed).unwrap();
        slow.run_functional(cycles);
        prop_assert_eq!(
            &gap_bytes,
            &slow.save_chip_state().unwrap(),
            "functional gaps must be latency-insensitive"
        );
    }

    #[test]
    fn time_sampled_boundary_state_forks_deterministically(
        org_pick in 0u8..3,
        detail in 500u64..3_000,
        gap in 1_000u64..8_000,
        seed in 1u64..1_000,
    ) {
        use nuca_repro::nuca_core::cmp::Cmp;
        use nuca_repro::nuca_core::l3::Organization;
        use nuca_repro::simcore::config::MachineConfig;
        use nuca_repro::tracegen::spec::SpecApp;
        use nuca_repro::tracegen::workload::WorkloadPool;

        // Window boundaries leave the chip in a coherent, quiescent
        // state: a snapshot taken after a time-sampled run forks into a
        // fresh chip that continues exactly like the original.
        let org = match org_pick {
            0 => Organization::Private,
            1 => Organization::Shared,
            _ => Organization::adaptive(),
        };
        let cfg = MachineConfig::baseline();
        let mix = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), 4, 1, seed)
            .pop()
            .unwrap();
        let mut through = Cmp::new(&cfg, org, &mix, seed).unwrap();
        through.set_time_sample(detail, gap);
        through.warm(4_000);
        // A whole number of detail+gap periods ends the run on a window
        // boundary: the gap drained the pipelines, so the chip is
        // quiescent and snapshot-able right there (mid-window it is
        // not, by design — the detailed pipeline is in flight).
        through.run(2 * (detail + gap));
        prop_assert!(through.audit().is_empty());
        let bytes = through.save_chip_state().unwrap();

        let mut forked = Cmp::new(&cfg, org, &mix, seed).unwrap();
        forked.load_chip_state(&bytes).unwrap();
        forked.set_time_sample(detail, gap);

        let finish = |cmp: &mut Cmp| {
            cmp.reset_stats();
            cmp.run(8_000);
            cmp.snapshot()
        };
        prop_assert_eq!(finish(&mut through), finish(&mut forked));
    }
}

// ---------------------------------------------------------------------
// The fused TLB+L1 probe vs the sequential reference walk.

use nuca_repro::cpusim::fastpath::fused_hit;
use nuca_repro::cpusim::tlb::Tlb;
use nuca_repro::simcore::config::TlbConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn fused_probe_equals_sequential_walk_any_geometry(
        seed in any::<u64>(),
        entries in 1usize..24,
        assoc in 1u32..=32,
        sets_log in 0u32..3,
        addr_pages in 2u64..40,
    ) {
        // Covers both LRU representations: packed nibbles up to 16 ways
        // and the wide LruStack facade for 17–32 ways. The fused probe
        // (with reference fallback on a failed probe) and the plain
        // sequential TLB-then-L1 walk must produce the same verdicts and
        // leave bit-identical snapshots behind.
        let sets = 1u64 << sets_log;
        let geom = CacheGeometry::new(sets * u64::from(assoc) * 64, assoc, 64, 1).unwrap();
        let cfg = TlbConfig { entries, miss_penalty: 30 };
        let (mut ft, mut fc) = (Tlb::new(cfg), Cache::new(geom));
        let (mut rt, mut rc) = (Tlb::new(cfg), Cache::new(geom));
        let core = CoreId::from_index(0);
        let mut rng = SimRng::seed_from(seed);
        for i in 0..2_000u32 {
            let addr = Address::new(rng.below(addr_pages << 12) & !7);
            let write = rng.chance(0.3);
            let fused = fused_hit(&mut ft, &mut fc, addr, write);
            if !fused {
                ft.access(addr);
                if !fc.access(addr, write, core).is_hit() {
                    fc.fill(addr, write, core);
                }
            }
            let tlb_hit = rt.access(addr);
            let l1_hit = rc.access(addr, write, core).is_hit();
            if !l1_hit {
                rc.fill(addr, write, core);
            }
            prop_assert_eq!(fused, tlb_hit && l1_hit, "op {}", i);
        }
        prop_assert_eq!((ft.hits(), ft.misses()), (rt.hits(), rt.misses()));
        prop_assert_eq!(fc.stats(), rc.stats());
        let enc = |f: &dyn Fn(&mut nuca_repro::simcore::snapshot::SnapshotWriter)| {
            let mut w = nuca_repro::simcore::snapshot::SnapshotWriter::new();
            f(&mut w);
            w.finish()
        };
        prop_assert_eq!(enc(&|w| ft.save_state(w)), enc(&|w| rt.save_state(w)));
        prop_assert_eq!(enc(&|w| fc.save_state(w)), enc(&|w| rc.save_state(w)));
    }
}

// ---------------------------------------------------------------------
// Block (slab) trace decode vs the one-at-a-time reference decode.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn slab_decode_equals_one_at_a_time(
        seed in any::<u64>(),
        loads in 0.05f64..0.35,
        stores in 0.02f64..0.15,
        branches in 0.02f64..0.25,
        hot_kb in 64u64..2048,
        skew in 1.0f64..3.0,
        loop_frac in 0.0f64..1.0,
        ops in 65usize..300,
        ff in 0u64..200,
    ) {
        // The 64-op decoded slab must be invisible: same op stream, same
        // logical position, same snapshot — for any profile, any seed,
        // any fast-forward offset, and op counts that cross slab
        // boundaries.
        use nuca_repro::tracegen::profile::AppProfileBuilder;
        use nuca_repro::tracegen::TraceGenerator;
        let profile = AppProfileBuilder::new("prop-slab")
            .loads(loads)
            .stores(stores)
            .branches(branches)
            .hot_kb(hot_kb)
            .hot_skew(skew)
            .hot_loop(loop_frac)
            .build()
            .unwrap();
        let mut slab = TraceGenerator::new(&profile, SimRng::seed_from(seed));
        slab.set_slab(true);
        let mut one = TraceGenerator::new(&profile, SimRng::seed_from(seed));
        one.set_slab(false);
        slab.fast_forward(ff);
        one.fast_forward(ff);
        for i in 0..ops {
            prop_assert_eq!(slab.next_op(), one.next_op(), "op {}", i);
            prop_assert_eq!(slab.ops_generated(), one.ops_generated());
        }
        let enc = |g: &TraceGenerator| {
            let mut w = nuca_repro::simcore::snapshot::SnapshotWriter::new();
            g.save_state(&mut w);
            w.finish()
        };
        prop_assert_eq!(enc(&slab), enc(&one));
    }
}
