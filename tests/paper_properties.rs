//! Paper-shape assertions: the qualitative results of the evaluation
//! section must hold in this reproduction (moderate scale, so these are
//! slower than unit tests but still minutes, not hours).

use nuca_repro::nuca_core::cost::CostModel;
use nuca_repro::nuca_core::experiment::{run_mix, sensitivity_sweep, ExperimentConfig};
use nuca_repro::nuca_core::l3::Organization;
use nuca_repro::simcore::config::MachineConfig;
use nuca_repro::tracegen::spec::SpecApp;
use nuca_repro::tracegen::workload::{Mix, WorkloadPool};

/// Mid-sized experiment: large enough for stable orderings.
fn exp() -> ExperimentConfig {
    ExperimentConfig {
        warm_instructions: 1_200_000,
        warmup_cycles: 500_000,
        measure_cycles: 600_000,
        seed: 2007,
        jobs: 1,
        cycle_skip: true,
        fast_path: true,
        sample_shift: None,
        time_sample: None,
    }
}

#[test]
fn figure3_mcf_is_flat_and_gzip_saturates() {
    let machine = MachineConfig::baseline();
    let e = exp();
    let mcf = sensitivity_sweep(&machine, SpecApp::Mcf, &[1, 4, 16], &e).unwrap();
    // mcf: one block per set suffices; extra ways change little.
    let flat = mcf[2].misses as f64 / mcf[0].misses as f64;
    assert!(flat > 0.85, "mcf must be insensitive, got ratio {flat}");

    let gzip = sensitivity_sweep(&machine, SpecApp::Gzip, &[1, 4, 16], &e).unwrap();
    let drop_at_4 = gzip[1].misses as f64 / gzip[0].misses as f64;
    let tail = gzip[2].misses as f64 / gzip[1].misses as f64;
    assert!(
        drop_at_4 < 0.8,
        "gzip gains most of its hits by 4 ways ({drop_at_4})"
    );
    assert!(tail > 0.5, "gzip is mostly satisfied at 4 ways ({tail})");
}

#[test]
fn figure3_ammp_keeps_improving_past_four_ways() {
    let machine = MachineConfig::baseline();
    let pts = sensitivity_sweep(&machine, SpecApp::Ammp, &[4, 16], &exp()).unwrap();
    assert!(
        (pts[1].misses as f64) < 0.8 * pts[0].misses as f64,
        "ammp: 16 ways must clearly beat 4 ({} vs {})",
        pts[1].misses,
        pts[0].misses
    );
}

#[test]
fn figure7_precondition_big_cache_apps_gain_from_4x_private() {
    // The paper: ammp, art, twolf and vpr benefit from a 4x-larger
    // private cache; mcf does not.
    let machine = MachineConfig::baseline();
    let e = exp();
    for (app, wants_capacity) in [
        (SpecApp::Ammp, true),
        (SpecApp::Art, true),
        (SpecApp::Mcf, false),
    ] {
        let mix = WorkloadPool::homogeneous(app, 4, e.seed);
        let small = run_mix(&machine, Organization::Private, &mix, &e).unwrap();
        let large = run_mix(
            &machine,
            Organization::PrivateScaled { factor: 4 },
            &mix,
            &e,
        )
        .unwrap();
        let ratio = large.result.per_core[0].1.ipc() / small.result.per_core[0].1.ipc();
        if wants_capacity {
            assert!(
                ratio > 1.5,
                "{app}: 4x private must help a lot, got {ratio:.2}"
            );
        } else {
            assert!(
                ratio < 1.4,
                "{app}: 4x private must not help much, got {ratio:.2}"
            );
        }
    }
}

#[test]
fn adaptive_funds_the_cache_hungry_core() {
    // One hungry app among light partners: the sharing engine must move
    // blocks/set toward it (the core of the paper's contribution).
    let machine = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![
            SpecApp::Ammp,
            SpecApp::Crafty,
            SpecApp::Eon,
            SpecApp::Wupwise,
        ],
        forwards: vec![700_000_000; 4],
    };
    let r = run_mix(&machine, Organization::adaptive(), &mix, &exp()).unwrap();
    let quotas = r.result.quotas.expect("adaptive quotas");
    assert!(
        quotas[0] >= 6,
        "ammp should accumulate quota, got {quotas:?}"
    );

    // And that funding must translate into performance vs private slices.
    let p = run_mix(&machine, Organization::Private, &mix, &exp()).unwrap();
    assert!(
        r.result.ipc[0] > p.result.ipc[0] * 1.05,
        "ammp must speed up: adaptive {:.4} vs private {:.4}",
        r.result.ipc[0],
        p.result.ipc[0]
    );
    assert!(
        r.result.hmean_ipc > p.result.hmean_ipc,
        "harmonic mean must improve: {:.4} vs {:.4}",
        r.result.hmean_ipc,
        p.result.hmean_ipc
    );
}

#[test]
fn adaptive_beats_cooperative_on_memory_intensive_mixes() {
    // Figure 11's headline: controlled sharing beats uncontrolled
    // random-replacement spilling when all cores compete.
    let machine = MachineConfig::baseline();
    let e = exp();
    let mixes = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), 4, 3, e.seed);
    let mut adaptive_total = 0.0;
    let mut coop_total = 0.0;
    for mix in &mixes {
        adaptive_total += run_mix(&machine, Organization::adaptive(), mix, &e)
            .unwrap()
            .result
            .hmean_ipc;
        coop_total += run_mix(
            &machine,
            Organization::Cooperative { seed: e.seed },
            mix,
            &e,
        )
        .unwrap()
        .result
        .hmean_ipc;
    }
    assert!(
        adaptive_total > coop_total,
        "adaptive {adaptive_total:.4} must beat cooperative {coop_total:.4}"
    );
}

#[test]
fn section_2_7_storage_cost_is_152_kbits() {
    let cost = CostModel::for_machine(&MachineConfig::baseline());
    assert_eq!(cost.total_kbits().round() as u64, 152);
    assert!((cost.shadow_fraction() - 0.16).abs() < 0.01);
    assert!((cost.core_id_fraction() - 0.84).abs() < 0.01);
    let overhead = cost.overhead_fraction(4 * 1024 * 1024);
    assert!(overhead < 0.006, "overhead {overhead} must stay ~0.5%");
}

#[test]
fn figure5_threshold_examples() {
    // Spot-check two apps per class at figure scale rather than running
    // all 24 (the fig5 binary covers the full set).
    use nuca_repro::nuca_core::experiment::classify;
    let machine = MachineConfig::baseline();
    let rows = classify(&machine, &exp()).unwrap();
    let lookup = |app: SpecApp| rows.iter().find(|r| r.app == app).unwrap();
    assert!(lookup(SpecApp::Gzip).intensive);
    assert!(lookup(SpecApp::Art).intensive);
    assert!(!lookup(SpecApp::Crafty).intensive);
    assert!(!lookup(SpecApp::Eon).intensive);
}
