//! `nuca-sim` — run one NUCA CMP simulation from the command line.
//!
//! See `nuca-sim --help` for usage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("campaign") {
        let code = campaign::driver::run(&args[1..], &mut |line| println!("{line}"));
        return ExitCode::from(code.clamp(0, 255) as u8);
    }
    let request = match nuca_repro::cli::parse_args(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match nuca_repro::cli::run_all(&request) {
        Ok(results) => {
            for (i, (label, result)) in results.iter().enumerate() {
                if i > 0 {
                    println!();
                }
                print!("{}", nuca_repro::cli::render(&request, label, result));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
