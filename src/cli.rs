//! Command-line driver: configure and run one simulation without writing
//! any Rust. Used by the `nuca-sim` binary.
//!
//! ```text
//! nuca-sim --org adaptive --apps ammp,gzip,crafty,eon
//! nuca-sim --org shared --apps art,mesa,gap,facerec --measure 2000000
//! nuca-sim --org adaptive --parallel galgel:0.4:2048 --tech-scaled
//! nuca-sim --org private,shared,adaptive --apps ammp,art,twolf,vpr --jobs 3
//! ```

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use nuca_core::cmp::{Cmp, CmpResult};
use nuca_core::engine::AdaptiveParams;
use nuca_core::l3::Organization;
use simcore::config::MachineConfig;
use simcore::error::ConfigError;
use telemetry::{Recorder, Sink, Trace, TraceMeta};
use tracegen::profile::AppProfile;
use tracegen::spec::SpecApp;
use tracegen::workload::{parallel_workload, WorkloadPool};

/// How many trailing telemetry events a paranoid failure report dumps.
const PARANOID_TAIL: usize = 32;

/// A fully parsed simulation request.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// The machine to simulate.
    pub machine: MachineConfig,
    /// The last-level organizations to run, in request order. Each one
    /// is an independent simulation cell; [`run_all`] executes them on
    /// `jobs` worker threads.
    pub organizations: Vec<Organization>,
    /// One profile handle per core (replicated workloads share one
    /// allocation).
    pub profiles: Vec<Arc<AppProfile>>,
    /// Fast-forward per core.
    pub forwards: Vec<u64>,
    /// Functional warm instructions per core.
    pub warm_instructions: u64,
    /// Timed warm-up cycles.
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
    /// Master seed.
    pub seed: u64,
    /// Audit L3 structural invariants after every step (slow).
    pub paranoid: bool,
    /// Advance time event-driven, skipping fully-stalled windows.
    /// Execution policy only: results are bit-identical either way, and
    /// `--no-skip` forces the reference stepping loop.
    pub cycle_skip: bool,
    /// Use the exact core-side hit fast path (fused TLB+L1 probe,
    /// memo-served lookups, slab-decoded traces). Execution policy only:
    /// results are bit-identical either way, and `--no-fast-path` forces
    /// the reference walks.
    pub fast_path: bool,
    /// Worker threads for running the organizations (`0` = one per
    /// available core). Results are bit-identical for every value.
    pub jobs: usize,
    /// Set-sampled simulation: `Some(k)` simulates `1/2^k` of the L3
    /// sets fully and estimates the rest (results carry confidence
    /// bounds); `Some(0)` exercises the estimator wrapper with full
    /// membership, which is bit-identical to `None`.
    pub sample_shift: Option<u32>,
    /// Time-sampled simulation: `Some((detail, gap))` alternates
    /// `detail` detailed cycles with `gap` functionally warmed cycles
    /// (results carry SMARTS confidence bounds); a zero gap is
    /// bit-identical to `None`.
    pub time_sample: Option<(u64, u64)>,
    /// Write a JSONL event trace here (one section per organization, in
    /// request order; identical for every `jobs` value).
    pub trace: Option<PathBuf>,
    /// Write the aggregated metrics JSON document here.
    pub metrics_out: Option<PathBuf>,
}

impl SimRequest {
    /// Whether this request records telemetry: any export target, or
    /// `--paranoid` (so a failing audit can dump the event-ring tail).
    pub fn recording(&self) -> bool {
        self.trace.is_some() || self.metrics_out.is_some() || self.paranoid
    }
}

/// Error from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl CliError {
    fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError(e.to_string())
    }
}

/// Usage text for the `nuca-sim` binary.
pub const USAGE: &str = "\
nuca-sim — simulate a multiprogrammed or parallel workload on a NUCA CMP

USAGE:
    nuca-sim --org <ORGS> (--apps <A,B,C,D> | --parallel <APP:FRAC:KB>) [OPTIONS]
    nuca-sim campaign <spec.toml> [--out PATH] [--shard K/N] [--resume]
                      [--jobs N] [--sample-sets K] [--fail-after N]
    nuca-sim campaign merge <merged.jsonl> <shard.jsonl>...

    The campaign subcommand expands a declarative sweep spec (see
    specs/*.toml and DESIGN.md) into a cell grid and runs it with
    warm-state forking, crash-safe sharding and --resume.

REQUIRED:
    --org <ORGS>           comma-separated list drawn from: private |
                           private4x | shared | adaptive | cooperative
                           (each runs as an independent simulation)
    --apps <LIST>          comma-separated SPEC2000 names, one per core
    --parallel <SPEC>      instead of --apps: APP:SHARED_FRAC:SHARED_KB
                           (e.g. galgel:0.4:2048) replicated on every core

OPTIONS:
    --seed <N>             master seed                     [default: 2007]
    --warm <N>             functional warm instructions    [default: 3000000]
    --warmup <N>           timed warm-up cycles            [default: 1000000]
    --measure <N>          measured cycles                 [default: 1500000]
    --l3-mb <N>            aggregate L3 capacity in MiB    [default: 4]
    --tech-scaled          apply the Figure 10 latency scaling
    --reeval <N>           adaptive re-evaluation period   [default: 2000]
    --jobs <N>             worker threads for the organization list
                           (0 = one per core; output is bit-identical
                           to --jobs 1)                    [default: 1]
    --paranoid             audit L3 structural invariants after every
                           timed step; abort on the first violation (slow),
                           dumping the tail of the telemetry event ring
    --no-skip              disable event-driven cycle skipping and run the
                           reference stepping loop (bit-identical output,
                           slower; exists as a differential check)
    --no-fast-path         disable the exact core-side hit fast path
                           (fused TLB+L1 probe, memo-served lookups,
                           slab-decoded traces) and run the reference
                           walks (bit-identical output, slower; exists
                           as a differential check)
    --sample-sets <K>      simulate only 1/2^K of the L3 sets in full
                           detail and charge the rest a calibrated
                           latency estimate (SMARTS-style confidence
                           bounds are reported; 0 = full membership
                           through the estimator, bit-identical to
                           omitting the flag)
    --time-sample <D:G>    alternate D cycle-accurate cycles with G
                           functionally warmed cycles (caches, quotas
                           and predictors stay warm; pipeline timing is
                           skipped). IPC comes from the detailed windows
                           with SMARTS confidence bounds; a gap of 0 is
                           bit-identical to omitting the flag
    --trace <PATH>         write a JSONL event trace covering every
                           requested organization (sections in request
                           order; identical for every --jobs value)
    --metrics-out <PATH>   write the aggregated metrics JSON document
    --help                 print this text
";

/// Parses command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError`] with a human-readable message for any invalid or
/// missing argument.
pub fn parse_args(args: &[String]) -> Result<SimRequest, CliError> {
    let mut org_name: Option<String> = None;
    let mut apps: Option<Vec<SpecApp>> = None;
    let mut parallel: Option<(SpecApp, f64, u64)> = None;
    let mut seed = 2007u64;
    let mut warm = 3_000_000u64;
    let mut warmup = 1_000_000u64;
    let mut measure = 1_500_000u64;
    let mut l3_mb = 4u64;
    let mut tech_scaled = false;
    let mut reeval = 2000u64;
    let mut paranoid = false;
    let mut cycle_skip = true;
    let mut fast_path = true;
    let mut jobs = 1usize;
    let mut sample_shift: Option<u32> = None;
    let mut time_sample: Option<(u64, u64)> = None;
    let mut trace: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::new(format!("{what} requires a value")))
        };
        match arg.as_str() {
            "--org" => org_name = Some(value("--org")?.clone()),
            "--apps" => {
                let list = value("--apps")?;
                let parsed: Result<Vec<SpecApp>, _> = list
                    .split(',')
                    .map(|s| s.trim().parse::<SpecApp>())
                    .collect();
                apps = Some(parsed.map_err(|e| CliError::new(e.to_string()))?);
            }
            "--parallel" => {
                let spec = value("--parallel")?;
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() != 3 {
                    return Err(CliError::new("--parallel expects APP:FRAC:KB"));
                }
                let app = parts[0]
                    .parse::<SpecApp>()
                    .map_err(|e| CliError::new(e.to_string()))?;
                let frac = parts[1]
                    .parse::<f64>()
                    .map_err(|_| CliError::new("bad shared fraction"))?;
                let kb = parts[2]
                    .parse::<u64>()
                    .map_err(|_| CliError::new("bad shared size"))?;
                parallel = Some((app, frac, kb));
            }
            "--seed" => seed = parse_u64(value("--seed")?)?,
            "--warm" => warm = parse_u64(value("--warm")?)?,
            "--warmup" => warmup = parse_u64(value("--warmup")?)?,
            "--measure" => measure = parse_u64(value("--measure")?)?,
            "--l3-mb" => l3_mb = parse_u64(value("--l3-mb")?)?,
            "--reeval" => reeval = parse_u64(value("--reeval")?)?,
            "--jobs" => {
                jobs = simcore::parallel::resolve_jobs(parse_u64(value("--jobs")?)? as usize)
            }
            "--sample-sets" => sample_shift = Some(parse_u64(value("--sample-sets")?)? as u32),
            "--time-sample" => {
                let v = value("--time-sample")?;
                let (d, g) = v
                    .split_once(':')
                    .ok_or_else(|| CliError::new("--time-sample expects DETAIL:GAP"))?;
                let pair = (parse_u64(d)?, parse_u64(g)?);
                if pair.0 == 0 && pair.1 > 0 {
                    return Err(CliError::new(
                        "--time-sample needs a detail window > 0 when the gap is > 0 \
                         (there would be no detailed cycles to measure IPC from)",
                    ));
                }
                time_sample = Some(pair);
            }
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--metrics-out" => metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--tech-scaled" => tech_scaled = true,
            "--paranoid" => paranoid = true,
            "--no-skip" => cycle_skip = false,
            "--no-fast-path" => fast_path = false,
            "--help" | "-h" => return Err(CliError::new(USAGE)),
            other => return Err(CliError::new(format!("unknown argument: {other}"))),
        }
    }

    let mut machine = simcore::config::MachineConfigBuilder::new()
        .l3_capacity(l3_mb * 1024 * 1024)
        .build()?;
    if tech_scaled {
        machine = machine.technology_scaled();
    }
    if sample_shift.is_some() {
        machine.l3.sample_shift = sample_shift;
        machine.validate()?;
    }

    let organizations = match org_name.as_deref() {
        Some(list) => list
            .split(',')
            .map(|name| match name.trim() {
                "private" => Ok(Organization::Private),
                "private4x" => Ok(Organization::PrivateScaled { factor: 4 }),
                "shared" => Ok(Organization::Shared),
                "adaptive" => Ok(Organization::Adaptive(AdaptiveParams {
                    reeval_period: reeval,
                    ..AdaptiveParams::default()
                })),
                "cooperative" => Ok(Organization::Cooperative { seed }),
                other => Err(CliError::new(format!("unknown organization: {other}"))),
            })
            .collect::<Result<Vec<Organization>, CliError>>()?,
        None => return Err(CliError::new("--org is required (see --help)")),
    };
    if organizations.is_empty() {
        return Err(CliError::new("--org needs at least one organization"));
    }
    if paranoid && time_sample.is_some_and(|(_, gap)| gap > 0) {
        return Err(CliError::new(
            "--paranoid audits every timed cycle and cannot be combined with \
             a non-zero --time-sample gap",
        ));
    }

    let (profiles, forwards) = match (apps, parallel) {
        (Some(apps), None) => {
            if apps.len() != machine.cores {
                return Err(CliError::new(format!(
                    "need exactly {} applications, got {}",
                    machine.cores,
                    apps.len()
                )));
            }
            let profiles = apps.iter().map(|a| Arc::new(a.profile().clone())).collect();
            let mix = WorkloadPool::random_mixes(&apps, machine.cores, 1, seed)
                .pop()
                .ok_or_else(|| CliError::new("workload pool produced no mix"))?;
            (profiles, mix.forwards)
        }
        (None, Some((app, frac, kb))) => parallel_workload(app, machine.cores, frac, kb, seed),
        (Some(_), Some(_)) => {
            return Err(CliError::new(
                "--apps and --parallel are mutually exclusive",
            ))
        }
        (None, None) => return Err(CliError::new("one of --apps or --parallel is required")),
    };

    Ok(SimRequest {
        machine,
        organizations,
        profiles,
        forwards,
        warm_instructions: warm,
        warmup_cycles: warmup,
        measure_cycles: measure,
        seed,
        paranoid,
        cycle_skip,
        fast_path,
        jobs,
        sample_shift,
        time_sample,
        trace,
        metrics_out,
    })
}

fn parse_u64(s: &str) -> Result<u64, CliError> {
    s.replace('_', "")
        .parse::<u64>()
        .map_err(|_| CliError::new(format!("expected a number, got {s}")))
}

/// Runs the request's first organization to completion (the common
/// single-organization invocation).
///
/// With `paranoid` set, the L3 structure is audited after every timed
/// step (warm-up and measurement), and the run aborts with the violation
/// list at the first inconsistency.
///
/// # Errors
///
/// Returns [`CliError`] if no organization was requested, the chip
/// cannot be built, or a paranoid run finds a structural violation.
pub fn run(req: &SimRequest) -> Result<CmpResult, CliError> {
    let org = *req
        .organizations
        .first()
        .ok_or_else(|| CliError::new("no organization requested"))?;
    run_one(req, org).map(|(result, _)| result)
}

/// Runs every requested organization — on `req.jobs` worker threads via
/// the deterministic runner — and returns `(label, result)` pairs in
/// request order. Output is bit-identical for every `jobs` value.
///
/// When `--trace` / `--metrics-out` were requested, this is also where
/// the files are written: one JSONL trace with a section per
/// organization in request order, and one metrics document.
///
/// # Errors
///
/// Returns the first (in request order) [`CliError`] from any run, or a
/// file-system error from writing an export target.
pub fn run_all(req: &SimRequest) -> Result<Vec<(&'static str, CmpResult)>, CliError> {
    let outcomes: Result<Vec<_>, CliError> =
        simcore::parallel::map_slice(req.jobs, &req.organizations, |&org| {
            run_one(req, org).map(|(result, trace)| (org.label(), result, trace))
        })
        .into_iter()
        .collect();
    let mut results = Vec::new();
    let mut traces: Vec<Trace> = Vec::new();
    for (label, result, trace) in outcomes? {
        results.push((label, result));
        traces.extend(trace);
    }
    if let Some(path) = &req.trace {
        write_export(path, &telemetry::export::render_jsonl(&traces))?;
    }
    if let Some(path) = &req.metrics_out {
        write_export(path, &telemetry::export::metrics_json(&traces).render())?;
    }
    Ok(results)
}

fn write_export(path: &PathBuf, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents)
        .map_err(|e| CliError::new(format!("cannot write {}: {e}", path.display())))
}

fn run_one(req: &SimRequest, org: Organization) -> Result<(CmpResult, Option<Trace>), CliError> {
    if req.recording() {
        let recorder = Recorder::with_capacity(Recorder::DEFAULT_CAPACITY);
        let mut cmp = Cmp::with_profiles_and_sink(
            &req.machine,
            org,
            &req.profiles,
            &req.forwards,
            req.seed,
            recorder.clone(),
        )?;
        let result = drive(&mut cmp, req, Some(&recorder))?;
        let meta = TraceMeta {
            org: org.label().to_string(),
            cores: req.machine.cores,
            ring_capacity: Recorder::DEFAULT_CAPACITY,
            initial_quotas: nuca_core::experiment::initial_quotas(&req.machine, org),
        };
        let trace = recorder.finish(meta, result.quotas.clone().unwrap_or_default());
        Ok((result, Some(trace)))
    } else {
        let mut cmp =
            Cmp::with_profiles(&req.machine, org, &req.profiles, &req.forwards, req.seed)?;
        Ok((drive(&mut cmp, req, None)?, None))
    }
}

fn drive<S: Sink>(
    cmp: &mut Cmp<S>,
    req: &SimRequest,
    recorder: Option<&Recorder>,
) -> Result<CmpResult, CliError> {
    cmp.set_cycle_skip(req.cycle_skip);
    cmp.set_fast_path(req.fast_path);
    if let Some((detail, gap)) = req.time_sample {
        cmp.set_time_sample(detail, gap);
    }
    cmp.warm(req.warm_instructions);
    if req.paranoid {
        paranoid_phase(cmp, req.warmup_cycles, "warm-up", recorder)?;
        cmp.reset_stats();
        paranoid_phase(cmp, req.measure_cycles, "measurement", recorder)?;
    } else {
        cmp.run(req.warmup_cycles);
        cmp.reset_stats();
        cmp.run(req.measure_cycles);
    }
    Ok(cmp.snapshot())
}

fn paranoid_phase<S: Sink>(
    cmp: &mut Cmp<S>,
    cycles: u64,
    phase: &str,
    recorder: Option<&Recorder>,
) -> Result<(), CliError> {
    cmp.run_paranoid(cycles).map_err(|(cycle, violations)| {
        use std::fmt::Write as _;
        let mut msg = format!(
            "paranoid audit failed during {phase} at cycle {}: {} violation(s)",
            cycle.raw(),
            violations.len()
        );
        for v in violations {
            let _ = write!(msg, "\n  {v}");
        }
        if let Some(rec) = recorder {
            let tail = rec.tail(PARANOID_TAIL);
            let _ = write!(
                msg,
                "\nlast {} of {} telemetry events:",
                tail.len(),
                rec.emitted()
            );
            for r in &tail {
                let _ = write!(
                    msg,
                    "\n  [seq {} cycle {}] {:?}",
                    r.seq,
                    r.at.raw(),
                    r.event
                );
            }
        }
        CliError::new(msg)
    })
}

/// Renders one organization's result the way the `fig*` binaries do.
pub fn render(req: &SimRequest, org_label: &str, result: &CmpResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "organization : {org_label}");
    let _ = writeln!(
        out,
        "window       : {} warm instr + {} warm-up + {} measured cycles (seed {})",
        req.warm_instructions, req.warmup_cycles, req.measure_cycles, req.seed
    );
    // `result.ipc[i]` equals `s.ipc()` on full-detail runs and is the
    // detailed-window estimate on time-sampled ones (raw counters also
    // count functional retires, so `s.ipc()` would be meaningless
    // there).
    for (i, (app, s)) in result.per_core.iter().enumerate() {
        let _ = writeln!(
            out,
            "core {i} {app:<8} IPC {:.4}  L3 acc {:>7}  local {:>7}  remote {:>6}  miss {:>7}",
            result.ipc[i], s.l3_accesses, s.l3_local_hits, s.l3_remote_hits, s.l3_misses
        );
    }
    let _ = writeln!(out, "harmonic IPC : {:.4}", result.hmean_ipc);
    let _ = writeln!(out, "average IPC  : {:.4}", result.amean_ipc);
    if let Some(q) = &result.quotas {
        let _ = writeln!(out, "quotas       : {q:?}");
    }
    // Shift 0 (full membership through the estimator) prints nothing, so
    // its output stays byte-identical to a full run — the e2e
    // differential test depends on that.
    if let Some(samp) = &result.sampling {
        if samp.shift > 0 {
            let _ = writeln!(
                out,
                "sampling     : {}/{} sets (shift {}), {} sampled / {} estimated accesses, mean L3 {:.1} cyc, rel err {:.3}% (95% CI)",
                samp.sampled_sets,
                samp.total_sets,
                samp.shift,
                samp.sampled_accesses,
                samp.estimated_accesses,
                samp.mean_latency,
                samp.relative_error * 100.0
            );
        }
    }
    // A `None` report (full-detail runs, including a 0-gap schedule)
    // prints nothing, keeping `--time-sample d:0` output byte-identical
    // to a plain run — the e2e differential test depends on that.
    if let Some(ts) = &result.time_sampling {
        let _ = writeln!(
            out,
            "time-sample  : {} full windows of {} cycles + {}-cycle gaps ({} detailed / {} functional cycles), window hmean IPC {:.4} ± {:.3}% (95% CI)",
            ts.windows,
            ts.detail,
            ts.gap,
            ts.detailed_cycles,
            ts.functional_cycles,
            ts.mean_window_hmean_ipc,
            ts.relative_ci95 * 100.0
        );
    }
    if req.paranoid {
        let _ = writeln!(
            out,
            "paranoid     : audited after each of {} timed cycles, zero violations",
            req.warmup_cycles + req.measure_cycles
        );
    }
    let _ = writeln!(
        out,
        "bus          : {} fills, mean queue {:.1} cycles",
        result.memory.requests,
        result.memory.mean_queue_delay()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_a_minimal_multiprogrammed_request() {
        let req = parse_args(&argv("--org adaptive --apps ammp,gzip,crafty,eon")).unwrap();
        assert_eq!(req.profiles.len(), 4);
        assert_eq!(req.organizations.len(), 1);
        assert_eq!(req.organizations[0].label(), "adaptive");
        assert_eq!(req.seed, 2007);
        assert_eq!(req.jobs, 1);
        assert!(req.cycle_skip);
    }

    #[test]
    fn parses_sample_sets_and_validates_the_shift() {
        let req = parse_args(&argv(
            "--org shared --apps ammp,gzip,crafty,eon --sample-sets 4",
        ))
        .unwrap();
        assert_eq!(req.sample_shift, Some(4));
        assert_eq!(req.machine.l3.sample_shift, Some(4));
        let off = parse_args(&argv("--org shared --apps ammp,gzip,crafty,eon")).unwrap();
        assert_eq!(off.sample_shift, None);
        assert_eq!(off.machine.l3.sample_shift, None);
        // A shift that leaves no sampled sets is rejected up front.
        assert!(parse_args(&argv(
            "--org shared --apps ammp,gzip,crafty,eon --sample-sets 40",
        ))
        .is_err());
    }

    #[test]
    fn sampled_run_reports_confidence_bounds() {
        let mut req = parse_args(&argv(
            "--org adaptive --apps ammp,gzip,crafty,eon --sample-sets 3",
        ))
        .unwrap();
        req.warm_instructions = 60_000;
        req.warmup_cycles = 5_000;
        req.measure_cycles = 80_000;
        let result = run(&req).unwrap();
        let samp = result.sampling.expect("sampled run carries a report");
        assert_eq!(samp.shift, 3);
        assert!(samp.sampled_accesses + samp.estimated_accesses > 0);
        let text = render(&req, "adaptive", &result);
        assert!(text.contains("sampling"), "render shows the accuracy line");
        assert!(text.contains("95% CI"));
    }

    #[test]
    fn parses_time_sample_and_rejects_empty_windows() {
        let req = parse_args(&argv(
            "--org shared --apps ammp,gzip,crafty,eon --time-sample 5000:20000",
        ))
        .unwrap();
        assert_eq!(req.time_sample, Some((5_000, 20_000)));
        let off = parse_args(&argv("--org shared --apps ammp,gzip,crafty,eon")).unwrap();
        assert_eq!(off.time_sample, None);
        // No detailed windows to measure from.
        assert!(parse_args(&argv(
            "--org shared --apps ammp,gzip,crafty,eon --time-sample 0:20000",
        ))
        .is_err());
        // Malformed schedule.
        assert!(parse_args(&argv(
            "--org shared --apps ammp,gzip,crafty,eon --time-sample 5000",
        ))
        .is_err());
        // Paranoid audits every timed cycle; a gapped schedule has none.
        assert!(parse_args(&argv(
            "--org shared --apps ammp,gzip,crafty,eon --time-sample 5000:20000 --paranoid",
        ))
        .is_err());
        // A zero gap is full detail, so paranoid composes with it.
        assert!(parse_args(&argv(
            "--org shared --apps ammp,gzip,crafty,eon --time-sample 5000:0 --paranoid",
        ))
        .is_ok());
    }

    #[test]
    fn time_sampled_run_reports_window_bounds() {
        let mut req = parse_args(&argv(
            "--org adaptive --apps ammp,gzip,crafty,eon --time-sample 2000:6000",
        ))
        .unwrap();
        req.warm_instructions = 60_000;
        req.warmup_cycles = 8_000;
        req.measure_cycles = 80_000;
        let result = run(&req).unwrap();
        let ts = result.time_sampling.expect("sampled run carries a report");
        assert_eq!((ts.detail, ts.gap), (2_000, 6_000));
        assert!(ts.windows >= 2);
        assert!(ts.detailed_cycles < 80_000);
        let text = render(&req, "adaptive", &result);
        assert!(text.contains("time-sample"), "render shows the window line");
        assert!(text.contains("95% CI"));
    }

    #[test]
    fn no_skip_selects_the_reference_stepping_loop() {
        let req = parse_args(&argv("--org shared --apps ammp,gzip,crafty,eon --no-skip")).unwrap();
        assert!(!req.cycle_skip);
        assert!(req.fast_path, "--no-skip leaves the hit fast path alone");
    }

    #[test]
    fn no_fast_path_selects_the_reference_walks() {
        let req = parse_args(&argv(
            "--org shared --apps ammp,gzip,crafty,eon --no-fast-path",
        ))
        .unwrap();
        assert!(!req.fast_path);
        assert!(req.cycle_skip, "--no-fast-path leaves cycle skipping alone");
        let plain = parse_args(&argv("--org shared --apps ammp,gzip,crafty,eon")).unwrap();
        assert!(plain.fast_path, "fast path defaults on");
    }

    #[test]
    fn parses_an_organization_list_and_jobs() {
        let req = parse_args(&argv(
            "--org private,shared,adaptive --apps ammp,gzip,crafty,eon --jobs 2",
        ))
        .unwrap();
        let labels: Vec<_> = req.organizations.iter().map(|o| o.label()).collect();
        assert_eq!(labels, ["private", "shared", "adaptive"]);
        assert_eq!(req.jobs, 2);
        // --jobs 0 means "auto": at least one worker.
        let auto = parse_args(&argv("--org private --apps ammp,gzip,crafty,eon --jobs 0")).unwrap();
        assert!(auto.jobs >= 1);
    }

    #[test]
    fn parses_options_and_scaling() {
        let req = parse_args(&argv(
            "--org shared --apps art,mesa,gap,facerec --seed 9 --measure 123 --l3-mb 8 --tech-scaled",
        ))
        .unwrap();
        assert_eq!(req.seed, 9);
        assert_eq!(req.measure_cycles, 123);
        assert_eq!(req.machine.l3.shared.size_bytes(), 8 * 1024 * 1024);
        assert_eq!(req.machine.l2.latency(), 11, "tech scaling applied");
    }

    #[test]
    fn parses_parallel_workloads() {
        let req = parse_args(&argv("--org adaptive --parallel galgel:0.4:2048")).unwrap();
        assert_eq!(req.profiles.len(), 4);
        assert!((req.profiles[0].shared_read_frac - 0.4).abs() < 1e-12);
        assert_eq!(req.profiles[0].shared_kb, 2048);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("--org bogus --apps ammp,gzip,crafty,eon")).is_err());
        assert!(parse_args(&argv("--org private --apps ammp")).is_err());
        assert!(parse_args(&argv("--org private")).is_err());
        assert!(parse_args(&argv("--org private --apps a,b,c,d")).is_err());
        assert!(parse_args(&argv("--org private --apps ammp,gzip,crafty,eon --seed x")).is_err());
        assert!(parse_args(&argv("--unknown")).is_err());
        assert!(parse_args(&argv(
            "--org adaptive --apps ammp,gzip,crafty,eon --parallel a:1:1"
        ))
        .is_err());
    }

    #[test]
    fn end_to_end_tiny_run() {
        let mut req = parse_args(&argv("--org adaptive --apps ammp,gzip,crafty,eon")).unwrap();
        req.warm_instructions = 50_000;
        req.warmup_cycles = 5_000;
        req.measure_cycles = 20_000;
        let result = run(&req).unwrap();
        assert!(result.hmean_ipc > 0.0);
        let text = render(&req, req.organizations[0].label(), &result);
        assert!(text.contains("harmonic IPC"));
        assert!(text.contains("quotas"));
    }

    #[test]
    fn run_all_is_identical_for_any_job_count() {
        let mut req = parse_args(&argv(
            "--org private,shared,adaptive --apps ammp,gzip,crafty,eon",
        ))
        .unwrap();
        req.warm_instructions = 30_000;
        req.warmup_cycles = 2_000;
        req.measure_cycles = 10_000;
        let serial = run_all(&req).unwrap();
        req.jobs = 3;
        let parallel = run_all(&req).unwrap();
        assert_eq!(serial, parallel, "jobs must not change any result bit");
        let labels: Vec<_> = serial.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["private", "shared", "adaptive"]);
    }

    #[test]
    fn parses_trace_and_metrics_flags() {
        let req = parse_args(&argv(
            "--org adaptive --apps ammp,gzip,crafty,eon --trace t.jsonl --metrics-out m.json",
        ))
        .unwrap();
        assert_eq!(req.trace.as_deref(), Some(std::path::Path::new("t.jsonl")));
        assert_eq!(
            req.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        assert!(req.recording());
        let plain = parse_args(&argv("--org private --apps ammp,gzip,crafty,eon")).unwrap();
        assert!(!plain.recording(), "untraced run stays on the NullSink");
        let paranoid = parse_args(&argv(
            "--org private --apps ammp,gzip,crafty,eon --paranoid",
        ))
        .unwrap();
        assert!(paranoid.recording(), "paranoid records for failure dumps");
    }

    #[test]
    fn traced_run_exports_schema_valid_jsonl_and_metrics() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join(format!("nuca-cli-trace-{}.jsonl", std::process::id()));
        let metrics_path = dir.join(format!("nuca-cli-metrics-{}.json", std::process::id()));
        let mut req =
            parse_args(&argv("--org private,adaptive --apps ammp,gzip,crafty,eon")).unwrap();
        req.warm_instructions = 30_000;
        req.warmup_cycles = 2_000;
        req.measure_cycles = 20_000;
        req.trace = Some(trace_path.clone());
        req.metrics_out = Some(metrics_path.clone());
        let results = run_all(&req).unwrap();

        let text = std::fs::read_to_string(&trace_path).unwrap();
        let report = telemetry::export::validate_jsonl(&text).unwrap_or_else(|errs| {
            panic!("trace failed validation: {errs:?}");
        });
        assert_eq!(report.sections, 2, "one section per organization");
        assert!(report.events > 0);

        // The adaptive section's summary carries the run's final quotas.
        let sections = telemetry::export::parse_sections(&text).unwrap();
        let summary = sections[1].summary.as_ref().unwrap();
        let final_quotas: Vec<u32> = match summary.get("final_quotas") {
            Some(telemetry::json::Json::Arr(items)) => {
                items.iter().map(|j| j.as_num().unwrap() as u32).collect()
            }
            other => panic!("missing final_quotas: {other:?}"),
        };
        assert_eq!(Some(&final_quotas), results[1].1.quotas.as_ref());

        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(telemetry::json::Json::parse(&metrics).is_ok());
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn paranoid_flag_is_parsed_and_audits_cleanly() {
        let mut req = parse_args(&argv(
            "--org adaptive --apps ammp,gzip,crafty,eon --paranoid",
        ))
        .unwrap();
        assert!(req.paranoid);
        req.warm_instructions = 10_000;
        req.warmup_cycles = 2_000;
        req.measure_cycles = 3_000;
        let result = run(&req).unwrap();
        assert!(result.hmean_ipc > 0.0);
    }
}
