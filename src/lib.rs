//! Workspace facade for the HPCA 2007 adaptive NUCA reproduction.
//!
//! Re-exports every crate so that examples and integration tests can write
//! `use nuca_repro::nuca_core::...`.

pub mod cli;

pub use cachesim;
pub use campaign;
pub use cpusim;
pub use memsim;
pub use nuca_core;
pub use simcore;
pub use telemetry;
pub use tracegen;
