//! Quickstart: simulate a four-application mix on the adaptive
//! shared/private NUCA cache and print what the sharing engine did.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nuca_repro::nuca_core::cmp::Cmp;
use nuca_repro::nuca_core::l3::Organization;
use nuca_repro::simcore::config::MachineConfig;
use nuca_repro::tracegen::spec::SpecApp;
use nuca_repro::tracegen::workload::Mix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Table 1 machine: four 4-wide out-of-order cores, per-core
    // L1/L2, a 4-MByte last-level cache and a contended memory bus.
    let machine = MachineConfig::baseline();

    // One cache-hungry application (ammp wants ~3 MB), one moderate
    // (gzip), and two that barely touch the L3.
    let mix = Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Gzip, SpecApp::Crafty, SpecApp::Eon],
        forwards: vec![800_000_000, 700_000_000, 900_000_000, 600_000_000],
    };

    let mut cmp = Cmp::new(&machine, Organization::adaptive(), &mix, 42)?;

    // Warm caches functionally (the cheap stand-in for the paper's
    // 0.5-1.5 G instruction fast-forward), let the quotas adapt, then
    // measure.
    cmp.warm(1_500_000);
    cmp.run(600_000);
    cmp.reset_stats();
    cmp.run(500_000);

    let result = cmp.snapshot();
    println!("mix: {}", mix.label());
    println!();
    for (i, (app, stats)) in result.per_core.iter().enumerate() {
        println!(
            "core {i} ({app:<7}) IPC {:.3}  L3: {:>6} accesses, {:>5} private hits, {:>5} shared hits, {:>5} misses",
            stats.ipc(),
            stats.l3_accesses,
            stats.l3_local_hits,
            stats.l3_remote_hits,
            stats.l3_misses
        );
    }
    println!();
    println!("harmonic-mean IPC : {:.4}", result.hmean_ipc);
    println!("arithmetic IPC    : {:.4}", result.amean_ipc);
    if let Some(quotas) = &result.quotas {
        println!("final quotas      : {quotas:?} blocks/set (started at [4, 4, 4, 4])");
        println!();
        println!(
            "The sharing engine moved capacity toward the core that avoids the most \
             misses per extra block per set."
        );
    }
    Ok(())
}
