//! Compare all four last-level organizations on one multiprogrammed mix.
//!
//! ```text
//! cargo run --release --example scheme_comparison                       # default mix
//! cargo run --release --example scheme_comparison -- ammp mcf gzip eon  # your own mix
//! ```

use nuca_repro::nuca_core::experiment::{run_mix, ExperimentConfig};
use nuca_repro::nuca_core::l3::Organization;
use nuca_repro::simcore::config::MachineConfig;
use nuca_repro::simcore::stats::speedup;
use nuca_repro::tracegen::spec::SpecApp;
use nuca_repro::tracegen::workload::Mix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let apps: Vec<SpecApp> = if args.is_empty() {
        vec![SpecApp::Art, SpecApp::Mesa, SpecApp::Gap, SpecApp::Facerec]
    } else if args.len() == 4 {
        args.iter()
            .map(|s| s.parse::<SpecApp>())
            .collect::<Result<_, _>>()?
    } else {
        return Err("pass exactly four application names (or none for the default)".into());
    };
    let mix = Mix {
        apps,
        forwards: vec![800_000_000; 4],
    };

    let machine = MachineConfig::baseline();
    let exp = ExperimentConfig::default();
    let orgs = [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
        Organization::Cooperative { seed: exp.seed },
    ];

    println!("mix: {}\n", mix.label());
    let mut baseline = None;
    for org in orgs {
        let r = run_mix(&machine, org, &mix, &exp)?;
        let h = r.result.hmean_ipc;
        let base = *baseline.get_or_insert(h);
        print!(
            "{:<12} harmonic IPC {:.4} ({:+.1}% vs private)  per-core [",
            r.organization,
            h,
            (speedup(h, base) - 1.0) * 100.0
        );
        for ipc in &r.result.ipc {
            print!(" {ipc:.3}");
        }
        print!(" ]");
        if let Some(q) = &r.result.quotas {
            print!("  quotas {q:?}");
        }
        println!();
    }
    println!();
    println!(
        "private = isolated 1 MB slices; shared = one 4 MB cache; adaptive = the\n\
         paper's scheme; cooperative = Chang & Sohi spilling (\"random replacement\")."
    );
    Ok(())
}
