//! Beyond the paper: a *parallel* workload with read-shared data.
//!
//! The paper only evaluates multiprogrammed workloads (disjoint address
//! spaces) and hypothesizes in its conclusion that the scheme "will be
//! effective also for such [parallel] workloads". This example tests the
//! hypothesis: four threads of one application read a common region on
//! top of their private working sets, and we compare the organizations.
//!
//! ```text
//! cargo run --release --example parallel_workload
//! ```

use nuca_repro::nuca_core::cmp::Cmp;
use nuca_repro::nuca_core::l3::Organization;
use nuca_repro::simcore::config::MachineConfig;
use nuca_repro::simcore::stats::speedup;
use nuca_repro::tracegen::spec::SpecApp;
use nuca_repro::tracegen::workload::parallel_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::baseline();
    // Four galgel threads; 40% of loads read a shared 2-MByte region.
    let (profiles, forwards) = parallel_workload(SpecApp::Galgel, 4, 0.4, 2048, 11);
    println!("workload: 4 x galgel threads, 40% of loads to a shared 2 MB region\n");

    let mut baseline = None;
    for org in [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
        Organization::Cooperative { seed: 11 },
    ] {
        let mut cmp = Cmp::with_profiles(&machine, org, &profiles, &forwards, 11)?;
        cmp.warm(2_000_000);
        cmp.run(800_000);
        cmp.reset_stats();
        cmp.run(800_000);
        let r = cmp.snapshot();
        let base = *baseline.get_or_insert(r.hmean_ipc);
        println!(
            "{:<12} harmonic IPC {:.4} ({:+.1}% vs private)  remote hits {:>6}  misses {:>6}",
            org.label(),
            r.hmean_ipc,
            (speedup(r.hmean_ipc, base) - 1.0) * 100.0,
            r.per_core
                .iter()
                .map(|(_, s)| s.l3_remote_hits)
                .sum::<u64>(),
            r.per_core.iter().map(|(_, s)| s.l3_misses).sum::<u64>(),
        );
    }
    println!();
    println!(
        "Under private slices every thread must fetch its own copy of the shared\n\
         region from memory; the sharing organizations fetch it once and serve\n\
         neighbors at the 19-cycle latency."
    );
    Ok(())
}
