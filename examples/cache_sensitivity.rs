//! Cache-size sensitivity of a single application (the Figure 3
//! methodology): sweep the blocks-per-set of a private last-level cache
//! with the set count fixed and watch the misses fall.
//!
//! ```text
//! cargo run --release --example cache_sensitivity            # defaults to ammp
//! cargo run --release --example cache_sensitivity -- gzip mcf
//! ```

use nuca_repro::nuca_core::experiment::{sensitivity_sweep, ExperimentConfig};
use nuca_repro::simcore::config::MachineConfig;
use nuca_repro::tracegen::spec::SpecApp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let apps: Vec<SpecApp> = if args.is_empty() {
        vec![SpecApp::Ammp]
    } else {
        args.iter()
            .map(|s| s.parse::<SpecApp>())
            .collect::<Result<_, _>>()?
    };

    let machine = MachineConfig::baseline();
    let exp = ExperimentConfig {
        measure_cycles: 600_000,
        ..ExperimentConfig::default()
    };
    let ways = [1u32, 2, 3, 4, 6, 8, 12, 16];

    for app in apps {
        println!(
            "{} (hot working set ≈ {:.1} blocks/set):",
            app.name(),
            app.profile().regions.hot_blocks_per_set(4096, 64)
        );
        let points = sensitivity_sweep(&machine, app, &ways, &exp)?;
        let max = points.iter().map(|p| p.misses).max().unwrap_or(1).max(1);
        for p in &points {
            let bar = "#".repeat((p.misses * 50 / max) as usize);
            println!(
                "  {:>2} blocks/set  {:>8} misses  {bar}",
                p.blocks_per_set, p.misses
            );
        }
        println!();
    }
    Ok(())
}
