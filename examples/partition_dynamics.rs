//! Watch the sharing engine repartition the cache online: quota
//! trajectories, the gain/loss auctions behind each transfer, and the
//! resulting per-core occupancy of the last-level cache.
//!
//! ```text
//! cargo run --release --example partition_dynamics
//! ```

// Demo harness: failing fast on impossible states is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_repro::nuca_core::cmp::Cmp;
use nuca_repro::nuca_core::l3::Organization;
use nuca_repro::simcore::config::MachineConfig;
use nuca_repro::tracegen::spec::SpecApp;
use nuca_repro::tracegen::workload::Mix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![
            SpecApp::Ammp,
            SpecApp::Crafty,
            SpecApp::Eon,
            SpecApp::Wupwise,
        ],
        forwards: vec![700_000_000; 4],
    };
    println!(
        "mix: {} (ammp wants ~12 blocks/set; the others are light)\n",
        mix.label()
    );

    let mut cmp = Cmp::new(&machine, Organization::adaptive(), &mix, 7)?;
    cmp.warm(2_000_000);

    println!("quota trajectory (sampled every 100k cycles):");
    println!("{:>8}  {:<20} transfers", "cycles", "quotas [c0 c1 c2 c3]");
    for step in 1..=12 {
        cmp.run(100_000);
        let adaptive = cmp.l3().as_adaptive().expect("adaptive organization");
        println!(
            "{:>8}  {:<20} {}",
            step * 100_000,
            format!("{:?}", adaptive.quotas()),
            adaptive.engine().repartitions().len()
        );
    }

    println!("\nauction history (gain = shadow-tag hits, loss = LRU-block hits):");
    let history: Vec<_> = cmp
        .l3()
        .as_adaptive()
        .expect("adaptive organization")
        .engine()
        .repartitions()
        .to_vec();
    for (i, r) in history.iter().enumerate() {
        println!(
            "  #{i:<2} core{} gained a block/set from core{} (gain {} > loss {})",
            r.gainer.index(),
            r.loser.index(),
            r.gain,
            r.loss
        );
    }

    cmp.reset_stats();
    cmp.run(400_000);
    let result = cmp.snapshot();

    println!("\nphysical occupancy (blocks owned, of 65536 total):");
    for row in cmp.l3().as_adaptive().expect("adaptive").occupancy() {
        println!(
            "  {}: {:>6} private + {:>6} shared = {:>6}",
            row.core,
            row.private_blocks,
            row.shared_blocks,
            row.total()
        );
    }

    println!("\nsteady-state window:");
    for (i, (app, s)) in result.per_core.iter().enumerate() {
        println!(
            "  core {i} ({app:<7}) IPC {:.3}  L3 hit ratio {:.0}%",
            s.ipc(),
            if s.l3_accesses > 0 {
                100.0 * (s.l3_local_hits + s.l3_remote_hits) as f64 / s.l3_accesses as f64
            } else {
                0.0
            }
        );
    }
    Ok(())
}
