#!/bin/bash
# Regenerates every table and figure. Characterization runs that are not
# sweep grids (Table 1, the cost model, the single-app Figures 3 and 5,
# and the ablation/parallel extensions) keep their dedicated binaries;
# every mix-grid experiment (Figures 6-12, sampling accuracy, the
# screened capacity sweep) runs through the campaign engine from the
# committed specs under specs/, one JSONL manifest per spec in
# results/campaign/.
#
# JOBS controls the worker-thread count (default: all cores). Manifests
# and figure outputs are bit-identical for any JOBS value.
#
# SAMPLE_SETS (optional) turns on set-sampled simulation everywhere:
# binaries and campaigns get --sample-sets $SAMPLE_SETS, simulating only
# 1/2^SAMPLE_SETS of the last-level sets in full detail. Figures become
# approximations with confidence bounds (DESIGN.md §8) — leave it unset
# for publication runs. SAMPLE_SETS=0 is bit-identical to unset.
#
# TIME_SAMPLE (optional, "detail:gap" cycle counts, e.g. 10000:40000)
# turns on time-sampled simulation everywhere: binaries and campaigns
# get --time-sample $TIME_SAMPLE, alternating detailed windows with
# functionally warmed gaps (DESIGN.md §8). IPC becomes a SMARTS
# estimate with confidence bounds — leave it unset for publication
# runs. A zero gap (e.g. TIME_SAMPLE=10000:0) is bit-identical to
# unset. Composes with SAMPLE_SETS.
#
# TRACE and METRICS_OUT (both optional) turn on telemetry for the
# characterization binaries: set them to the literal string "results"
# to write results/<bin>.trace.jsonl / results/<bin>.metrics.json, or
# leave them empty to run untraced. (Campaign runs emit manifests, not
# event traces.)
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results results/campaign
JOBS="${JOBS:-$(nproc)}"
TRACE="${TRACE:-}"
METRICS_OUT="${METRICS_OUT:-}"
SAMPLE_SETS="${SAMPLE_SETS:-}"
TIME_SAMPLE="${TIME_SAMPLE:-}"
sample=()
if [ -n "$SAMPLE_SETS" ]; then
    sample+=(--sample-sets "$SAMPLE_SETS")
    echo "set sampling on: 1/2^$SAMPLE_SETS of L3 sets simulated"
fi
if [ -n "$TIME_SAMPLE" ]; then
    sample+=(--time-sample "$TIME_SAMPLE")
    echo "time sampling on: $TIME_SAMPLE detailed:functional cycle schedule"
fi

echo "running characterization binaries with --jobs $JOBS"
for bin in table1 cost_model fig3 fig5 shadow_sampling ablations parallel; do
    echo "=== $bin ==="
    tele=()
    if [ "$TRACE" = "results" ]; then
        tele+=(--trace "results/$bin.trace.jsonl")
    elif [ -n "$TRACE" ]; then
        tele+=(--trace "$TRACE.$bin.jsonl")
    fi
    if [ "$METRICS_OUT" = "results" ]; then
        tele+=(--metrics-out "results/$bin.metrics.json")
    elif [ -n "$METRICS_OUT" ]; then
        tele+=(--metrics-out "$METRICS_OUT.$bin.json")
    fi
    cargo run --quiet --release -p nuca-bench --bin "$bin" -- \
        --jobs "$JOBS" ${sample[@]+"${sample[@]}"} \
        ${tele[@]+"${tele[@]}"} > "results/$bin.txt" 2>&1
    echo "done: results/$bin.txt"
done

echo "running campaigns with --jobs $JOBS"
for spec in specs/paper.toml specs/fig8.toml specs/fig9.toml \
            specs/fig10.toml specs/sampling.toml specs/sweep.toml; do
    name="$(basename "$spec" .toml)"
    echo "=== campaign $name ==="
    rm -f "results/campaign/$name.jsonl"
    cargo run --quiet --release --bin nuca-sim -- campaign "$spec" \
        --jobs "$JOBS" ${sample[@]+"${sample[@]}"} \
        --out "results/campaign/$name.jsonl" \
        > "results/campaign/$name.log" 2>&1
    echo "done: results/campaign/$name.jsonl"
done

# Refresh the machine-readable perf baseline last (also checks that the
# parallel pass reproduces the serial pass bit-for-bit). --repeat takes
# the median serial wall-clock of three runs so a noisy host does not
# poison the baseline.
echo "=== perf ==="
cargo run --quiet --release -p nuca-bench --bin perf -- --jobs "$JOBS" \
    --repeat 3 ${sample[@]+"${sample[@]}"} > results/perf.txt 2>&1
echo "done: results/perf.txt (baseline: BENCH_baseline.json)"
