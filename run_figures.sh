#!/bin/bash
# Regenerates every table and figure, capturing output under results/.
#
# JOBS controls the worker-thread count handed to each figure binary
# (default: all cores). Results are bit-identical for any JOBS value —
# the runner in simcore::parallel reassembles cells in index order.
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
JOBS="${JOBS:-$(nproc)}"
echo "running figure binaries with --jobs $JOBS"
for bin in table1 cost_model fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 shadow_sampling ablations parallel; do
    echo "=== $bin ==="
    cargo run --quiet --release -p nuca-bench --bin "$bin" -- --jobs "$JOBS" > "results/$bin.txt" 2>&1
    echo "done: results/$bin.txt"
done
# Refresh the machine-readable perf baseline last (also checks that the
# parallel pass reproduces the serial pass bit-for-bit).
echo "=== perf ==="
cargo run --quiet --release -p nuca-bench --bin perf -- --jobs "$JOBS" > results/perf.txt 2>&1
echo "done: results/perf.txt (baseline: BENCH_baseline.json)"
