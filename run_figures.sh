#!/bin/bash
# Regenerates every table and figure, capturing output under results/.
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
for bin in table1 cost_model fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 shadow_sampling ablations parallel; do
    echo "=== $bin ==="
    cargo run --quiet --release -p nuca-bench --bin "$bin" > "results/$bin.txt" 2>&1
    echo "done: results/$bin.txt"
done
