#!/bin/bash
# Regenerates every table and figure, capturing output under results/.
#
# JOBS controls the worker-thread count handed to each figure binary
# (default: all cores). Results are bit-identical for any JOBS value —
# the runner in simcore::parallel reassembles cells in index order.
#
# SAMPLE_SETS (optional) turns on set-sampled simulation: every figure
# binary gets --sample-sets $SAMPLE_SETS, simulating only 1/2^SAMPLE_SETS
# of the last-level sets in full detail and charging the rest a
# calibrated estimate. Figures become approximations with confidence
# bounds (see DESIGN.md §8) — leave it unset for publication runs.
# SAMPLE_SETS=0 is full membership and bit-identical to unset.
#
# TRACE and METRICS_OUT (both optional) turn on the telemetry subsystem:
# each figure binary then writes a per-binary JSONL event trace and/or
# aggregated metrics document next to its text output. Set them to the
# literal string "results" to use results/<bin>.trace.jsonl and
# results/<bin>.metrics.json, or leave them empty to run untraced.
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
JOBS="${JOBS:-$(nproc)}"
TRACE="${TRACE:-}"
METRICS_OUT="${METRICS_OUT:-}"
SAMPLE_SETS="${SAMPLE_SETS:-}"
sample=()
if [ -n "$SAMPLE_SETS" ]; then
    sample+=(--sample-sets "$SAMPLE_SETS")
    echo "set sampling on: 1/2^$SAMPLE_SETS of L3 sets simulated"
fi
echo "running figure binaries with --jobs $JOBS"
for bin in table1 cost_model fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 shadow_sampling ablations parallel; do
    echo "=== $bin ==="
    tele=()
    if [ "$TRACE" = "results" ]; then
        tele+=(--trace "results/$bin.trace.jsonl")
    elif [ -n "$TRACE" ]; then
        tele+=(--trace "$TRACE.$bin.jsonl")
    fi
    if [ "$METRICS_OUT" = "results" ]; then
        tele+=(--metrics-out "results/$bin.metrics.json")
    elif [ -n "$METRICS_OUT" ]; then
        tele+=(--metrics-out "$METRICS_OUT.$bin.json")
    fi
    cargo run --quiet --release -p nuca-bench --bin "$bin" -- \
        --jobs "$JOBS" ${sample[@]+"${sample[@]}"} \
        ${tele[@]+"${tele[@]}"} > "results/$bin.txt" 2>&1
    echo "done: results/$bin.txt"
done
# Refresh the machine-readable perf baseline last (also checks that the
# parallel pass reproduces the serial pass bit-for-bit).
echo "=== perf ==="
cargo run --quiet --release -p nuca-bench --bin perf -- --jobs "$JOBS" \
    ${sample[@]+"${sample[@]}"} > results/perf.txt 2>&1
echo "done: results/perf.txt (baseline: BENCH_baseline.json)"
