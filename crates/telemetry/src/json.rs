//! Minimal JSON support shared by the trace/metrics exporters and the
//! bench harness (`BENCH_baseline.json`) — std-only, like the rest of
//! the workspace (the offline build cannot pull serde).
//!
//! Objects keep insertion order (`Vec` of pairs, per the workspace ban
//! on hash containers in deterministic code), so rendered output is
//! stable across runs. [`Json::schema`] flattens a value into sorted
//! key paths (`"serial.wall_seconds"`, `"cells[].org"`), which is what
//! the CI perf-smoke job compares: value drift is fine, shape drift
//! fails the build. [`Json::render_compact`] emits the single-line form
//! used for JSONL trace export.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (rendered as an integer when exactly integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Looks up a key in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Pretty-renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    render_str(out, k);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Renders on a single line with no whitespace — one JSONL record.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(out, k);
                    out.push(':');
                    v.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Flattens the value's *shape* into sorted, deduplicated key paths.
    /// Array elements contribute under `path[]`; scalars contribute
    /// their path alone. Two documents with identical schemas differ
    /// only in values.
    pub fn schema(&self) -> Vec<String> {
        let mut paths = Vec::new();
        self.collect_paths("", &mut paths);
        paths.sort();
        paths.dedup();
        paths
    }

    fn collect_paths(&self, prefix: &str, out: &mut Vec<String>) {
        match self {
            Json::Obj(pairs) => {
                for (k, v) in pairs {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    v.collect_paths(&path, out);
                }
            }
            Json::Arr(items) => {
                let path = format!("{prefix}[]");
                if items.is_empty() {
                    out.push(path);
                } else {
                    for item in items {
                        item.collect_paths(&path, out);
                    }
                }
            }
            _ => out.push(prefix.to_string()),
        }
    }

    /// Parses a JSON document (strict enough for files this crate
    /// wrote; accepts standard JSON).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from a &str,
                // so boundaries are valid).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest)
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                if let Some(c) = s.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str("perf")),
            ("count".into(), Json::num(3.0)),
            ("ratio".into(), Json::num(2.5)),
            ("ok".into(), Json::Bool(true)),
            (
                "cells".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("org".into(), Json::str("private"))]),
                    Json::Obj(vec![("org".into(), Json::str("shared"))]),
                ]),
            ),
        ])
    }

    #[test]
    fn render_parse_roundtrip() {
        let doc = sample();
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn integers_render_without_fraction() {
        let text = Json::num(42.0).render();
        assert_eq!(text.trim(), "42");
        let text = Json::num(2.5).render();
        assert_eq!(text.trim(), "2.5");
    }

    #[test]
    fn schema_is_shape_not_values() {
        let a = sample();
        let mut b = sample();
        if let Json::Obj(pairs) = &mut b {
            pairs[1].1 = Json::num(999.0);
        }
        assert_eq!(a.schema(), b.schema());
        assert!(a.schema().contains(&"cells[].org".to_string()));
        assert!(a.schema().contains(&"ratio".to_string()));
    }

    #[test]
    fn schema_detects_missing_key() {
        let a = sample();
        let b = Json::Obj(vec![("name".into(), Json::str("perf"))]);
        assert_ne!(a.schema(), b.schema());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} x").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let doc = Json::str("a\"b\\c\nd\te");
        let back = Json::parse(&doc.render()).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn compact_rendering_is_single_line_and_roundtrips() {
        let doc = sample();
        let line = doc.render_compact();
        assert!(!line.contains('\n'));
        assert!(!line.contains(' '));
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(
            Json::Obj(vec![("a".into(), Json::num(1.0))]).render_compact(),
            "{\"a\":1}"
        );
    }
}
