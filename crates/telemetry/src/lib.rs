//! Zero-cost-when-off tracing and metrics for the NUCA simulator.
//!
//! The paper's mechanism is a *dynamic* one — shadow-tag gain vs.
//! LRU-loss estimates move one block/set of quota every 2000-miss epoch
//! — so end-of-run aggregates alone cannot tell a correct quota
//! trajectory from a broken one. This crate makes the trajectory (and
//! the cache/MSHR/memory traffic around it) observable:
//!
//! - [`Sink`] / [`NullSink`] / [`Recorder`]: the emission boundary.
//!   Simulator components are generic over `S: Sink` with `NullSink` as
//!   the default; every emission site is guarded by `if S::ENABLED`, so
//!   the untraced build monomorphizes to exactly the code it had before
//!   this crate existed (verified by the `telemetry_overhead` bench).
//! - [`Event`] / [`EventKind`]: the typed taxonomy — `Repartition`,
//!   `Epoch`, `ShadowHit`, `LruHit`, `Demotion`, `SharedEviction`,
//!   `Eviction`, `Spill`, `Mshr*`, `MemoryFill`.
//! - [`Tracer`]: a fixed-capacity ring buffer for high-frequency events
//!   with full retention of structural (quota-trajectory) events and
//!   exact per-kind/per-core counts.
//! - [`export`]: deterministic JSONL export ([`export::render_jsonl`]),
//!   schema + replay validation ([`export::validate_jsonl`]) and the
//!   `--metrics-out` document ([`export::metrics_json`]).
//! - [`replay`]: reconstructs `SharingEngine::quotas()` from the event
//!   stream — the bit-for-bit property CI enforces.
//! - [`Registry`] / [`Counter`] / [`Gauge`] / [`Family`]: hierarchical
//!   metric aggregation behind the JSON export.
//! - [`collector`]: opt-in process-wide collection used by the figure
//!   binaries (`--trace <path>` / `TRACE=<path>`); traces are gathered
//!   in cell order, so output is identical for every `--jobs` value.
//!
//! The `trace-view` binary (this crate's `src/bin`) summarizes and
//! validates trace files; see README.md §Observability.

pub mod collector;
pub mod event;
pub mod export;
pub mod json;
pub mod registry;
pub mod replay;
pub mod sink;

pub use event::{CoreOccupancy, Event, EventKind, TraceRecord};
pub use registry::{Counter, Family, Gauge, Registry};
pub use sink::{NullSink, Recorder, Sink, Trace, TraceMeta, Tracer};
