//! JSONL trace export, schema validation and the metrics document.
//!
//! A trace file is a sequence of **sections**, one per simulation cell,
//! concatenated in cell order (which is what makes traces byte-identical
//! for any `--jobs` count). Each section is:
//!
//! 1. one `meta` line — organization, core count, ring capacity and the
//!    initial quota vector (empty for non-adaptive organizations);
//! 2. the retained event lines in sequence order, each a single-line
//!    JSON object whose `type` is the [`EventKind`] name plus `seq` and
//!    `cycle`;
//! 3. one `summary` line — emitted/retained/dropped totals, per-kind
//!    counts and the final quota vector.
//!
//! [`validate_jsonl`] enforces the schema (exact key set and value types
//! per line type) **and** the semantic invariants: sequence numbers
//! strictly increase within a section, every `repartition` conserves the
//! quota sum, and replaying the repartition stream from `initial_quotas`
//! reproduces each carried vector, each `epoch` snapshot and the
//! summary's `final_quotas` bit-for-bit.

use crate::event::{Event, EventKind, TraceRecord};
use crate::json::Json;
use crate::sink::Trace;

/// Renders `traces` as one JSONL document, one section per trace, in
/// the given order.
pub fn render_jsonl(traces: &[Trace]) -> String {
    let mut out = String::new();
    for trace in traces {
        out.push_str(&meta_line(trace).render_compact());
        out.push('\n');
        for record in &trace.events {
            out.push_str(&event_line(record).render_compact());
            out.push('\n');
        }
        out.push_str(&summary_line(trace).render_compact());
        out.push('\n');
    }
    out
}

/// Builds the `--metrics-out` document for `traces`: one section per
/// trace with its hierarchical registry view.
pub fn metrics_json(traces: &[Trace]) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::num(1.0)),
        ("generator".into(), Json::str("telemetry")),
        (
            "sections".into(),
            Json::Arr(
                traces
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("org".into(), Json::str(t.meta.org.clone())),
                            ("cores".into(), Json::num(t.meta.cores as f64)),
                            ("final_quotas".into(), u32_arr_json(&t.final_quotas)),
                            ("metrics".into(), t.registry().to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn u32_arr_json(values: &[u32]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::num(f64::from(v))).collect())
}

fn meta_line(trace: &Trace) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::str("meta")),
        ("version".into(), Json::num(1.0)),
        ("org".into(), Json::str(trace.meta.org.clone())),
        ("cores".into(), Json::num(trace.meta.cores as f64)),
        (
            "ring_capacity".into(),
            Json::num(trace.meta.ring_capacity as f64),
        ),
        (
            "initial_quotas".into(),
            u32_arr_json(&trace.meta.initial_quotas),
        ),
    ])
}

fn summary_line(trace: &Trace) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::str("summary")),
        ("org".into(), Json::str(trace.meta.org.clone())),
        ("emitted".into(), Json::num(trace.emitted as f64)),
        ("retained".into(), Json::num(trace.events.len() as f64)),
        ("dropped".into(), Json::num(trace.dropped as f64)),
        (
            "counts".into(),
            Json::Obj(
                trace
                    .counts
                    .iter()
                    .map(|&(name, n)| (name.to_string(), Json::num(n as f64)))
                    .collect(),
            ),
        ),
        ("final_quotas".into(), u32_arr_json(&trace.final_quotas)),
    ])
}

/// Renders one retained event as its JSONL line.
fn event_line(record: &TraceRecord) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("type".into(), Json::str(record.event.kind().name())),
        ("seq".into(), Json::num(record.seq as f64)),
        ("cycle".into(), Json::num(record.at.raw() as f64)),
    ];
    match &record.event {
        Event::Repartition {
            epoch,
            gainer,
            loser,
            gain,
            loss,
            quotas,
        } => {
            pairs.push(("epoch".into(), Json::num(*epoch as f64)));
            pairs.push(("gainer".into(), Json::num(gainer.index() as f64)));
            pairs.push(("loser".into(), Json::num(loser.index() as f64)));
            pairs.push(("gain".into(), Json::num(*gain as f64)));
            pairs.push(("loss".into(), Json::num(*loss as f64)));
            pairs.push(("quotas".into(), u32_arr_json(quotas)));
        }
        Event::Epoch {
            index,
            quotas,
            occupancy,
            private_hits,
            shared_hits,
            misses,
            demotions,
            evictions,
        } => {
            pairs.push(("index".into(), Json::num(*index as f64)));
            pairs.push(("quotas".into(), u32_arr_json(quotas)));
            pairs.push((
                "occupancy".into(),
                Json::Arr(
                    occupancy
                        .iter()
                        .map(|o| {
                            Json::Obj(vec![
                                ("core".into(), Json::num(o.core.index() as f64)),
                                ("private".into(), Json::num(o.private_blocks as f64)),
                                ("shared".into(), Json::num(o.shared_blocks as f64)),
                            ])
                        })
                        .collect(),
                ),
            ));
            pairs.push(("private_hits".into(), Json::num(*private_hits as f64)));
            pairs.push(("shared_hits".into(), Json::num(*shared_hits as f64)));
            pairs.push(("misses".into(), Json::num(*misses as f64)));
            pairs.push(("demotions".into(), Json::num(*demotions as f64)));
            pairs.push(("evictions".into(), Json::num(*evictions as f64)));
        }
        Event::TimeSampleWindow { functional } => {
            pairs.push(("functional".into(), Json::Bool(*functional)));
        }
        Event::ShadowHit { core, set } | Event::Demotion { core, set } => {
            pairs.push(("core".into(), Json::num(core.index() as f64)));
            pairs.push(("set".into(), Json::num(f64::from(*set))));
        }
        Event::LruHit { core }
        | Event::MshrAlloc { core }
        | Event::MshrMerge { core }
        | Event::MshrStall { core } => {
            pairs.push(("core".into(), Json::num(core.index() as f64)));
        }
        Event::SharedEviction {
            set,
            owner,
            over_quota,
        } => {
            pairs.push(("set".into(), Json::num(f64::from(*set))));
            pairs.push(("owner".into(), Json::num(owner.index() as f64)));
            pairs.push(("over_quota".into(), Json::Bool(*over_quota)));
        }
        Event::Eviction { owner } => {
            pairs.push(("owner".into(), Json::num(owner.index() as f64)));
        }
        Event::Spill { from, to } => {
            pairs.push(("from".into(), Json::num(from.index() as f64)));
            pairs.push(("to".into(), Json::num(to.index() as f64)));
        }
        Event::MemoryFill { core, queue_delay } => {
            pairs.push(("core".into(), Json::num(core.index() as f64)));
            pairs.push(("queue_delay".into(), Json::num(*queue_delay as f64)));
        }
    }
    Json::Obj(pairs)
}

/// The exact top-level key set for each line type, in rendered order.
fn required_keys(line_type: &str) -> Option<&'static [&'static str]> {
    Some(match line_type {
        "meta" => &[
            "type",
            "version",
            "org",
            "cores",
            "ring_capacity",
            "initial_quotas",
        ],
        "summary" => &[
            "type",
            "org",
            "emitted",
            "retained",
            "dropped",
            "counts",
            "final_quotas",
        ],
        "repartition" => &[
            "type", "seq", "cycle", "epoch", "gainer", "loser", "gain", "loss", "quotas",
        ],
        "epoch" => &[
            "type",
            "seq",
            "cycle",
            "index",
            "quotas",
            "occupancy",
            "private_hits",
            "shared_hits",
            "misses",
            "demotions",
            "evictions",
        ],
        "time_sample_window" => &["type", "seq", "cycle", "functional"],
        "shadow_hit" | "demotion" => &["type", "seq", "cycle", "core", "set"],
        "lru_hit" | "mshr_alloc" | "mshr_merge" | "mshr_stall" => &["type", "seq", "cycle", "core"],
        "shared_eviction" => &["type", "seq", "cycle", "set", "owner", "over_quota"],
        "eviction" => &["type", "seq", "cycle", "owner"],
        "spill" => &["type", "seq", "cycle", "from", "to"],
        "memory_fill" => &["type", "seq", "cycle", "core", "queue_delay"],
        _ => return None,
    })
}

/// What a successful [`validate_jsonl`] run saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonlReport {
    /// Number of sections (meta/summary pairs).
    pub sections: usize,
    /// Total lines.
    pub lines: usize,
    /// Event lines (excluding meta and summary).
    pub events: usize,
    /// Repartition events replayed.
    pub repartitions: usize,
}

/// Per-section replay state while validating.
struct SectionState {
    org: String,
    cores: usize,
    quotas: Vec<u32>,
    quota_sum: u64,
    adaptive: bool,
    last_seq: Option<u64>,
}

/// Validates a JSONL trace document: schema and semantic invariants
/// (see the module docs).
///
/// # Errors
///
/// Returns every violation found, each prefixed with its 1-based line
/// number.
pub fn validate_jsonl(text: &str) -> Result<JsonlReport, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut report = JsonlReport::default();
    let mut section: Option<SectionState> = None;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        let value = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("line {lineno}: not valid JSON: {e}"));
                continue;
            }
        };
        let line_type = match value.get("type") {
            Some(Json::Str(t)) => t.clone(),
            _ => {
                errors.push(format!("line {lineno}: missing string \"type\" field"));
                continue;
            }
        };
        if let Some(e) = check_keys(&value, &line_type) {
            errors.push(format!("line {lineno}: {e}"));
            continue;
        }
        match line_type.as_str() {
            "meta" => {
                if section.is_some() {
                    errors.push(format!(
                        "line {lineno}: meta before previous section's summary"
                    ));
                }
                let quotas = u32_field_arr(&value, "initial_quotas").unwrap_or_default();
                let cores = num_field(&value, "cores").unwrap_or(0.0) as usize;
                if !quotas.is_empty() && quotas.len() != cores {
                    errors.push(format!(
                        "line {lineno}: initial_quotas has {} entries for {cores} cores",
                        quotas.len()
                    ));
                }
                section = Some(SectionState {
                    org: str_field(&value, "org").unwrap_or_default(),
                    cores,
                    quota_sum: quotas.iter().map(|&q| u64::from(q)).sum(),
                    adaptive: !quotas.is_empty(),
                    quotas,
                    last_seq: None,
                });
                report.sections += 1;
            }
            "summary" => match section.take() {
                None => errors.push(format!("line {lineno}: summary without a meta line")),
                Some(state) => {
                    let finals = u32_field_arr(&value, "final_quotas").unwrap_or_default();
                    if state.adaptive && finals != state.quotas {
                        errors.push(format!(
                            "line {lineno}: final_quotas {finals:?} != replayed {:?}",
                            state.quotas
                        ));
                    }
                    let org = str_field(&value, "org").unwrap_or_default();
                    if org != state.org {
                        errors.push(format!(
                            "line {lineno}: summary org {org:?} != meta org {:?}",
                            state.org
                        ));
                    }
                }
            },
            _ => match section.as_mut() {
                None => errors.push(format!("line {lineno}: event before any meta line")),
                Some(state) => {
                    report.events += 1;
                    let seq = num_field(&value, "seq").unwrap_or(-1.0) as i64;
                    if seq < 0 {
                        errors.push(format!("line {lineno}: bad seq"));
                    } else {
                        let seq = seq as u64;
                        if let Some(last) = state.last_seq {
                            if seq <= last {
                                errors.push(format!(
                                    "line {lineno}: seq {seq} not above previous {last}"
                                ));
                            }
                        }
                        state.last_seq = Some(seq);
                    }
                    if line_type == "repartition" {
                        report.repartitions += 1;
                        if let Some(e) = apply_repartition(state, &value) {
                            errors.push(format!("line {lineno}: {e}"));
                        }
                    }
                    if line_type == "epoch" {
                        let carried = u32_field_arr(&value, "quotas").unwrap_or_default();
                        if state.adaptive && carried != state.quotas {
                            errors.push(format!(
                                "line {lineno}: epoch quotas {carried:?} != replayed {:?}",
                                state.quotas
                            ));
                        }
                    }
                }
            },
        }
    }
    if section.is_some() {
        errors.push("trailing section has no summary line".into());
    }
    if report.sections == 0 && errors.is_empty() {
        errors.push("empty trace: no meta line found".into());
    }
    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

fn apply_repartition(state: &mut SectionState, value: &Json) -> Option<String> {
    if !state.adaptive {
        return Some("repartition in a section with no initial_quotas".into());
    }
    let gainer = num_field(value, "gainer")? as usize;
    let loser = num_field(value, "loser")? as usize;
    if gainer >= state.cores || loser >= state.cores {
        return Some(format!(
            "gainer {gainer} / loser {loser} out of range for {} cores",
            state.cores
        ));
    }
    if state.quotas.get(loser).copied().unwrap_or(0) == 0 {
        return Some(format!("loser core{loser} quota would underflow"));
    }
    if let Some(q) = state.quotas.get_mut(gainer) {
        *q += 1;
    }
    if let Some(q) = state.quotas.get_mut(loser) {
        *q -= 1;
    }
    let carried = u32_field_arr(value, "quotas").unwrap_or_default();
    if carried != state.quotas {
        return Some(format!(
            "carried quotas {carried:?} != replayed {:?}",
            state.quotas
        ));
    }
    let sum: u64 = state.quotas.iter().map(|&q| u64::from(q)).sum();
    if sum != state.quota_sum {
        return Some(format!(
            "quota sum changed from {} to {sum}",
            state.quota_sum
        ));
    }
    None
}

/// Checks the exact top-level key set and coarse value types for one
/// line; returns a description of the first problem.
fn check_keys(value: &Json, line_type: &str) -> Option<String> {
    let Some(required) = required_keys(line_type) else {
        return Some(format!("unknown line type {line_type:?}"));
    };
    let Json::Obj(pairs) = value else {
        return Some("line is not a JSON object".into());
    };
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    for want in required {
        if !keys.contains(want) {
            return Some(format!("missing key {want:?}"));
        }
    }
    for key in &keys {
        if !required.contains(key) {
            return Some(format!("unexpected key {key:?}"));
        }
    }
    for (key, v) in pairs {
        let ok = match key.as_str() {
            "type" | "org" => matches!(v, Json::Str(_)),
            "over_quota" | "functional" => matches!(v, Json::Bool(_)),
            "quotas" | "initial_quotas" | "final_quotas" => match v {
                Json::Arr(items) => items.iter().all(|i| matches!(i, Json::Num(_))),
                _ => false,
            },
            "occupancy" => match v {
                Json::Arr(items) => items.iter().all(occupancy_entry_ok),
                _ => false,
            },
            "counts" => match v {
                Json::Obj(entries) => entries.iter().all(|(name, n)| {
                    EventKind::from_name(name).is_some() && matches!(n, Json::Num(_))
                }),
                _ => false,
            },
            _ => matches!(v, Json::Num(_)),
        };
        if !ok {
            return Some(format!("key {key:?} has the wrong value type"));
        }
    }
    None
}

fn occupancy_entry_ok(entry: &Json) -> bool {
    match entry {
        Json::Obj(pairs) => {
            pairs.len() == 3
                && ["core", "private", "shared"].iter().all(|k| {
                    pairs
                        .iter()
                        .any(|(key, v)| key == k && matches!(v, Json::Num(_)))
                })
        }
        _ => false,
    }
}

fn num_field(value: &Json, key: &str) -> Option<f64> {
    value.get(key).and_then(Json::as_num)
}

fn str_field(value: &Json, key: &str) -> Option<String> {
    match value.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn u32_field_arr(value: &Json, key: &str) -> Option<Vec<u32>> {
    match value.get(key) {
        Some(Json::Arr(items)) => items.iter().map(|i| i.as_num().map(|n| n as u32)).collect(),
        _ => None,
    }
}

/// One parsed section of a JSONL trace, for display purposes
/// (validation goes through [`validate_jsonl`]).
#[derive(Debug, Clone)]
pub struct TraceSection {
    /// The parsed `meta` line.
    pub meta: Json,
    /// The parsed event lines, in file order.
    pub records: Vec<Json>,
    /// The parsed `summary` line, when present.
    pub summary: Option<Json>,
}

/// Splits a JSONL document into sections without semantic validation
/// (unknown line types are kept as events).
///
/// # Errors
///
/// Reports unparsable lines or events appearing before the first `meta`.
pub fn parse_sections(text: &str) -> Result<Vec<TraceSection>, String> {
    let mut sections: Vec<TraceSection> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            Json::parse(line).map_err(|e| format!("line {}: not valid JSON: {e}", idx + 1))?;
        let line_type = match value.get("type") {
            Some(Json::Str(t)) => t.clone(),
            _ => return Err(format!("line {}: missing \"type\" field", idx + 1)),
        };
        match line_type.as_str() {
            "meta" => sections.push(TraceSection {
                meta: value,
                records: Vec::new(),
                summary: None,
            }),
            "summary" => match sections.last_mut() {
                Some(s) => s.summary = Some(value),
                None => return Err(format!("line {}: summary before meta", idx + 1)),
            },
            _ => match sections.last_mut() {
                Some(s) => s.records.push(value),
                None => return Err(format!("line {}: event before meta", idx + 1)),
            },
        }
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CoreOccupancy;
    use crate::sink::{Recorder, Sink, TraceMeta};
    use simcore::types::{CoreId, Cycle};

    fn sample_trace() -> Trace {
        let rec = Recorder::with_capacity(64);
        let mut sink = rec.clone();
        let c0 = CoreId::from_index(0);
        let c1 = CoreId::from_index(1);
        sink.emit(Cycle::new(10), Event::LruHit { core: c0 });
        sink.emit(Cycle::new(20), Event::ShadowHit { core: c1, set: 3 });
        sink.emit(Cycle::new(25), Event::TimeSampleWindow { functional: true });
        sink.emit(
            Cycle::new(30),
            Event::SharedEviction {
                set: 3,
                owner: c1,
                over_quota: true,
            },
        );
        sink.emit(
            Cycle::new(40),
            Event::MemoryFill {
                core: c0,
                queue_delay: 2,
            },
        );
        sink.emit(
            Cycle::new(50),
            Event::Repartition {
                epoch: 1,
                gainer: c0,
                loser: c1,
                gain: 12,
                loss: 3,
                quotas: vec![5, 3, 4, 4],
            },
        );
        sink.emit(
            Cycle::new(50),
            Event::Epoch {
                index: 1,
                quotas: vec![5, 3, 4, 4],
                occupancy: vec![CoreOccupancy {
                    core: c0,
                    private_blocks: 7,
                    shared_blocks: 1,
                }],
                private_hits: 100,
                shared_hits: 20,
                misses: 2000,
                demotions: 5,
                evictions: 40,
            },
        );
        rec.finish(
            TraceMeta {
                org: "adaptive".into(),
                cores: 4,
                ring_capacity: 64,
                initial_quotas: vec![4, 4, 4, 4],
            },
            vec![5, 3, 4, 4],
        )
    }

    #[test]
    fn rendered_trace_validates() {
        let text = render_jsonl(&[sample_trace()]);
        let report = validate_jsonl(&text).expect("schema-valid trace");
        assert_eq!(report.sections, 1);
        assert_eq!(report.events, 7);
        assert_eq!(report.repartitions, 1);
    }

    #[test]
    fn every_event_kind_renders_a_known_schema() {
        for kind in EventKind::ALL {
            assert!(required_keys(kind.name()).is_some(), "no schema for {kind}");
        }
    }

    #[test]
    fn multiple_sections_concatenate() {
        let mut shared = sample_trace();
        shared.meta.org = "shared".into();
        shared.meta.initial_quotas = Vec::new();
        shared.final_quotas = Vec::new();
        // A non-adaptive section keeps only non-quota events.
        shared.events.retain(|r| {
            !matches!(
                r.event.kind(),
                EventKind::Repartition | EventKind::Epoch | EventKind::ShadowHit
            )
        });
        let text = render_jsonl(&[sample_trace(), shared]);
        let report = validate_jsonl(&text).expect("two valid sections");
        assert_eq!(report.sections, 2);
        let sections = parse_sections(&text).expect("parsable");
        assert_eq!(sections.len(), 2);
        assert!(sections[1].summary.is_some());
    }

    #[test]
    fn validator_rejects_broken_replay() {
        let mut trace = sample_trace();
        trace.final_quotas = vec![9, 9, 9, 9];
        let errs = validate_jsonl(&render_jsonl(&[trace])).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("final_quotas")), "{errs:?}");
    }

    #[test]
    fn validator_rejects_schema_drift() {
        let good = render_jsonl(&[sample_trace()]);
        // Add an unexpected key to the first event line.
        let drifted = good.replacen(
            "\"type\":\"lru_hit\"",
            "\"type\":\"lru_hit\",\"extra\":1",
            1,
        );
        let errs = validate_jsonl(&drifted).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("unexpected key")),
            "{errs:?}"
        );
        // Remove a required key.
        let drifted = good.replacen(",\"set\":3,", ",", 1);
        assert!(validate_jsonl(&drifted).is_err());
        // Unknown type.
        let drifted = good.replacen("\"type\":\"lru_hit\"", "\"type\":\"zzz\"", 1);
        let errs = validate_jsonl(&drifted).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("unknown line type")),
            "{errs:?}"
        );
    }

    #[test]
    fn validator_rejects_non_monotone_seq() {
        let trace = sample_trace();
        let text = render_jsonl(&[trace]);
        // Duplicate an event line (same seq twice).
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(2, lines[1]);
        let errs = validate_jsonl(&lines.join("\n")).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("seq")), "{errs:?}");
    }

    #[test]
    fn metrics_document_has_stable_shape() {
        let doc = metrics_json(&[sample_trace()]);
        let schema = doc.schema();
        assert!(schema.iter().any(|p| p == "sections[].org"));
        assert!(schema
            .iter()
            .any(|p| p.starts_with("sections[].metrics.events.")));
        // Round-trips through the parser.
        assert_eq!(Json::parse(&doc.render()).expect("valid"), doc);
    }
}
