//! Quota-trajectory replay: reconstructing `SharingEngine::quotas()`
//! from the Repartition event stream.
//!
//! The sharing engine only ever moves **one block/set of quota** from a
//! loser to a gainer per re-evaluation (paper §3.3), so the full quota
//! state at any point is `initial + Σ applied repartitions`. Replaying
//! the structural event stream must land bit-for-bit on the engine's
//! final `quotas()` — the property the trace-smoke CI job and the
//! proptests enforce.

use crate::event::{Event, TraceRecord};

/// Replays `events` over `initial`, returning the final quota vector.
///
/// # Errors
///
/// Reports (with the offending sequence number) a gainer/loser index out
/// of range, a quota that would underflow, an event-carried quota vector
/// that disagrees with the replayed state, or a quota-sum change.
pub fn replay_quotas(initial: &[u32], events: &[TraceRecord]) -> Result<Vec<u32>, String> {
    let mut quotas = initial.to_vec();
    let total: u64 = quotas.iter().map(|&q| u64::from(q)).sum();
    for record in events {
        let Event::Repartition {
            gainer,
            loser,
            quotas: reported,
            ..
        } = &record.event
        else {
            continue;
        };
        let seq = record.seq;
        let g = gainer.index();
        let l = loser.index();
        if g >= quotas.len() || l >= quotas.len() {
            return Err(format!(
                "event #{seq}: core out of range (gainer {g}, loser {l}, {} cores)",
                quotas.len()
            ));
        }
        if quotas.get(l).copied().unwrap_or(0) == 0 {
            return Err(format!("event #{seq}: loser core{l} quota would underflow"));
        }
        if let Some(q) = quotas.get_mut(g) {
            *q += 1;
        }
        if let Some(q) = quotas.get_mut(l) {
            *q -= 1;
        }
        if reported != &quotas {
            return Err(format!(
                "event #{seq}: carried quotas {reported:?} != replayed {quotas:?}"
            ));
        }
        let sum: u64 = quotas.iter().map(|&q| u64::from(q)).sum();
        if sum != total {
            return Err(format!(
                "event #{seq}: quota sum changed from {total} to {sum}"
            ));
        }
    }
    Ok(quotas)
}

/// Checks that every Repartition event in `events` conserves the quota
/// sum `total` (each carried vector sums to `total`).
///
/// # Errors
///
/// Reports the first non-conserving event with its sequence number.
pub fn check_conservation(events: &[TraceRecord], total: u64) -> Result<(), String> {
    for record in events {
        if let Event::Repartition { quotas, .. } = &record.event {
            let sum: u64 = quotas.iter().map(|&q| u64::from(q)).sum();
            if sum != total {
                return Err(format!(
                    "event #{}: quotas {quotas:?} sum to {sum}, expected {total}",
                    record.seq
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::types::{CoreId, Cycle};

    fn rep(seq: u64, gainer: usize, loser: usize, quotas: Vec<u32>) -> TraceRecord {
        TraceRecord {
            seq,
            at: Cycle::new(seq),
            event: Event::Repartition {
                epoch: seq,
                gainer: CoreId::from_index(gainer as u8),
                loser: CoreId::from_index(loser as u8),
                gain: 10,
                loss: 1,
                quotas,
            },
        }
    }

    #[test]
    fn replay_applies_moves_in_order() {
        let events = vec![
            rep(0, 0, 1, vec![5, 3, 4, 4]),
            rep(1, 0, 2, vec![6, 3, 3, 4]),
            rep(2, 3, 0, vec![5, 3, 3, 5]),
        ];
        let quotas = replay_quotas(&[4, 4, 4, 4], &events).unwrap();
        assert_eq!(quotas, vec![5, 3, 3, 5]);
    }

    #[test]
    fn replay_ignores_non_structural_events() {
        let events = vec![
            TraceRecord {
                seq: 0,
                at: Cycle::new(0),
                event: Event::LruHit {
                    core: CoreId::from_index(0),
                },
            },
            rep(1, 1, 0, vec![3, 5, 4, 4]),
        ];
        assert_eq!(
            replay_quotas(&[4, 4, 4, 4], &events).unwrap(),
            vec![3, 5, 4, 4]
        );
    }

    #[test]
    fn replay_rejects_disagreeing_carried_quotas() {
        let events = vec![rep(7, 0, 1, vec![9, 9, 9, 9])];
        let err = replay_quotas(&[4, 4, 4, 4], &events).unwrap_err();
        assert!(err.contains("#7"), "{err}");
        assert!(err.contains("carried"), "{err}");
    }

    #[test]
    fn replay_rejects_underflow_and_bad_cores() {
        let events = vec![rep(0, 0, 1, vec![5, 0, 4, 4])];
        assert!(replay_quotas(&[4, 0, 4, 4], &events)
            .unwrap_err()
            .contains("underflow"));
        let events = vec![rep(0, 9, 1, vec![5, 3])];
        assert!(replay_quotas(&[4, 4], &events)
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn conservation_check_flags_bad_sums() {
        let good = vec![rep(0, 0, 1, vec![5, 3, 4, 4])];
        assert!(check_conservation(&good, 16).is_ok());
        let bad = vec![rep(3, 0, 1, vec![5, 3, 4, 5])];
        assert!(check_conservation(&bad, 16).unwrap_err().contains("#3"));
    }
}
