//! Process-wide trace collection for the figure binaries.
//!
//! The experiment harness sits behind several layers of driver functions
//! (`fig6`, `run_cells`, `run_mix`); threading a recorder through every
//! signature would churn the whole public API for an opt-in feature. So
//! the binaries [`install`] a collector before running their driver and
//! [`uninstall`] it afterwards: while active, `run_mix` records each
//! cell with its own [`Recorder`](crate::Recorder) and the runner
//! [`submit`]s the finished [`Trace`]s *in cell order* (after the
//! parallel map joins), so the collected sequence is identical for every
//! `--jobs` value.
//!
//! The state is a plain `Mutex` — no `once_cell`, and poisoning is
//! ignored (a trace is pure diagnostics; a panicked cell must not take
//! the collector down with it).

use std::sync::{Mutex, MutexGuard};

use crate::sink::Trace;

struct State {
    capacity: usize,
    traces: Vec<Trace>,
}

static COLLECTOR: Mutex<Option<State>> = Mutex::new(None);

fn lock() -> MutexGuard<'static, Option<State>> {
    COLLECTOR
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Activates collection; recorded cells use rings of `capacity` events.
/// Replaces (and discards) any previously collected traces.
pub fn install(capacity: usize) {
    *lock() = Some(State {
        capacity: capacity.max(1),
        traces: Vec::new(),
    });
}

/// Whether a collector is active.
pub fn active() -> bool {
    lock().is_some()
}

/// The active collector's ring capacity, or `None` when inactive.
pub fn capacity() -> Option<usize> {
    lock().as_ref().map(|s| s.capacity)
}

/// Appends one finished trace. A no-op when no collector is active, so
/// submission sites need no guards of their own.
pub fn submit(trace: Trace) {
    if let Some(s) = lock().as_mut() {
        s.traces.push(trace);
    }
}

/// Removes and returns everything collected so far, leaving the
/// collector active (for binaries exporting several figures in one run).
pub fn drain() -> Vec<Trace> {
    lock()
        .as_mut()
        .map(|s| std::mem::take(&mut s.traces))
        .unwrap_or_default()
}

/// Deactivates the collector and returns everything it gathered.
pub fn uninstall() -> Vec<Trace> {
    lock().take().map(|s| s.traces).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceMeta;

    fn trace(org: &str) -> Trace {
        Trace {
            meta: TraceMeta {
                org: org.to_string(),
                cores: 4,
                ring_capacity: 8,
                initial_quotas: Vec::new(),
            },
            events: Vec::new(),
            dropped: 0,
            emitted: 0,
            counts: Vec::new(),
            per_core_counts: Vec::new(),
            final_quotas: Vec::new(),
        }
    }

    // One test exercises the whole lifecycle: the collector is process
    // state, so splitting this into parallel #[test]s would race.
    #[test]
    fn lifecycle_install_submit_drain_uninstall() {
        assert!(!active());
        assert_eq!(capacity(), None);
        submit(trace("dropped-when-inactive"));
        assert!(uninstall().is_empty());

        install(64);
        assert!(active());
        assert_eq!(capacity(), Some(64));
        submit(trace("private"));
        submit(trace("adaptive"));
        let first = drain();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].meta.org, "private");
        assert!(active(), "drain keeps the collector active");

        submit(trace("shared"));
        let rest = uninstall();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].meta.org, "shared");
        assert!(!active());

        install(0);
        assert_eq!(capacity(), Some(1), "capacity is clamped to one");
        let _ = uninstall();
    }
}
