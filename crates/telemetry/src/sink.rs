//! Event sinks: the zero-cost-when-off emission boundary.
//!
//! Simulator components are generic over an event [`Sink`]. The default,
//! [`NullSink`], advertises `ENABLED = false`; every emission site guards
//! its payload construction with `if S::ENABLED { ... }`, so after
//! monomorphization the disabled path contains no tracing code at all —
//! no branch, no allocation, no call. The recording sink ([`Recorder`])
//! shares one [`Tracer`] between the cores and the L3 of a single
//! simulated chip via `Rc<RefCell<_>>`; it is deliberately not `Send` —
//! the parallel experiment runner gives each simulation cell its own
//! recorder and extracts a plain-data [`Trace`] before results cross
//! threads.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use simcore::types::Cycle;

use crate::event::{Event, EventKind, TraceRecord};
use crate::registry::Registry;

/// Receives simulator events. See the module docs for the zero-cost
/// contract.
pub trait Sink: Clone + std::fmt::Debug {
    /// Whether this sink records anything. Emission sites must guard all
    /// payload construction with `if S::ENABLED { ... }` so a `false`
    /// sink compiles to nothing.
    const ENABLED: bool;

    /// Records one event at simulated time `at`.
    fn emit(&mut self, at: Cycle, event: Event);
}

/// The default sink: discards everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _at: Cycle, _event: Event) {}
}

/// Fixed-capacity typed-event buffer with full retention of structural
/// events.
///
/// High-frequency events (hits, evictions, MSHR traffic) cycle through a
/// ring holding the most recent `capacity` records; structural events
/// ([`EventKind::is_structural`]) are kept for the whole run, so the
/// quota trajectory is always complete no matter how small the ring is.
/// Per-kind and per-kind-per-core counts are maintained for every event,
/// including those that later fall off the ring.
#[derive(Debug, Clone)]
pub struct Tracer {
    capacity: usize,
    next_seq: u64,
    ring: VecDeque<TraceRecord>,
    structural: Vec<TraceRecord>,
    dropped: u64,
    counts: [u64; EventKind::ALL.len()],
    per_core: Vec<Vec<u64>>,
}

impl Tracer {
    /// Creates a tracer whose ring keeps the last `capacity`
    /// high-frequency events (structural events are always kept).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            capacity: capacity.max(1),
            next_seq: 0,
            ring: VecDeque::new(),
            structural: Vec::new(),
            dropped: 0,
            counts: [0; EventKind::ALL.len()],
            per_core: vec![Vec::new(); EventKind::ALL.len()],
        }
    }

    /// Records one event.
    pub fn record(&mut self, at: Cycle, event: Event) {
        let kind = event.kind();
        if let Some(slot) = self.counts.get_mut(kind.index()) {
            *slot += 1;
        }
        if let Some(core) = event.core() {
            if let Some(row) = self.per_core.get_mut(kind.index()) {
                if row.len() <= core.index() {
                    row.resize(core.index() + 1, 0);
                }
                if let Some(cell) = row.get_mut(core.index()) {
                    *cell += 1;
                }
            }
        }
        let record = TraceRecord {
            seq: self.next_seq,
            at,
            event,
        };
        self.next_seq += 1;
        if kind.is_structural() {
            self.structural.push(record);
        } else {
            if self.ring.len() >= self.capacity {
                self.ring.pop_front();
                self.dropped += 1;
            }
            self.ring.push_back(record);
        }
    }

    /// Total events emitted so far (recorded + dropped).
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// High-frequency events that fell off the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Count of events of `kind` emitted so far.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts.get(kind.index()).copied().unwrap_or(0)
    }

    /// Count of events of `kind` attributed to `core` so far.
    pub fn count_for_core(&self, kind: EventKind, core: usize) -> u64 {
        self.per_core
            .get(kind.index())
            .and_then(|row| row.get(core))
            .copied()
            .unwrap_or(0)
    }

    /// Per-core counts for `kind` (indexed by core; may be shorter than
    /// the machine's core count if high cores never emitted).
    pub fn per_core_counts(&self, kind: EventKind) -> Vec<u64> {
        self.per_core.get(kind.index()).cloned().unwrap_or_default()
    }

    /// All retained records (structural + ring) merged by sequence
    /// number.
    pub fn events(&self) -> Vec<TraceRecord> {
        let mut merged = Vec::with_capacity(self.structural.len() + self.ring.len());
        let mut s = self.structural.iter().peekable();
        let mut r = self.ring.iter().peekable();
        loop {
            let take_structural = match (s.peek(), r.peek()) {
                (Some(a), Some(b)) => a.seq < b.seq,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let next = if take_structural { s.next() } else { r.next() };
            if let Some(record) = next {
                merged.push(record.clone());
            }
        }
        merged
    }

    /// The last `n` retained records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        let mut all = self.events();
        let start = all.len().saturating_sub(n);
        all.split_off(start)
    }
}

/// Run-level metadata exported as the first JSONL line of a section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Label of the L3 organization that produced the section.
    pub org: String,
    /// Core count of the simulated machine.
    pub cores: usize,
    /// Ring capacity the tracer ran with.
    pub ring_capacity: usize,
    /// Starting quota vector for adaptive runs (empty otherwise); the
    /// replay base for the Repartition event stream.
    pub initial_quotas: Vec<u32>,
}

/// A finished, plain-data trace: safe to move across threads, compare
/// and export.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Run metadata.
    pub meta: TraceMeta,
    /// Retained records in sequence order.
    pub events: Vec<TraceRecord>,
    /// High-frequency events that fell off the ring.
    pub dropped: u64,
    /// Total events emitted (retained + dropped).
    pub emitted: u64,
    /// Per-kind totals in taxonomy order, zero kinds omitted.
    pub counts: Vec<(&'static str, u64)>,
    /// Per-kind, per-core totals (same kind order as `counts`); counts
    /// every emitted event, including those dropped from the ring.
    pub per_core_counts: Vec<(&'static str, Vec<u64>)>,
    /// Final quota vector for adaptive runs (empty otherwise).
    pub final_quotas: Vec<u32>,
}

impl Trace {
    /// Builds the hierarchical metrics view of this trace: per-kind
    /// totals under `events/<kind>`, per-core splits under
    /// `events/<kind>/core<i>`, and tracer health under `trace/`.
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        for &(name, total) in &self.counts {
            reg.add(&format!("events/{name}"), total);
        }
        for (name, row) in &self.per_core_counts {
            for (core, &n) in row.iter().enumerate() {
                if n > 0 {
                    reg.add(&format!("events/{name}/core{core}"), n);
                }
            }
        }
        reg.add("trace/emitted", self.emitted);
        reg.add("trace/dropped", self.dropped);
        reg.add("trace/retained", self.events.len() as u64);
        reg
    }
}

/// A clonable handle to a shared [`Tracer`], implementing [`Sink`].
///
/// All components of one simulated chip clone the same recorder, so
/// their events interleave in one globally-ordered stream. Not `Send`:
/// extract a [`Trace`] with [`Recorder::finish`] before crossing
/// threads.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Rc<RefCell<Tracer>>,
}

impl Recorder {
    /// Creates a recorder over a fresh tracer with the given ring
    /// capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Rc::new(RefCell::new(Tracer::with_capacity(capacity))),
        }
    }

    /// Default ring capacity used by the CLI and the experiment harness.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// The last `n` retained records, oldest first (for failure dumps).
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        self.inner.borrow().tail(n)
    }

    /// Total events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.inner.borrow().emitted()
    }

    /// Count of events of `kind` emitted so far.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.inner.borrow().count(kind)
    }

    /// Freezes the recorded stream into a plain-data [`Trace`].
    pub fn finish(&self, meta: TraceMeta, final_quotas: Vec<u32>) -> Trace {
        let tracer = self.inner.borrow();
        let counts: Vec<(&'static str, u64)> = EventKind::ALL
            .into_iter()
            .filter_map(|k| {
                let n = tracer.count(k);
                (n > 0).then_some((k.name(), n))
            })
            .collect();
        let per_core_counts: Vec<(&'static str, Vec<u64>)> = EventKind::ALL
            .into_iter()
            .filter_map(|k| {
                let row = tracer.per_core_counts(k);
                row.iter().any(|&n| n > 0).then_some((k.name(), row))
            })
            .collect();
        Trace {
            meta,
            events: tracer.events(),
            dropped: tracer.dropped(),
            emitted: tracer.emitted(),
            counts,
            per_core_counts,
            final_quotas,
        }
    }
}

impl Sink for Recorder {
    const ENABLED: bool = true;

    #[inline]
    fn emit(&mut self, at: Cycle, event: Event) {
        self.inner.borrow_mut().record(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::types::CoreId;

    fn lru(core: u8) -> Event {
        Event::LruHit {
            core: CoreId::from_index(core),
        }
    }

    fn repartition(epoch: u64) -> Event {
        Event::Repartition {
            epoch,
            gainer: CoreId::from_index(0),
            loser: CoreId::from_index(1),
            gain: 10,
            loss: 2,
            quotas: vec![5, 3, 4, 4],
        }
    }

    #[test]
    fn ring_drops_oldest_high_frequency_events() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.record(Cycle::new(i), lru(0));
        }
        assert_eq!(t.emitted(), 5);
        assert_eq!(t.dropped(), 3);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        // Counts survive the drops.
        assert_eq!(t.count(EventKind::LruHit), 5);
    }

    #[test]
    fn structural_events_survive_ring_pressure() {
        let mut t = Tracer::with_capacity(1);
        t.record(Cycle::new(1), repartition(1));
        for i in 2..10 {
            t.record(Cycle::new(i), lru(1));
        }
        t.record(Cycle::new(10), repartition(2));
        let events = t.events();
        // Both repartitions retained plus the single surviving ring slot,
        // merged in sequence order.
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(
            events
                .iter()
                .filter(|r| r.event.kind() == EventKind::Repartition)
                .count(),
            2
        );
    }

    #[test]
    fn tail_returns_most_recent_records() {
        let mut t = Tracer::with_capacity(8);
        for i in 0..6 {
            t.record(Cycle::new(i), lru((i % 4) as u8));
        }
        let tail = t.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
        assert_eq!(tail[1].seq, 5);
        assert!(t.tail(100).len() == 6);
    }

    #[test]
    fn per_core_counts_attribute_correctly() {
        let mut t = Tracer::with_capacity(4);
        t.record(Cycle::new(0), lru(0));
        t.record(Cycle::new(1), lru(2));
        t.record(Cycle::new(2), lru(2));
        assert_eq!(t.count_for_core(EventKind::LruHit, 0), 1);
        assert_eq!(t.count_for_core(EventKind::LruHit, 1), 0);
        assert_eq!(t.count_for_core(EventKind::LruHit, 2), 2);
    }

    #[test]
    fn recorder_clones_share_one_stream() {
        let rec = Recorder::with_capacity(16);
        let mut a = rec.clone();
        let mut b = rec.clone();
        a.emit(Cycle::new(1), lru(0));
        b.emit(Cycle::new(2), lru(1));
        a.emit(Cycle::new(3), repartition(1));
        assert_eq!(rec.emitted(), 3);
        let trace = rec.finish(
            TraceMeta {
                org: "adaptive".into(),
                cores: 4,
                ring_capacity: 16,
                initial_quotas: vec![4; 4],
            },
            vec![5, 3, 4, 4],
        );
        assert_eq!(trace.events.len(), 3);
        assert!(trace.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(trace.counts, vec![("repartition", 1), ("lru_hit", 2)]);
    }

    #[test]
    fn null_sink_is_disabled_and_inert() {
        fn enabled<S: Sink>(_: &S) -> bool {
            S::ENABLED
        }
        let mut sink = NullSink;
        assert!(!enabled(&sink));
        assert!(enabled(&Recorder::with_capacity(1)));
        sink.emit(Cycle::new(0), lru(0));
    }

    #[test]
    fn registry_view_exposes_hierarchy() {
        let rec = Recorder::with_capacity(16);
        let mut s = rec.clone();
        s.emit(Cycle::new(0), lru(0));
        s.emit(Cycle::new(1), lru(0));
        s.emit(Cycle::new(2), lru(3));
        let trace = rec.finish(
            TraceMeta {
                org: "adaptive".into(),
                cores: 4,
                ring_capacity: 16,
                initial_quotas: vec![4; 4],
            },
            Vec::new(),
        );
        let reg = trace.registry();
        assert_eq!(reg.counter("events/lru_hit"), Some(3));
        assert_eq!(reg.counter("events/lru_hit/core0"), Some(2));
        assert_eq!(reg.counter("events/lru_hit/core3"), Some(1));
        assert_eq!(reg.counter("trace/emitted"), Some(3));
    }
}
