//! Hierarchical counter/gauge registry.
//!
//! Metric names are `/`-separated paths (`"events/lru_hit/core0"`,
//! `"l3/miss_rate"`). The registry stores entries in first-insertion
//! order in a plain `Vec` — no hash containers, per the workspace
//! determinism rules — and [`Registry::to_json`] folds the paths into a
//! nested JSON object for the `--metrics-out` export.

use crate::json::Json;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

/// A point-in-time measurement (rates, ratios, positions).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(0.0)
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&mut self, value: f64) {
        self.0 = value;
    }

    /// The current value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }
}

/// A per-core family of counters sharing one metric name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Family {
    counters: Vec<Counter>,
}

impl Family {
    /// A family with one counter per core.
    pub fn new(cores: usize) -> Self {
        Family {
            counters: vec![Counter::new(); cores],
        }
    }

    /// Increments the counter of `core` (ignored when out of range).
    #[inline]
    pub fn inc(&mut self, core: usize) {
        if let Some(c) = self.counters.get_mut(core) {
            c.inc();
        }
    }

    /// The count for `core` (zero when out of range).
    pub fn get(&self, core: usize) -> u64 {
        self.counters.get(core).map_or(0, |c| c.get())
    }

    /// Sum over all cores.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|c| c.get()).sum()
    }

    /// Per-core counts in core order.
    pub fn values(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.get()).collect()
    }
}

/// One registered value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(Counter),
    Gauge(Gauge),
}

/// Insertion-ordered hierarchical metric store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: Vec<(String, Value)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `n` to the counter at `path`, creating it at zero first if
    /// needed. A gauge already registered under the same path is left
    /// untouched.
    pub fn add(&mut self, path: &str, n: u64) {
        match self.entries.iter_mut().find(|(k, _)| k == path) {
            Some((_, Value::Counter(c))) => c.add(n),
            Some((_, Value::Gauge(_))) => {}
            None => {
                let mut c = Counter::new();
                c.add(n);
                self.entries.push((path.to_string(), Value::Counter(c)));
            }
        }
    }

    /// Sets the gauge at `path`, creating it if needed. A counter already
    /// registered under the same path is left untouched.
    pub fn set(&mut self, path: &str, value: f64) {
        match self.entries.iter_mut().find(|(k, _)| k == path) {
            Some((_, Value::Gauge(g))) => g.set(value),
            Some((_, Value::Counter(_))) => {}
            None => {
                let mut g = Gauge::new();
                g.set(value);
                self.entries.push((path.to_string(), Value::Gauge(g)));
            }
        }
    }

    /// The counter value at `path`, if a counter is registered there.
    pub fn counter(&self, path: &str) -> Option<u64> {
        self.entries.iter().find(|(k, _)| k == path).and_then(|e| {
            if let Value::Counter(c) = e.1 {
                Some(c.get())
            } else {
                None
            }
        })
    }

    /// The gauge value at `path`, if a gauge is registered there.
    pub fn gauge(&self, path: &str) -> Option<f64> {
        self.entries.iter().find(|(k, _)| k == path).and_then(|e| {
            if let Value::Gauge(g) = e.1 {
                Some(g.get())
            } else {
                None
            }
        })
    }

    /// Merges a per-core [`Family`] under `path` (total) and
    /// `path/core<i>` (per core).
    pub fn add_family(&mut self, path: &str, family: &Family) {
        self.add(path, family.total());
        for (core, value) in family.values().into_iter().enumerate() {
            if value > 0 {
                self.add(&format!("{path}/core{core}"), value);
            }
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds the `/`-separated paths into a nested JSON object,
    /// preserving first-insertion order at every level.
    pub fn to_json(&self) -> Json {
        let flat: Vec<(&str, Json)> = self
            .entries
            .iter()
            .map(|(k, v)| {
                let value = match v {
                    Value::Counter(c) => Json::num(c.get() as f64),
                    Value::Gauge(g) => Json::num(g.get()),
                };
                (k.as_str(), value)
            })
            .collect();
        nest(&flat)
    }
}

/// Groups `(path, value)` pairs by their first path segment, recursing
/// on the remainder. A path that is both a leaf and a prefix of deeper
/// paths (`"hits"` next to `"hits/core0"`) folds its leaf value into the
/// group as `"total"`, so the rendered object never has duplicate keys.
fn nest(flat: &[(&str, Json)]) -> Json {
    type Head<'a> = (&'a str, Option<Json>, Vec<(&'a str, Json)>);
    let mut heads: Vec<Head<'_>> = Vec::new();
    for (path, value) in flat {
        let (head, rest) = match path.split_once('/') {
            Some((h, r)) => (h, Some(r)),
            None => (*path, None),
        };
        let idx = match heads.iter().position(|(h, _, _)| *h == head) {
            Some(i) => i,
            None => {
                heads.push((head, None, Vec::new()));
                heads.len() - 1
            }
        };
        if let Some(entry) = heads.get_mut(idx) {
            match rest {
                None => entry.1 = Some(value.clone()),
                Some(r) => entry.2.push((r, value.clone())),
            }
        }
    }
    let mut pairs: Vec<(String, Json)> = Vec::new();
    for (head, leaf, children) in heads {
        let value = match (leaf, children.is_empty()) {
            (Some(v), true) => v,
            (None, _) => nest(&children),
            (Some(v), false) => {
                let mut combined: Vec<(&str, Json)> = vec![("total", v)];
                combined.extend(children);
                nest(&combined)
            }
        };
        pairs.push((head.to_string(), value));
    }
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_replace() {
        let mut reg = Registry::new();
        reg.add("a/b", 2);
        reg.add("a/b", 3);
        reg.set("a/r", 0.5);
        reg.set("a/r", 0.75);
        assert_eq!(reg.counter("a/b"), Some(5));
        assert_eq!(reg.gauge("a/r"), Some(0.75));
        assert_eq!(reg.counter("a/r"), None);
        assert_eq!(reg.gauge("a/b"), None);
    }

    #[test]
    fn family_tracks_per_core_counts() {
        let mut fam = Family::new(4);
        fam.inc(0);
        fam.inc(2);
        fam.inc(2);
        fam.inc(9); // out of range: ignored
        assert_eq!(fam.total(), 3);
        assert_eq!(fam.values(), vec![1, 0, 2, 0]);
        let mut reg = Registry::new();
        reg.add_family("hits", &fam);
        assert_eq!(reg.counter("hits"), Some(3));
        assert_eq!(reg.counter("hits/core2"), Some(2));
        assert_eq!(reg.counter("hits/core1"), None);
    }

    #[test]
    fn to_json_nests_by_path_segment() {
        let mut reg = Registry::new();
        reg.add("events/lru_hit", 7);
        reg.add("events/lru_hit/core0", 4);
        reg.add("trace/dropped", 0);
        let json = reg.to_json();
        let lru = json
            .get("events")
            .and_then(|e| e.get("lru_hit"))
            .expect("events.lru_hit group");
        assert_eq!(lru.get("total").and_then(Json::as_num), Some(7.0));
        assert_eq!(lru.get("core0").and_then(Json::as_num), Some(4.0));
        assert_eq!(
            json.get("trace")
                .and_then(|t| t.get("dropped"))
                .and_then(Json::as_num),
            Some(0.0)
        );
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut reg = Registry::new();
        reg.add("z", 1);
        reg.add("a", 1);
        let json = reg.to_json();
        let Json::Obj(pairs) = json else {
            panic!("registry renders an object");
        };
        assert_eq!(pairs[0].0, "z");
        assert_eq!(pairs[1].0, "a");
    }
}
