//! The typed event taxonomy recorded by the tracing subsystem.
//!
//! Every observable state change of the sharing engine and the cache
//! hierarchy maps to one [`Event`] variant. Events split into two tiers:
//!
//! - **structural** events ([`Event::Repartition`], [`Event::Epoch`]) are
//!   rare (one per 2000-miss re-evaluation period) and carry the full
//!   decision state — they are retained for the whole run so the quota
//!   trajectory can be replayed exactly;
//! - **high-frequency** events (hits, demotions, evictions, MSHR and
//!   memory traffic) are recorded into a fixed-capacity ring buffer that
//!   keeps the most recent window (see [`crate::Tracer`]).

use std::fmt;

use simcore::types::{CoreId, Cycle};

/// Per-core block occupancy inside one adaptive L3 snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreOccupancy {
    /// The owning core.
    pub core: CoreId,
    /// Blocks the core holds inside private partitions (its own quota).
    pub private_blocks: u64,
    /// Blocks the core owns that currently live in shared partitions.
    pub shared_blocks: u64,
}

/// One traced simulator event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The sharing engine moved one block/set of quota from `loser` to
    /// `gainer` at a re-evaluation boundary (paper §3.3).
    Repartition {
        /// Re-evaluation epoch that made this decision (1-based count of
        /// completed epochs).
        epoch: u64,
        /// Core whose quota grew by one block per set.
        gainer: CoreId,
        /// Core whose quota shrank by one block per set.
        loser: CoreId,
        /// Estimated misses avoided by growing the gainer (shadow hits).
        gain: u64,
        /// Estimated extra misses for the loser (LRU hits).
        loss: u64,
        /// Quota vector *after* applying the move.
        quotas: Vec<u32>,
    },
    /// The time-sampling scheduler crossed a window boundary: `functional
    /// = true` when a detailed window ends and a functional-warming gap
    /// begins, `false` when the gap ends and detail resumes. Rare (two
    /// per sampling period) and structural, so a trace records the exact
    /// detailed/functional partition of the run.
    TimeSampleWindow {
        /// Whether the chip is entering a functional-warming gap.
        functional: bool,
    },
    /// Per-epoch time-series snapshot emitted at every re-evaluation
    /// boundary (whether or not quotas moved).
    Epoch {
        /// 1-based count of completed epochs.
        index: u64,
        /// Quota vector at the boundary (after any repartition).
        quotas: Vec<u32>,
        /// Per-core block occupancy of the adaptive L3.
        occupancy: Vec<CoreOccupancy>,
        /// Cumulative private-partition hits.
        private_hits: u64,
        /// Cumulative shared-partition hits.
        shared_hits: u64,
        /// Cumulative misses.
        misses: u64,
        /// Cumulative demotions (private → shared moves).
        demotions: u64,
        /// Cumulative evictions.
        evictions: u64,
    },
    /// A miss that hit in the requester's shadow tags — evidence that one
    /// more block of quota would have avoided it.
    ShadowHit {
        /// The requesting core.
        core: CoreId,
        /// The set index.
        set: u32,
    },
    /// A hit on the LRU block of a private partition — evidence that one
    /// less block of quota would have cost a miss.
    LruHit {
        /// The core that hit.
        core: CoreId,
    },
    /// A block moved from a private partition to the shared partition
    /// (lazy repartitioning or shared-reserve refill).
    Demotion {
        /// Owner of the demoted block.
        core: CoreId,
        /// The set index.
        set: u32,
    },
    /// The adaptive L3 evicted a block to make room on a miss.
    SharedEviction {
        /// The set index.
        set: u32,
        /// Owner of the evicted block.
        owner: CoreId,
        /// Whether the victim's owner was over quota (Algorithm 1 path)
        /// rather than the global-LRU fallback.
        over_quota: bool,
    },
    /// A non-adaptive L3 organization evicted a block on a fill.
    Eviction {
        /// Owner of the evicted block.
        owner: CoreId,
    },
    /// The cooperative scheme spilled an evicted block to a neighbor.
    Spill {
        /// Core whose slice evicted the block.
        from: CoreId,
        /// Core that received it.
        to: CoreId,
    },
    /// A new MSHR entry was allocated for a primary miss.
    MshrAlloc {
        /// The requesting core.
        core: CoreId,
    },
    /// A secondary miss merged onto an outstanding fill.
    MshrMerge {
        /// The requesting core.
        core: CoreId,
    },
    /// A full MSHR file blocked memory-op issue this cycle.
    MshrStall {
        /// The stalled core.
        core: CoreId,
    },
    /// A miss went to main memory.
    MemoryFill {
        /// The requesting core.
        core: CoreId,
        /// Cycles the request waited on the busy bus/queue.
        queue_delay: u64,
    },
}

/// Discriminant of an [`Event`], used for counting and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// [`Event::Repartition`].
    Repartition,
    /// [`Event::Epoch`].
    Epoch,
    /// [`Event::TimeSampleWindow`].
    TimeSampleWindow,
    /// [`Event::ShadowHit`].
    ShadowHit,
    /// [`Event::LruHit`].
    LruHit,
    /// [`Event::Demotion`].
    Demotion,
    /// [`Event::SharedEviction`].
    SharedEviction,
    /// [`Event::Eviction`].
    Eviction,
    /// [`Event::Spill`].
    Spill,
    /// [`Event::MshrAlloc`].
    MshrAlloc,
    /// [`Event::MshrMerge`].
    MshrMerge,
    /// [`Event::MshrStall`].
    MshrStall,
    /// [`Event::MemoryFill`].
    MemoryFill,
}

impl EventKind {
    /// Every kind, in taxonomy order (structural first).
    pub const ALL: [EventKind; 13] = [
        EventKind::Repartition,
        EventKind::Epoch,
        EventKind::TimeSampleWindow,
        EventKind::ShadowHit,
        EventKind::LruHit,
        EventKind::Demotion,
        EventKind::SharedEviction,
        EventKind::Eviction,
        EventKind::Spill,
        EventKind::MshrAlloc,
        EventKind::MshrMerge,
        EventKind::MshrStall,
        EventKind::MemoryFill,
    ];

    /// The snake_case name used as the JSONL `type` field.
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::Repartition => "repartition",
            EventKind::Epoch => "epoch",
            EventKind::TimeSampleWindow => "time_sample_window",
            EventKind::ShadowHit => "shadow_hit",
            EventKind::LruHit => "lru_hit",
            EventKind::Demotion => "demotion",
            EventKind::SharedEviction => "shared_eviction",
            EventKind::Eviction => "eviction",
            EventKind::Spill => "spill",
            EventKind::MshrAlloc => "mshr_alloc",
            EventKind::MshrMerge => "mshr_merge",
            EventKind::MshrStall => "mshr_stall",
            EventKind::MemoryFill => "memory_fill",
        }
    }

    /// Structural events carry quota-trajectory or run-structure state
    /// and are retained for the whole run instead of cycling through the
    /// ring buffer.
    pub const fn is_structural(self) -> bool {
        matches!(
            self,
            EventKind::Repartition | EventKind::Epoch | EventKind::TimeSampleWindow
        )
    }

    /// Position inside [`EventKind::ALL`] (stable count-array index).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Looks a kind up by its JSONL `type` name.
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Event {
    /// This event's kind.
    pub const fn kind(&self) -> EventKind {
        match self {
            Event::Repartition { .. } => EventKind::Repartition,
            Event::TimeSampleWindow { .. } => EventKind::TimeSampleWindow,
            Event::Epoch { .. } => EventKind::Epoch,
            Event::ShadowHit { .. } => EventKind::ShadowHit,
            Event::LruHit { .. } => EventKind::LruHit,
            Event::Demotion { .. } => EventKind::Demotion,
            Event::SharedEviction { .. } => EventKind::SharedEviction,
            Event::Eviction { .. } => EventKind::Eviction,
            Event::Spill { .. } => EventKind::Spill,
            Event::MshrAlloc { .. } => EventKind::MshrAlloc,
            Event::MshrMerge { .. } => EventKind::MshrMerge,
            Event::MshrStall { .. } => EventKind::MshrStall,
            Event::MemoryFill { .. } => EventKind::MemoryFill,
        }
    }

    /// The core this event is attributed to, when core-specific.
    pub const fn core(&self) -> Option<CoreId> {
        match self {
            Event::Repartition { gainer, .. } => Some(*gainer),
            Event::Epoch { .. } | Event::TimeSampleWindow { .. } => None,
            Event::ShadowHit { core, .. }
            | Event::LruHit { core }
            | Event::Demotion { core, .. }
            | Event::MshrAlloc { core }
            | Event::MshrMerge { core }
            | Event::MshrStall { core }
            | Event::MemoryFill { core, .. } => Some(*core),
            Event::SharedEviction { owner, .. } | Event::Eviction { owner } => Some(*owner),
            Event::Spill { from, .. } => Some(*from),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Repartition {
                epoch,
                gainer,
                loser,
                gain,
                loss,
                quotas,
            } => write!(
                f,
                "repartition epoch {epoch}: {gainer} +1 (gain {gain}), {loser} -1 (loss {loss}), quotas {quotas:?}"
            ),
            Event::Epoch {
                index,
                quotas,
                misses,
                ..
            } => write!(f, "epoch {index}: quotas {quotas:?}, {misses} misses"),
            Event::TimeSampleWindow { functional } => write!(
                f,
                "time-sample window -> {}",
                if *functional { "functional" } else { "detailed" }
            ),
            Event::ShadowHit { core, set } => write!(f, "shadow hit {core} set {set}"),
            Event::LruHit { core } => write!(f, "lru hit {core}"),
            Event::Demotion { core, set } => write!(f, "demotion {core} set {set}"),
            Event::SharedEviction {
                set,
                owner,
                over_quota,
            } => write!(
                f,
                "shared eviction set {set} owner {owner}{}",
                if *over_quota { " (over quota)" } else { "" }
            ),
            Event::Eviction { owner } => write!(f, "eviction owner {owner}"),
            Event::Spill { from, to } => write!(f, "spill {from} -> {to}"),
            Event::MshrAlloc { core } => write!(f, "mshr alloc {core}"),
            Event::MshrMerge { core } => write!(f, "mshr merge {core}"),
            Event::MshrStall { core } => write!(f, "mshr stall {core}"),
            Event::MemoryFill { core, queue_delay } => {
                write!(f, "memory fill {core} (+{queue_delay} queue)")
            }
        }
    }
}

/// A recorded event with its global sequence number and timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Position in the emission order (0-based, gap-free at emission;
    /// ring-buffer truncation leaves gaps in the exported stream).
    pub seq: u64,
    /// Simulated time of the event.
    pub at: Cycle,
    /// The event payload.
    pub event: Event,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[#{} @{}] {}", self.seq, self.at.raw(), self.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_unique_and_roundtrip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn indices_match_taxonomy_order() {
        for (i, kind) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn only_quota_and_window_kinds_are_structural() {
        for kind in EventKind::ALL {
            let structural = matches!(
                kind,
                EventKind::Repartition | EventKind::Epoch | EventKind::TimeSampleWindow
            );
            assert_eq!(kind.is_structural(), structural);
        }
    }

    #[test]
    fn core_attribution_covers_per_core_kinds() {
        let c = CoreId::from_index(2);
        assert_eq!(Event::LruHit { core: c }.core(), Some(c));
        assert_eq!(
            Event::Spill {
                from: c,
                to: CoreId::from_index(0)
            }
            .core(),
            Some(c)
        );
        let epoch = Event::Epoch {
            index: 1,
            quotas: vec![4; 4],
            occupancy: Vec::new(),
            private_hits: 0,
            shared_hits: 0,
            misses: 0,
            demotions: 0,
            evictions: 0,
        };
        assert_eq!(epoch.core(), None);
    }
}
