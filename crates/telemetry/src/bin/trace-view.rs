//! `trace-view` — summarize and validate a JSONL simulator trace.
//!
//! ```text
//! cargo run -p telemetry --bin trace-view -- <trace.jsonl> [options]
//!     --check-schema   validate line schemas, seq monotonicity and the
//!                      quota-trajectory replay; exit 1 on any violation
//!     --tail <N>       also print the last N raw event lines per section
//! ```
//!
//! The summary shows, per section: the organization, the top event
//! counts, the quota trajectory table (one row per repartition with the
//! epoch's gain/loss estimates) and the epoch-by-epoch quota deltas.

use std::process::ExitCode;

use telemetry::export::{parse_sections, validate_jsonl, TraceSection};
use telemetry::json::Json;

struct Args {
    path: String,
    check_schema: bool,
    tail: usize,
}

const USAGE: &str = "usage: trace-view <trace.jsonl> [--check-schema] [--tail N]";

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut check_schema = false;
    let mut tail = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check-schema" => check_schema = true,
            "--tail" => {
                tail = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--tail needs a number")?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}\n{USAGE}"));
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err(format!("more than one input file\n{USAGE}"));
                }
            }
        }
    }
    Ok(Args {
        path: path.ok_or(USAGE)?,
        check_schema,
        tail,
    })
}

fn num(value: &Json, key: &str) -> f64 {
    value.get(key).and_then(Json::as_num).unwrap_or(0.0)
}

fn text(value: &Json, key: &str) -> String {
    match value.get(key) {
        Some(Json::Str(s)) => s.clone(),
        _ => String::new(),
    }
}

fn quota_vec(value: &Json, key: &str) -> Vec<u32> {
    match value.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|i| i.as_num().map(|n| n as u32))
            .collect(),
        _ => Vec::new(),
    }
}

fn print_counts(section: &TraceSection) {
    let Some(summary) = &section.summary else {
        println!("  (no summary line)");
        return;
    };
    let mut counts: Vec<(String, f64)> = match summary.get("counts") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .filter_map(|(k, v)| v.as_num().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    };
    counts.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let total: f64 = counts.iter().map(|(_, n)| n).sum();
    println!(
        "  events: {} emitted, {} retained, {} dropped from ring",
        num(summary, "emitted"),
        num(summary, "retained"),
        num(summary, "dropped")
    );
    println!("  top event counts:");
    for (name, n) in counts.iter().take(6) {
        let share = if total > 0.0 { n / total * 100.0 } else { 0.0 };
        println!("    {name:<16} {n:>12} ({share:5.1}%)");
    }
}

fn print_trajectory(section: &TraceSection) {
    let initial = quota_vec(&section.meta, "initial_quotas");
    if initial.is_empty() {
        println!("  (non-adaptive organization: no quota trajectory)");
        return;
    }
    let reps: Vec<&Json> = section
        .records
        .iter()
        .filter(|r| text(r, "type") == "repartition")
        .collect();
    println!("  quota trajectory (initial {initial:?}):");
    if reps.is_empty() {
        println!("    (no repartitions recorded)");
    } else {
        println!(
            "    {:>6} {:>10} {:>6} {:>6} {:>10} {:>10}  quotas",
            "epoch", "cycle", "gain+", "lose-", "gain est", "loss est"
        );
        for r in &reps {
            println!(
                "    {:>6} {:>10} {:>6} {:>6} {:>10} {:>10}  {:?}",
                num(r, "epoch"),
                num(r, "cycle"),
                format!("c{}", num(r, "gainer")),
                format!("c{}", num(r, "loser")),
                num(r, "gain"),
                num(r, "loss"),
                quota_vec(r, "quotas")
            );
        }
    }
    // Epoch-by-epoch deltas: quota movement between consecutive epoch
    // snapshots (zero-delta epochs collapse into a count).
    let epochs: Vec<&Json> = section
        .records
        .iter()
        .filter(|r| text(r, "type") == "epoch")
        .collect();
    if !epochs.is_empty() {
        let mut prev = initial.clone();
        let mut quiet = 0usize;
        println!("  epoch deltas ({} epochs):", epochs.len());
        for e in &epochs {
            let now = quota_vec(e, "quotas");
            if now == prev {
                quiet += 1;
                continue;
            }
            if quiet > 0 {
                println!("    ... {quiet} epochs unchanged");
                quiet = 0;
            }
            let delta: Vec<i64> = now
                .iter()
                .zip(&prev)
                .map(|(&a, &b)| i64::from(a) - i64::from(b))
                .collect();
            println!(
                "    epoch {:>5}: {:?} (misses {})",
                num(e, "index"),
                delta,
                num(e, "misses")
            );
            prev = now;
        }
        if quiet > 0 {
            println!("    ... {quiet} epochs unchanged");
        }
    }
    if let Some(summary) = &section.summary {
        println!("  final quotas: {:?}", quota_vec(summary, "final_quotas"));
    }
}

fn summarize(sections: &[TraceSection], tail: usize) {
    for (i, section) in sections.iter().enumerate() {
        println!(
            "section {} — org {:?}, {} cores, ring capacity {}",
            i + 1,
            text(&section.meta, "org"),
            num(&section.meta, "cores"),
            num(&section.meta, "ring_capacity")
        );
        print_counts(section);
        print_trajectory(section);
        if tail > 0 {
            println!("  last {tail} retained events:");
            let start = section.records.len().saturating_sub(tail);
            for r in &section.records[start..] {
                println!("    {}", r.render_compact());
            }
        }
        println!();
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let data = match std::fs::read_to_string(&args.path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trace-view: cannot read {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    if args.check_schema {
        match validate_jsonl(&data) {
            Ok(report) => {
                println!(
                    "trace-view: schema OK — {} sections, {} lines, {} events, {} repartitions replayed",
                    report.sections, report.lines, report.events, report.repartitions
                );
            }
            Err(errors) => {
                for e in errors.iter().take(25) {
                    eprintln!("trace-view: {e}");
                }
                if errors.len() > 25 {
                    eprintln!("trace-view: ... and {} more", errors.len() - 25);
                }
                eprintln!("trace-view: FAIL — {} violation(s)", errors.len());
                return ExitCode::FAILURE;
            }
        }
    }
    match parse_sections(&data) {
        Ok(sections) => {
            summarize(&sections, args.tail);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-view: {e}");
            ExitCode::FAILURE
        }
    }
}
