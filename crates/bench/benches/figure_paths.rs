//! End-to-end benchmarks of every figure driver at a heavily reduced
//! scale, so `cargo bench` exercises each table/figure code path and
//! reports how long one downscaled experiment takes. Full-fidelity runs
//! are the `fig*` binaries (see EXPERIMENTS.md).

// Bench harness: failing fast on setup errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use nuca_bench::figures;
use nuca_core::cost::CostModel;
use nuca_core::experiment::ExperimentConfig;
use simcore::config::MachineConfig;

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        warm_instructions: 60_000,
        warmup_cycles: 10_000,
        measure_cycles: 40_000,
        seed: 2007,
        jobs: 1,
        cycle_skip: true,
        fast_path: true,
        sample_shift: None,
        time_sample: None,
    }
}

fn bench_figures(c: &mut Criterion) {
    let machine = MachineConfig::baseline();
    let mut g = c.benchmark_group("figures");
    // Each iteration is a full (downscaled) experiment; keep the
    // measurement budget tight so `cargo bench` stays in minutes.
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));

    g.bench_function("table1_cost_model", |b| {
        b.iter(|| {
            let cost = CostModel::for_machine(&machine);
            black_box(cost.total_bits())
        })
    });
    g.bench_function("fig3_one_point", |b| {
        let exp = tiny();
        b.iter(|| {
            nuca_core::experiment::sensitivity_sweep(
                &machine,
                tracegen::spec::SpecApp::Gzip,
                &[4],
                &exp,
            )
            .unwrap()
        })
    });
    g.bench_function("fig5_one_app", |b| {
        let exp = tiny();
        b.iter(|| {
            let mix = tracegen::workload::WorkloadPool::homogeneous(
                tracegen::spec::SpecApp::Crafty,
                1,
                exp.seed,
            );
            let single = simcore::config::MachineConfigBuilder::new()
                .cores(1)
                .l3_capacity(machine.l3.private.size_bytes())
                .build()
                .unwrap();
            nuca_core::experiment::run_mix(
                &single,
                nuca_core::l3::Organization::Private,
                &mix,
                &exp,
            )
            .unwrap()
        })
    });
    g.bench_function("fig6_one_mix", |b| {
        let exp = tiny();
        b.iter(|| figures::fig6(&machine, &exp, 1).unwrap())
    });
    g.bench_function("fig7_one_mix", |b| {
        let exp = tiny();
        b.iter(|| figures::fig7(&machine, &exp, 1).unwrap())
    });
    g.bench_function("fig8_one_mix", |b| {
        let exp = tiny();
        b.iter(|| figures::fig8(&machine, &exp, 1).unwrap())
    });
    g.bench_function("fig9_one_mix", |b| {
        let exp = tiny();
        b.iter(|| figures::fig9(&machine, &exp, 1).unwrap())
    });
    g.bench_function("fig10_one_mix", |b| {
        let exp = tiny();
        b.iter(|| figures::fig10(&machine, &exp, 1).unwrap())
    });
    g.bench_function("fig11_one_mix", |b| {
        let exp = tiny();
        b.iter(|| figures::fig11(&machine, &exp, 1).unwrap())
    });
    g.bench_function("fig12_one_mix", |b| {
        let exp = tiny();
        b.iter(|| figures::fig12(&machine, &exp, 1).unwrap())
    });
    g.bench_function("shadow_sampling_one_mix", |b| {
        let exp = tiny();
        b.iter(|| figures::shadow_sampling(&machine, &exp, 1).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
