//! Micro-benchmarks of the simulator's hot components: how fast each
//! substrate runs, which bounds how much simulated time the figure
//! harness can afford.

// Bench harness: failing fast on setup errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cachesim::cache::Cache;
use cachesim::lru::LruStack;
use cpusim::branch::BranchPredictor;
use cpusim::core::Core;
use cpusim::l3iface::{FixedLatencyL3, LastLevel};
use nuca_core::engine::AdaptiveParams;
use nuca_core::l3::AdaptiveL3;
use simcore::config::{BranchConfig, CacheGeometry, MachineConfig};
use simcore::rng::SimRng;
use simcore::types::{Address, CoreId, Cycle};
use tracegen::spec::SpecApp;
use tracegen::TraceGenerator;

fn bench_lru_stack(c: &mut Criterion) {
    c.bench_function("lru_stack_touch_16way", |b| {
        let mut s = LruStack::with_ways(16);
        let mut i = 0u8;
        b.iter(|| {
            i = (i + 7) % 16;
            s.touch(black_box(i));
        });
    });
}

fn bench_cache_access(c: &mut Criterion) {
    c.bench_function("l1d_access_hit", |b| {
        let geom = CacheGeometry::new(64 * 1024, 2, 64, 3).unwrap();
        let mut cache = Cache::new(geom);
        let core = CoreId::from_index(0);
        cache.fill(Address::new(0x1000), false, core);
        b.iter(|| cache.access(black_box(Address::new(0x1000)), false, core));
    });
    c.bench_function("l2_access_random_mix", |b| {
        let geom = CacheGeometry::new(256 * 1024, 4, 64, 9).unwrap();
        let mut cache = Cache::new(geom);
        let core = CoreId::from_index(0);
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let a = Address::new(rng.below(1 << 20));
            if !cache.access(a, false, core).is_hit() {
                cache.fill(a, false, core);
            }
        });
    });
}

fn bench_branch_predictor(c: &mut Criterion) {
    c.bench_function("combined_predictor_access", |b| {
        let mut bp = BranchPredictor::new(BranchConfig::default());
        let mut rng = SimRng::seed_from(2);
        b.iter(|| {
            let pc = Address::new(0x40_0000 + rng.below(256) * 4);
            bp.access(black_box(pc), rng.chance(0.7))
        });
    });
}

fn bench_trace_generator(c: &mut Criterion) {
    c.bench_function("tracegen_next_op", |b| {
        let mut gen = TraceGenerator::new(SpecApp::Gzip.profile(), SimRng::seed_from(3));
        b.iter(|| black_box(gen.next_op()));
    });
}

fn bench_adaptive_l3(c: &mut Criterion) {
    c.bench_function("adaptive_l3_access", |b| {
        let cfg = MachineConfig::baseline();
        let mut l3 = AdaptiveL3::new(&cfg, AdaptiveParams::default());
        let mut rng = SimRng::seed_from(4);
        let mut now = 0u64;
        b.iter(|| {
            now += 10;
            let core = CoreId::from_index(rng.below(4) as u8);
            let a = Address::new(rng.below(1 << 24)).with_asid(core.asid());
            l3.access(core, a, false, Cycle::new(now))
        });
    });
}

fn bench_core_cycle(c: &mut Criterion) {
    c.bench_function("core_step_cycle", |b| {
        let cfg = MachineConfig::baseline();
        b.iter_batched(
            || {
                let gen = TraceGenerator::new(SpecApp::Gzip.profile(), SimRng::seed_from(5));
                (
                    Core::new(CoreId::from_index(0), &cfg, gen),
                    FixedLatencyL3::new(19),
                )
            },
            |(mut core, mut l3)| {
                for n in 0..1_000u64 {
                    core.step(Cycle::new(n), &mut l3);
                }
                core.committed()
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("core_warm_op", |b| {
        let cfg = MachineConfig::baseline();
        let gen = TraceGenerator::new(SpecApp::Gzip.profile(), SimRng::seed_from(6));
        let mut core = Core::new(CoreId::from_index(0), &cfg, gen);
        let mut l3 = FixedLatencyL3::new(19);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            core.warm_op(Cycle::new(now), &mut l3);
        });
    });
}

criterion_group!(
    benches,
    bench_lru_stack,
    bench_cache_access,
    bench_branch_predictor,
    bench_trace_generator,
    bench_adaptive_l3,
    bench_core_cycle
);
criterion_main!(benches);
