//! Micro-benchmarks of the simulator's hot components: how fast each
//! substrate runs, which bounds how much simulated time the figure
//! harness can afford.

// Bench harness: failing fast on setup errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cachesim::cache::Cache;
use cachesim::lru::{LruStack, PackedLru};
use cpusim::branch::BranchPredictor;
use cpusim::core::Core;
use cpusim::l3iface::{FixedLatencyL3, LastLevel};
use nuca_core::cmp::Cmp;
use nuca_core::engine::AdaptiveParams;
use nuca_core::l3::{AdaptiveL3, Organization};
use simcore::config::{BranchConfig, CacheGeometry, MachineConfig};
use simcore::rng::SimRng;
use simcore::types::{Address, CoreId, Cycle};
use tracegen::spec::SpecApp;
use tracegen::workload::Mix;
use tracegen::TraceGenerator;

fn bench_lru_stack(c: &mut Criterion) {
    c.bench_function("lru_stack_touch_16way", |b| {
        let mut s = LruStack::with_ways(16);
        let mut i = 0u8;
        b.iter(|| {
            i = (i + 7) % 16;
            s.touch(black_box(i));
        });
    });
    // The packed u64 permutation word against the Vec reference above:
    // same access pattern, so the two lines are directly comparable.
    c.bench_function("packed_lru_touch_16way", |b| {
        let mut s = PackedLru::with_ways(16);
        let mut i = 0u8;
        b.iter(|| {
            i = (i + 7) % 16;
            s.touch(black_box(i));
        });
    });
    c.bench_function("packed_lru_victim_walk_16way", |b| {
        let mut s = PackedLru::with_ways(16);
        b.iter(|| {
            let victim = s.pop_lru().unwrap();
            s.push_mru(black_box(victim));
            victim
        });
    });
}

fn bench_cache_access(c: &mut Criterion) {
    c.bench_function("l1d_access_hit", |b| {
        let geom = CacheGeometry::new(64 * 1024, 2, 64, 3).unwrap();
        let mut cache = Cache::new(geom);
        let core = CoreId::from_index(0);
        cache.fill(Address::new(0x1000), false, core);
        b.iter(|| cache.access(black_box(Address::new(0x1000)), false, core));
    });
    c.bench_function("l2_access_random_mix", |b| {
        let geom = CacheGeometry::new(256 * 1024, 4, 64, 9).unwrap();
        let mut cache = Cache::new(geom);
        let core = CoreId::from_index(0);
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let a = Address::new(rng.below(1 << 20));
            if !cache.access(a, false, core).is_hit() {
                cache.fill(a, false, core);
            }
        });
    });
}

fn bench_branch_predictor(c: &mut Criterion) {
    c.bench_function("combined_predictor_access", |b| {
        let mut bp = BranchPredictor::new(BranchConfig::default());
        let mut rng = SimRng::seed_from(2);
        b.iter(|| {
            let pc = Address::new(0x40_0000 + rng.below(256) * 4);
            bp.access(black_box(pc), rng.chance(0.7))
        });
    });
}

fn bench_trace_generator(c: &mut Criterion) {
    c.bench_function("tracegen_next_op", |b| {
        let mut gen = TraceGenerator::new(SpecApp::Gzip.profile(), SimRng::seed_from(3));
        b.iter(|| black_box(gen.next_op()));
    });
}

fn bench_adaptive_l3(c: &mut Criterion) {
    c.bench_function("adaptive_l3_access", |b| {
        let cfg = MachineConfig::baseline();
        let mut l3 = AdaptiveL3::new(&cfg, AdaptiveParams::default());
        let mut rng = SimRng::seed_from(4);
        let mut now = 0u64;
        b.iter(|| {
            now += 10;
            let core = CoreId::from_index(rng.below(4) as u8);
            let a = Address::new(rng.below(1 << 24)).with_asid(core.asid());
            l3.access(core, a, false, Cycle::new(now))
        });
    });
}

fn bench_adaptive_l3_evict_heavy(c: &mut Criterion) {
    // Pin the miss/eviction path: a prefilled cache fed a wide address
    // stream so almost every access runs owned_count + find_victim +
    // install. This is the path the incremental per-core occupancy
    // counters (`AdaptiveSet::owned`/`filled`) accelerate: before the
    // counters this measured 239 ns/iter (and adaptive_l3_access
    // 224 ns); with them, 189 ns (183 ns) on the same host — a ~21%
    // cut on the eviction path. The shadow probes below were already a
    // single compare (34/36 ns before and after); the flat tag array
    // removes the Option discriminant and halves the table footprint.
    c.bench_function("adaptive_l3_evict_heavy", |b| {
        let cfg = MachineConfig::baseline();
        let mut l3 = AdaptiveL3::new(&cfg, AdaptiveParams::default());
        let mut rng = SimRng::seed_from(7);
        let mut now = 0u64;
        // Fill every set so the steady state is eviction-per-miss.
        for _ in 0..300_000 {
            now += 10;
            let core = CoreId::from_index(rng.below(4) as u8);
            let a = Address::new(rng.below(1 << 30)).with_asid(core.asid());
            l3.access(core, a, false, Cycle::new(now));
        }
        b.iter(|| {
            now += 10;
            let core = CoreId::from_index(rng.below(4) as u8);
            let a = Address::new(rng.below(1 << 30)).with_asid(core.asid());
            l3.access(core, a, false, Cycle::new(now))
        });
    });
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The zero-cost-when-off claim, measured. Both benches drive the
    // same eviction-heavy stream as `adaptive_l3_evict_heavy`; the
    // `_off` variant must sit within noise of that baseline (189 ns/iter
    // on the reference host) because `NullSink::ENABLED == false` lets
    // the compiler delete every emission site. The `_on` variant prices
    // a live `Recorder` ring: the paid cost when tracing is requested.
    fn drive<S: telemetry::Sink>(c: &mut Criterion, name: &str, sink: S) {
        c.bench_function(name, |b| {
            let cfg = MachineConfig::baseline();
            let mut l3 = AdaptiveL3::with_sink(&cfg, AdaptiveParams::default(), sink.clone());
            let mut rng = SimRng::seed_from(7);
            let mut now = 0u64;
            for _ in 0..300_000 {
                now += 10;
                let core = CoreId::from_index(rng.below(4) as u8);
                let a = Address::new(rng.below(1 << 30)).with_asid(core.asid());
                l3.access(core, a, false, Cycle::new(now));
            }
            b.iter(|| {
                now += 10;
                let core = CoreId::from_index(rng.below(4) as u8);
                let a = Address::new(rng.below(1 << 30)).with_asid(core.asid());
                l3.access(core, a, false, Cycle::new(now))
            });
        });
    }
    drive(c, "telemetry_overhead_off_null_sink", telemetry::NullSink);
    drive(
        c,
        "telemetry_overhead_on_recorder",
        telemetry::Recorder::with_capacity(telemetry::Recorder::DEFAULT_CAPACITY),
    );
}

fn bench_shadow_tags(c: &mut Criterion) {
    use cachesim::shadow::ShadowTags;
    use simcore::types::BlockAddr;
    // The per-miss shadow probe (§4.6): one register load + compare in
    // the flat per-core tag array, at the paper's 1/16 sampling.
    c.bench_function("shadow_probe_check_miss", |b| {
        let mut st = ShadowTags::new(4096, 4, 4);
        let mut rng = SimRng::seed_from(8);
        for set in 0..256usize {
            for core in 0..4u8 {
                st.record_eviction(set, CoreId::from_index(core), BlockAddr::new(set as u64));
            }
        }
        b.iter(|| {
            let set = rng.below(4096) as usize;
            let core = CoreId::from_index(rng.below(4) as u8);
            st.check_miss(black_box(set), core, BlockAddr::new(rng.below(512)))
        });
    });
    c.bench_function("shadow_record_eviction", |b| {
        let mut st = ShadowTags::new(4096, 4, 4);
        let mut rng = SimRng::seed_from(9);
        b.iter(|| {
            let set = rng.below(256) as usize;
            let core = CoreId::from_index(rng.below(4) as u8);
            st.record_eviction(black_box(set), core, BlockAddr::new(rng.below(1 << 20)));
        });
    });
}

fn bench_core_cycle(c: &mut Criterion) {
    c.bench_function("core_step_cycle", |b| {
        let cfg = MachineConfig::baseline();
        b.iter_batched(
            || {
                let gen = TraceGenerator::new(SpecApp::Gzip.profile(), SimRng::seed_from(5));
                (
                    Core::new(CoreId::from_index(0), &cfg, gen),
                    FixedLatencyL3::new(19),
                )
            },
            |(mut core, mut l3)| {
                for n in 0..1_000u64 {
                    core.step(Cycle::new(n), &mut l3);
                }
                core.committed()
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("core_warm_op", |b| {
        let cfg = MachineConfig::baseline();
        let gen = TraceGenerator::new(SpecApp::Gzip.profile(), SimRng::seed_from(6));
        let mut core = Core::new(CoreId::from_index(0), &cfg, gen);
        let mut l3 = FixedLatencyL3::new(19);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            core.warm_op(Cycle::new(now), &mut l3);
        });
    });
}

fn bench_swar_probe(c: &mut Criterion) {
    use cachesim::swar::{digest, TagFilter};
    // One 16-way set probe, the inner loop of every cache lookup. The
    // scalar line compares all 16 tags; the SWAR line asks the digest
    // filter for a candidate mask first (one XOR-multiply over packed
    // bytes) and only compares the surviving ways — usually zero or one.
    // The two must pick the same way (pinned by the proptest suite).
    const WAYS: usize = 16;
    let mut rng = SimRng::seed_from(10);
    let mut tags = [0u64; WAYS];
    let mut filter = TagFilter::new(1, WAYS);
    for (w, tag) in tags.iter_mut().enumerate() {
        *tag = rng.below(1 << 30);
        filter.record(0, w, digest(*tag));
    }
    // 1-in-4 probes hit; the rest miss, which is where the filter's
    // early-out pays (no tag compares at all on most misses).
    let probes: Vec<u64> = (0..1024usize)
        .map(|i| {
            if i % 4 == 0 {
                tags[(i / 4) % WAYS]
            } else {
                rng.below(1 << 30)
            }
        })
        .collect();
    c.bench_function("swar_probe_16way", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            let t = black_box(probes[i]);
            let mut mask = filter.candidates(0, digest(t));
            let mut found = None;
            while mask != 0 {
                let w = mask.trailing_zeros() as usize;
                if tags[w] == t {
                    found = Some(w);
                    break;
                }
                mask &= mask - 1;
            }
            found
        });
    });
    c.bench_function("scalar_probe_16way", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            let t = black_box(probes[i]);
            let mut found = None;
            for (w, &tag) in tags.iter().enumerate() {
                if tag == t {
                    found = Some(w);
                    break;
                }
            }
            found
        });
    });
}

fn bench_l3_batch(c: &mut Criterion) {
    // The batched warm path against the one-access-at-a-time reference
    // on the same chip and instruction budget: the gap is what queueing
    // L3 requests per pacing round (instead of interleaving them with
    // private-hierarchy work) buys in locality. Results are bit-identical
    // (pinned by `batched_warm_matches_one_at_a_time`).
    let cfg = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Mcf, SpecApp::Swim, SpecApp::Applu],
        forwards: vec![0; 4],
    };
    for (name, batched) in [
        ("l3_batch_access_batched", true),
        ("l3_batch_access_reference", false),
    ] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || Cmp::new(&cfg, Organization::Shared, &mix, 42).unwrap(),
                |mut cmp| {
                    if batched {
                        cmp.warm(3_000);
                    } else {
                        cmp.warm_reference(3_000);
                    }
                    cmp.now()
                },
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_cycle_skip(c: &mut Criterion) {
    // The event-driven run loop against the reference stepping loop on
    // the same warmed chip: the gap between these two lines is exactly
    // what the skip fast path buys on stall-heavy windows.
    let cfg = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Mcf, SpecApp::Swim, SpecApp::Applu],
        forwards: vec![0; 4],
    };
    for (name, skip) in [
        ("cmp_run_window_skip", true),
        ("cmp_run_window_step", false),
    ] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut cmp = Cmp::new(&cfg, Organization::Shared, &mix, 42).unwrap();
                    cmp.set_cycle_skip(skip);
                    cmp.warm(2_000);
                    cmp
                },
                |mut cmp| {
                    cmp.run(20_000);
                    cmp.now()
                },
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_functional_window(c: &mut Criterion) {
    // The functional-warming gap engine against the detailed run loop
    // on the same warmed chip and the same 20k-cycle window: the gap
    // between `functional_window` and `cmp_run_window_skip` (above) is
    // what each cycle of time-sampling gap buys over detailed
    // simulation.
    let cfg = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Mcf, SpecApp::Swim, SpecApp::Applu],
        forwards: vec![0; 4],
    };
    c.bench_function("functional_window", |b| {
        b.iter_batched(
            || {
                let mut cmp = Cmp::new(&cfg, Organization::Shared, &mix, 42).unwrap();
                cmp.warm(2_000);
                cmp
            },
            |mut cmp| {
                cmp.run_functional(20_000);
                cmp.now()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_fast_path(c: &mut Criterion) {
    use cpusim::fastpath::fused_hit;
    use cpusim::tlb::Tlb;
    use simcore::config::TlbConfig;

    // The fused TLB+L1 probe on a resident line: the cost of the whole
    // common-case hit check, directly comparable to `l1d_access_hit`
    // (which pays the L1 lookup alone).
    c.bench_function("fused_probe_hit", |b| {
        let mut tlb = Tlb::new(TlbConfig::default());
        let geom = CacheGeometry::new(64 * 1024, 2, 64, 3).unwrap();
        let mut l1 = Cache::new(geom);
        let addr = Address::new(0x1000);
        tlb.access(addr);
        l1.fill(addr, false, CoreId::from_index(0));
        b.iter(|| fused_hit(black_box(&mut tlb), black_box(&mut l1), addr, false));
    });
    // One full 64-op slab refill + drain against `tracegen_next_op`
    // (above), which measures the same decode one op at a time.
    c.bench_function("slab_decode_64", |b| {
        let mut gen = TraceGenerator::new(SpecApp::Gzip.profile(), SimRng::seed_from(3));
        gen.set_slab(true);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..64 {
                acc = acc.wrapping_add(gen.next_op().dep1 as u64);
            }
            acc
        });
    });
    // The detailed stepping loop with and without the hit fast path on
    // the same warmed chip: the gap between these two lines is what the
    // fused probe + memos + issue hint buy on hit-heavy windows.
    let cfg = MachineConfig::baseline();
    let mix = Mix {
        apps: vec![SpecApp::Ammp, SpecApp::Mcf, SpecApp::Swim, SpecApp::Applu],
        forwards: vec![0; 4],
    };
    for (name, fast) in [("core_step_hit_fast", true), ("core_step_hit_slow", false)] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut cmp = Cmp::new(&cfg, Organization::Shared, &mix, 42).unwrap();
                    cmp.set_cycle_skip(false);
                    cmp.set_fast_path(fast);
                    cmp.warm(2_000);
                    cmp
                },
                |mut cmp| {
                    cmp.run(20_000);
                    cmp.now()
                },
                BatchSize::SmallInput,
            );
        });
    }
}

criterion_group!(
    benches,
    bench_lru_stack,
    bench_cache_access,
    bench_branch_predictor,
    bench_trace_generator,
    bench_adaptive_l3,
    bench_adaptive_l3_evict_heavy,
    bench_telemetry_overhead,
    bench_shadow_tags,
    bench_core_cycle,
    bench_swar_probe,
    bench_l3_batch,
    bench_cycle_skip,
    bench_functional_window,
    bench_fast_path
);
criterion_main!(benches);
