//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! Each figure has a driver function in [`figures`] returning structured
//! results and a binary (`fig3`, `fig5`, …, `fig12`, `table1`,
//! `shadow_sampling`, `cost_model`, plus the ablations) that prints the
//! same rows/series the paper plots. The drivers are also exercised at
//! reduced scale by the Criterion benches so `cargo bench` touches every
//! figure path.
//!
//! # Scaling
//!
//! The paper simulates 200 M cycles per experiment on a farm; the
//! defaults here run each figure in minutes on a laptop. Two environment
//! variables trade fidelity for wall-clock time:
//!
//! - `NUCA_BENCH_SCALE` — percentage applied to every simulation phase
//!   (default 100; e.g. `25` runs quarter-length windows).
//! - `NUCA_BENCH_MIXES` — number of random 4-app mixes per figure
//!   (default 10).
//!
//! Independent simulation cells run on worker threads (see
//! `simcore::parallel`); every figure binary accepts `--jobs N` on its
//! command line (or `NUCA_BENCH_JOBS=N`; `0` = one per core, the
//! default). Results are bit-identical for every jobs value.
//!
//! Every binary also accepts `--trace <path>` and `--metrics-out <path>`
//! (or the `TRACE` / `METRICS_OUT` environment variables) to export the
//! telemetry of every simulation cell — see [`trace_out`] and
//! README.md §Observability.

pub mod figures;
pub mod json;
pub mod report;
pub mod trace_out;

use nuca_core::experiment::ExperimentConfig;

/// Reads the experiment configuration honoring `NUCA_BENCH_SCALE` and
/// the `--jobs` flag / `NUCA_BENCH_JOBS` variable.
pub fn experiment_config() -> ExperimentConfig {
    let base = ExperimentConfig::default();
    let base = match std::env::var("NUCA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(pct) if pct > 0 && pct != 100 => base.scaled(pct, 100),
        _ => base,
    };
    base.with_jobs(jobs())
        .with_fast_path(fast_path())
        .with_sample_sets(sample_sets())
        .with_time_sample(time_sample())
}

/// Worker-thread count for simulation grids: `--jobs N` on the command
/// line beats `NUCA_BENCH_JOBS`, which beats "auto" (`0`, one worker
/// per available core). Every figure binary shares this parsing, so the
/// whole harness is driven the same way.
pub fn jobs() -> usize {
    let mut argv = std::env::args().skip(1);
    let mut requested = None;
    while let Some(arg) = argv.next() {
        if arg == "--jobs" {
            requested = argv.next().and_then(|v| v.parse::<usize>().ok());
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            requested = v.parse::<usize>().ok();
        }
    }
    let requested = requested.or_else(|| {
        std::env::var("NUCA_BENCH_JOBS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
    });
    simcore::parallel::resolve_jobs(requested.unwrap_or(0))
}

/// Whether the exact core-side hit fast path is enabled:
/// `--no-fast-path` on the command line or `NUCA_BENCH_FAST_PATH=0`
/// turns it off, forcing the reference TLB/L1 walks and one-at-a-time
/// trace decode. Results are bit-identical either way (the CI
/// fast-path-differential job enforces it); the escape hatch mirrors
/// `--no-skip`. Shared by every figure binary and `perf`, like [`jobs`].
pub fn fast_path() -> bool {
    if std::env::args().skip(1).any(|arg| arg == "--no-fast-path") {
        return false;
    }
    !matches!(
        std::env::var("NUCA_BENCH_FAST_PATH").ok().as_deref(),
        Some("0") | Some("off") | Some("false")
    )
}

/// Set-sampling shift for simulation grids: `--sample-sets K` on the
/// command line beats `NUCA_BENCH_SAMPLE_SETS`; absent both, sampling is
/// off and every set is simulated. Shared by every figure binary and
/// `perf`, like [`jobs`].
pub fn sample_sets() -> Option<u32> {
    let mut argv = std::env::args().skip(1);
    let mut requested = None;
    while let Some(arg) = argv.next() {
        if arg == "--sample-sets" {
            requested = argv.next().and_then(|v| v.parse::<u32>().ok());
        } else if let Some(v) = arg.strip_prefix("--sample-sets=") {
            requested = v.parse::<u32>().ok();
        }
    }
    requested.or_else(|| {
        std::env::var("NUCA_BENCH_SAMPLE_SETS")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
    })
}

/// Time-sampling schedule for simulation grids: `--time-sample D:G` on
/// the command line (D detailed cycles alternating with G functionally
/// warmed cycles) beats `NUCA_BENCH_TIME_SAMPLE`; absent both, every
/// cycle is simulated in detail. A zero gap (`D:0`) is byte-identical
/// to no time sampling. Shared by every figure binary and `perf`, like
/// [`jobs`] and [`sample_sets`]. Malformed schedules — including `0:G`,
/// which has no detailed cycles to measure IPC from — are ignored like
/// any other malformed bench flag, leaving the run at full detail.
pub fn time_sample() -> Option<(u64, u64)> {
    fn parse(v: &str) -> Option<(u64, u64)> {
        let (d, g) = v.split_once(':')?;
        let d = d.trim().parse::<u64>().ok()?;
        let g = g.trim().parse::<u64>().ok()?;
        if d == 0 && g > 0 {
            return None;
        }
        Some((d, g))
    }
    let mut argv = std::env::args().skip(1);
    let mut requested = None;
    while let Some(arg) = argv.next() {
        if arg == "--time-sample" {
            requested = argv.next().as_deref().and_then(parse);
        } else if let Some(v) = arg.strip_prefix("--time-sample=") {
            requested = parse(v);
        }
    }
    requested.or_else(|| {
        std::env::var("NUCA_BENCH_TIME_SAMPLE")
            .ok()
            .as_deref()
            .and_then(parse)
    })
}

/// Reads the per-figure mix count honoring `NUCA_BENCH_MIXES`.
pub fn mix_count() -> usize {
    std::env::var("NUCA_BENCH_MIXES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_full_scale() {
        // The env var is not set under `cargo test`.
        let exp = experiment_config();
        assert!(exp.measure_cycles >= 1_000_000);
        assert!(mix_count() >= 1);
    }
}
