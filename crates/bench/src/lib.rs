//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! Each figure has a driver function in [`figures`] returning structured
//! results and a binary (`fig3`, `fig5`, …, `fig12`, `table1`,
//! `shadow_sampling`, `cost_model`, plus the ablations) that prints the
//! same rows/series the paper plots. The drivers are also exercised at
//! reduced scale by the Criterion benches so `cargo bench` touches every
//! figure path.
//!
//! # Scaling
//!
//! The paper simulates 200 M cycles per experiment on a farm; the
//! defaults here run each figure in minutes on a laptop. Two environment
//! variables trade fidelity for wall-clock time:
//!
//! - `NUCA_BENCH_SCALE` — percentage applied to every simulation phase
//!   (default 100; e.g. `25` runs quarter-length windows).
//! - `NUCA_BENCH_MIXES` — number of random 4-app mixes per figure
//!   (default 10).

pub mod figures;
pub mod report;

use nuca_core::experiment::ExperimentConfig;

/// Reads the experiment configuration honoring `NUCA_BENCH_SCALE`.
pub fn experiment_config() -> ExperimentConfig {
    let base = ExperimentConfig::default();
    match std::env::var("NUCA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(pct) if pct > 0 && pct != 100 => base.scaled(pct, 100),
        _ => base,
    }
}

/// Reads the per-figure mix count honoring `NUCA_BENCH_MIXES`.
pub fn mix_count() -> usize {
    std::env::var("NUCA_BENCH_MIXES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_full_scale() {
        // The env var is not set under `cargo test`.
        let exp = experiment_config();
        assert!(exp.measure_cycles >= 1_000_000);
        assert!(mix_count() >= 1);
    }
}
