//! `--trace` / `--metrics-out` plumbing shared by every figure binary.
//!
//! Each binary parses [`TelemetryArgs`] once, calls
//! [`TelemetryArgs::install`] before its driver and
//! [`TelemetryArgs::export`] after it. While installed, the process-wide
//! [`telemetry::collector`] makes `run_mix` record every simulation cell
//! and gather the traces in cell order, so the exported files are
//! byte-identical for every `--jobs` value.
//!
//! The command line beats the `TRACE` / `METRICS_OUT` environment
//! variables — the latter is how `run_figures.sh` forwards one setting
//! to every binary it spawns.

use std::path::PathBuf;

use telemetry::export::{metrics_json, render_jsonl};
use telemetry::json::Json;
use telemetry::{collector, Recorder};

/// Where (and whether) to write the JSONL trace and the metrics
/// document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryArgs {
    /// JSONL event-trace path (`--trace` / `TRACE`).
    pub trace: Option<PathBuf>,
    /// Metrics-document path (`--metrics-out` / `METRICS_OUT`).
    pub metrics_out: Option<PathBuf>,
}

impl TelemetryArgs {
    /// Reads the process command line and environment.
    pub fn parse() -> Self {
        TelemetryArgs::from_args(std::env::args().skip(1), |key| std::env::var(key).ok())
    }

    fn from_args(args: impl Iterator<Item = String>, env: impl Fn(&str) -> Option<String>) -> Self {
        let mut trace = None;
        let mut metrics_out = None;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            if arg == "--trace" {
                trace = args.next().map(PathBuf::from);
            } else if let Some(v) = arg.strip_prefix("--trace=") {
                trace = Some(PathBuf::from(v));
            } else if arg == "--metrics-out" {
                metrics_out = args.next().map(PathBuf::from);
            } else if let Some(v) = arg.strip_prefix("--metrics-out=") {
                metrics_out = Some(PathBuf::from(v));
            }
        }
        TelemetryArgs {
            trace: trace.or_else(|| env("TRACE").filter(|s| !s.is_empty()).map(PathBuf::from)),
            metrics_out: metrics_out.or_else(|| {
                env("METRICS_OUT")
                    .filter(|s| !s.is_empty())
                    .map(PathBuf::from)
            }),
        }
    }

    /// Whether any output was requested.
    pub fn requested(&self) -> bool {
        self.trace.is_some() || self.metrics_out.is_some()
    }

    /// Installs the process-wide collector when any output is requested
    /// (a no-op otherwise, keeping the untraced fast path).
    pub fn install(&self) {
        if self.requested() {
            collector::install(Recorder::DEFAULT_CAPACITY);
        }
    }

    /// Uninstalls the collector and writes the requested files, tagging
    /// the metrics document with `figure`. Returns the number of traces
    /// collected (zero when nothing was requested).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from writing the outputs.
    pub fn export(&self, figure: &str) -> std::io::Result<usize> {
        let traces = collector::uninstall();
        if let Some(path) = &self.trace {
            std::fs::write(path, render_jsonl(&traces))?;
        }
        if let Some(path) = &self.metrics_out {
            let mut doc = metrics_json(&traces);
            if let Json::Obj(pairs) = &mut doc {
                pairs.insert(0, ("figure".into(), Json::str(figure)));
            }
            std::fs::write(path, doc.render())?;
        }
        Ok(traces.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv<'a>(args: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        args.iter().map(|s| s.to_string())
    }

    #[test]
    fn command_line_beats_environment() {
        let env = |key: &str| match key {
            "TRACE" => Some("env-trace.jsonl".to_string()),
            "METRICS_OUT" => Some("env-metrics.json".to_string()),
            _ => None,
        };
        let t = TelemetryArgs::from_args(argv(&["--trace", "cli.jsonl", "--jobs", "2"]), env);
        assert_eq!(t.trace, Some(PathBuf::from("cli.jsonl")));
        assert_eq!(t.metrics_out, Some(PathBuf::from("env-metrics.json")));
        assert!(t.requested());
    }

    #[test]
    fn equals_form_and_empty_env_are_handled() {
        let t = TelemetryArgs::from_args(argv(&["--metrics-out=m.json"]), |key| {
            if key == "TRACE" {
                Some(String::new())
            } else {
                None
            }
        });
        assert_eq!(t.trace, None, "empty TRACE means off");
        assert_eq!(t.metrics_out, Some(PathBuf::from("m.json")));
        let off = TelemetryArgs::from_args(argv(&["--jobs", "4"]), |_| None);
        assert!(!off.requested());
    }
}
