//! Re-export of the workspace JSON support.
//!
//! The implementation moved to [`telemetry::json`] so the trace/metrics
//! exporters and this harness share one renderer; the alias keeps the
//! `nuca_bench::json::Json` path (used by `perf.rs` and the CI
//! perf-smoke schema diff) stable.

pub use telemetry::json::*;
