//! Figure 10: the impact of technology scaling.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures::fig10;
use nuca_bench::report::{pct, Table};
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let r = fig10(&machine, &exp, nuca_bench::mix_count()).expect("figure 10 experiment");
    let mut t = Table::new(
        "Figure 10 — mean harmonic speedup vs private, baseline vs scaled technology",
        &["scheme", "baseline", "scaled tech", "delta"],
    );
    for (label, base, scaled) in &r.schemes {
        t.row(&[
            label,
            &pct(*base),
            &pct(*scaled),
            &format!("{:+.1} pp", (scaled - base) * 100.0),
        ]);
    }
    t.print();
    println!();
    println!("Paper shape: as memory latency grows (258/260 -> 330/338 cycles) the");
    println!("adaptive scheme gains the most, because it removes the most memory accesses.");

    tele.export("fig10").expect("telemetry export");
}
