//! Beyond the paper (§6 future work): parallel workloads with read-shared
//! data, comparing all four organizations.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::report::{f4, pct, Table};
use nuca_core::cmp::Cmp;
use nuca_core::l3::Organization;
use simcore::config::MachineConfig;
use simcore::stats::speedup;
use telemetry::{collector, NullSink, Recorder, Trace, TraceMeta};
use tracegen::spec::SpecApp;
use tracegen::workload::parallel_workload;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let orgs = [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
        Organization::Cooperative { seed: exp.seed },
    ];
    let mut t = Table::new(
        "Extension — parallel workloads (shared read region), harmonic IPC",
        &[
            "workload", "private", "shared", "adaptive", "coop", "adp/priv",
        ],
    );
    let workloads = [
        (SpecApp::Galgel, 0.4, 2048),
        (SpecApp::Twolf, 0.3, 1024),
        (SpecApp::Equake, 0.5, 4096),
        (SpecApp::Gzip, 0.2, 512),
    ];
    // Flatten the (workload x organization) grid into independent cells
    // for the deterministic runner.
    let built: Vec<_> = workloads
        .iter()
        .map(|&(app, frac, kb)| parallel_workload(app, machine.cores, frac, kb, exp.seed))
        .collect();
    let n = built.len() * orgs.len();
    let ring = collector::capacity();
    let results = simcore::parallel::run_indexed(exp.jobs, n, |i| {
        let (profiles, forwards) = &built[i / orgs.len()];
        let org = orgs[i % orgs.len()];
        // This binary drives `Cmp` directly (not `run_mix`), so it makes
        // its own recorder per cell when a collector is installed.
        match ring {
            Some(capacity) => {
                let rec = Recorder::with_capacity(capacity);
                let mut cmp = Cmp::with_profiles_and_sink(
                    &machine,
                    org,
                    profiles,
                    forwards,
                    exp.seed,
                    rec.clone(),
                )
                .expect("parallel workload builds");
                measure(&mut cmp, &exp);
                let snap = cmp.snapshot();
                let meta = TraceMeta {
                    org: org.label().to_string(),
                    cores: machine.cores,
                    ring_capacity: capacity,
                    initial_quotas: nuca_core::experiment::initial_quotas(&machine, org),
                };
                let trace = rec.finish(meta, snap.quotas.unwrap_or_default());
                (snap.hmean_ipc, Some(trace))
            }
            None => {
                let mut cmp = Cmp::with_profiles_and_sink(
                    &machine, org, profiles, forwards, exp.seed, NullSink,
                )
                .expect("parallel workload builds");
                measure(&mut cmp, &exp);
                (cmp.snapshot().hmean_ipc, None::<Trace>)
            }
        }
    });
    // Submit in index order after the parallel map joined, keeping the
    // exported file identical for every `--jobs` value.
    let mut hmeans = Vec::with_capacity(results.len());
    for (h, trace) in results {
        hmeans.push(h);
        if let Some(trace) = trace {
            collector::submit(trace);
        }
    }
    for ((app, frac, kb), h) in workloads.into_iter().zip(hmeans.chunks(orgs.len())) {
        t.row(&[
            &format!(
                "4x {} ({:.0}% shared reads, {} KiB)",
                app.name(),
                frac * 100.0,
                kb
            ),
            &f4(h[0]),
            &f4(h[1]),
            &f4(h[2]),
            &f4(h[3]),
            &pct(speedup(h[2], h[0])),
        ]);
    }
    t.print();
    println!();
    println!("The paper's §6 hypothesis: the adaptive scheme remains effective for");
    println!("parallel workloads. Sharing organizations deduplicate the common region.");

    tele.export("parallel").expect("telemetry export");
}

fn measure<S: telemetry::Sink>(cmp: &mut Cmp<S>, exp: &nuca_core::experiment::ExperimentConfig) {
    cmp.warm(exp.warm_instructions);
    cmp.run(exp.warmup_cycles);
    cmp.reset_stats();
    cmp.run(exp.measure_cycles);
}
