//! Beyond the paper (§6 future work): parallel workloads with read-shared
//! data, comparing all four organizations.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::report::{f4, pct, Table};
use nuca_core::cmp::Cmp;
use nuca_core::l3::Organization;
use simcore::config::MachineConfig;
use simcore::stats::speedup;
use tracegen::spec::SpecApp;
use tracegen::workload::parallel_workload;

fn main() {
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let orgs = [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
        Organization::Cooperative { seed: exp.seed },
    ];
    let mut t = Table::new(
        "Extension — parallel workloads (shared read region), harmonic IPC",
        &[
            "workload", "private", "shared", "adaptive", "coop", "adp/priv",
        ],
    );
    let workloads = [
        (SpecApp::Galgel, 0.4, 2048),
        (SpecApp::Twolf, 0.3, 1024),
        (SpecApp::Equake, 0.5, 4096),
        (SpecApp::Gzip, 0.2, 512),
    ];
    // Flatten the (workload x organization) grid into independent cells
    // for the deterministic runner.
    let built: Vec<_> = workloads
        .iter()
        .map(|&(app, frac, kb)| parallel_workload(app, machine.cores, frac, kb, exp.seed))
        .collect();
    let n = built.len() * orgs.len();
    let hmeans = simcore::parallel::run_indexed(exp.jobs, n, |i| {
        let (profiles, forwards) = &built[i / orgs.len()];
        let org = orgs[i % orgs.len()];
        let mut cmp = Cmp::with_profiles(&machine, org, profiles, forwards, exp.seed)
            .expect("parallel workload builds");
        cmp.warm(exp.warm_instructions);
        cmp.run(exp.warmup_cycles);
        cmp.reset_stats();
        cmp.run(exp.measure_cycles);
        cmp.snapshot().hmean_ipc
    });
    for ((app, frac, kb), h) in workloads.into_iter().zip(hmeans.chunks(orgs.len())) {
        t.row(&[
            &format!(
                "4x {} ({:.0}% shared reads, {} KiB)",
                app.name(),
                frac * 100.0,
                kb
            ),
            &f4(h[0]),
            &f4(h[1]),
            &f4(h[2]),
            &f4(h[3]),
            &pct(speedup(h[2], h[0])),
        ]);
    }
    t.print();
    println!();
    println!("The paper's §6 hypothesis: the adaptive scheme remains effective for");
    println!("parallel workloads. Sharing organizations deduplicate the common region.");
}
