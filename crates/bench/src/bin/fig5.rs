//! Figure 5: classification of applications by last-level intensity.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures::fig5;
use nuca_bench::report::{f3, Table};
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let mut rows = fig5(&machine, &exp).expect("figure 5 experiment");
    rows.sort_by(|a, b| {
        b.accesses_per_kilocycle
            .partial_cmp(&a.accesses_per_kilocycle)
            .unwrap()
    });
    let mut t = Table::new(
        "Figure 5 — L3 accesses per 1000 cycles (intensive if > 9)",
        &["app", "acc/kcycle", "IPC", "class", "paper class"],
    );
    for r in &rows {
        t.row(&[
            r.app.name(),
            &f3(r.accesses_per_kilocycle),
            &f3(r.ipc),
            if r.intensive { "intensive" } else { "-" },
            if r.app.is_llc_intensive() {
                "intensive"
            } else {
                "-"
            },
        ]);
    }
    t.print();
    let mismatches = rows
        .iter()
        .filter(|r| r.intensive != r.app.is_llc_intensive())
        .count();
    println!("\nclassification mismatches vs expected: {mismatches}");

    tele.export("fig5").expect("telemetry export");
}
