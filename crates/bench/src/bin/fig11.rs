//! Figure 11: the adaptive scheme vs cooperative caching, intensive mixes.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures::fig11;
use nuca_bench::report::{f4, pct, Table};
use simcore::config::MachineConfig;
use simcore::stats::arithmetic_mean;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let rows = fig11(&machine, &exp, nuca_bench::mix_count()).expect("figure 11 experiment");
    let mut t = Table::new(
        "Figure 11 — adaptive vs \"random replacement\" (Chang & Sohi), intensive mixes",
        &["mix", "adaptive", "cooperative", "relative"],
    );
    for r in &rows {
        t.row(&[
            &r.label,
            &f4(r.adaptive),
            &f4(r.cooperative),
            &pct(r.relative),
        ]);
    }
    t.print();
    let mean = arithmetic_mean(&rows.iter().map(|r| r.relative).collect::<Vec<_>>());
    println!(
        "\nmean relative performance: {} (paper: adaptive generally better)",
        pct(mean)
    );

    tele.export("fig11").expect("telemetry export");
}
