//! Figure 8: speedup vs private caches for all applications.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures::fig8;
use nuca_bench::report::{pct, Table};
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let rows = fig8(&machine, &exp, nuca_bench::mix_count()).expect("figure 8 experiment");
    let mut t = Table::new(
        "Figure 8 — adaptive speedup vs private, all applications",
        &["app", "speedup", "class", "n"],
    );
    for r in &rows {
        t.row(&[
            r.app,
            &pct(r.speedup),
            if r.intensive {
                "intensive"
            } else {
                "non-intensive"
            },
            &r.appearances.to_string(),
        ]);
    }
    t.print();

    tele.export("fig8").expect("telemetry export");
}
