//! Ablations over the adaptive scheme's design choices (DESIGN.md §5):
//! re-evaluation period, initial private/shared split, Algorithm 1 vs
//! plain LRU victim selection, and shadow sampling ratio.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use cachesim::shadow::SetSampling;
use nuca_bench::figures::ablate;
use nuca_bench::report::{pct, Table};
use nuca_core::engine::AdaptiveParams;
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let n = nuca_bench::mix_count().min(6);

    let periods: Vec<(String, u64)> = [500u64, 2000, 8000, 32000]
        .into_iter()
        .map(|p| (p.to_string(), p))
        .collect();
    let rows = ablate(&machine, &exp, n, &periods, |&p| AdaptiveParams {
        reeval_period: p,
        ..AdaptiveParams::default()
    })
    .expect("period ablation");
    let mut t = Table::new(
        "Ablation — re-evaluation period (paper: 2000 misses)",
        &["period", "hmean speedup vs private", "total L3 misses"],
    );
    for r in &rows {
        t.row(&[&r.value, &pct(r.hmean_speedup), &r.total_misses.to_string()]);
    }
    t.print();
    println!();

    let reserves: Vec<(String, u32)> = [0u32, 1, 2]
        .into_iter()
        .map(|g| (format!("{}% private start", 100 - g * 25), g))
        .collect();
    let rows = ablate(&machine, &exp, n, &reserves, |&g| AdaptiveParams {
        shared_reserve: g,
        ..AdaptiveParams::default()
    })
    .expect("reserve ablation");
    let mut t = Table::new(
        "Ablation — initial private/shared split (paper: 75%/25%)",
        &["split", "hmean speedup vs private", "total L3 misses"],
    );
    for r in &rows {
        t.row(&[&r.value, &pct(r.hmean_speedup), &r.total_misses.to_string()]);
    }
    t.print();
    println!();

    let victim: Vec<(String, bool)> = vec![
        ("Algorithm 1".to_string(), true),
        ("plain LRU".to_string(), false),
    ];
    let rows = ablate(&machine, &exp, n, &victim, |&alg| AdaptiveParams {
        use_algorithm1: alg,
        ..AdaptiveParams::default()
    })
    .expect("victim ablation");
    let mut t = Table::new(
        "Ablation — shared-partition victim policy",
        &["policy", "hmean speedup vs private", "total L3 misses"],
    );
    for r in &rows {
        t.row(&[&r.value, &pct(r.hmean_speedup), &r.total_misses.to_string()]);
    }
    t.print();
    println!();

    // §4.6: lowest-index vs random vs prime-stride shadow-set subsets.
    let strategies: Vec<(String, SetSampling)> = vec![
        ("full coverage".into(), SetSampling::ALL),
        (
            "lowest-index 1/16".into(),
            SetSampling::LowestIndex { shift: 4 },
        ),
        (
            "random 1/16".into(),
            SetSampling::Random {
                shift: 4,
                seed: 2007,
            },
        ),
        (
            "prime-stride 1/16".into(),
            SetSampling::PrimeStride { shift: 4 },
        ),
    ];
    let rows = ablate(&machine, &exp, n, &strategies, |&sampling| AdaptiveParams {
        shadow_sampling: sampling,
        ..AdaptiveParams::default()
    })
    .expect("sampling ablation");
    let mut t = Table::new(
        "Ablation — shadow-tag set sampling (paper §4.6: lowest index wins)",
        &["strategy", "hmean speedup vs private", "total L3 misses"],
    );
    for r in &rows {
        t.row(&[&r.value, &pct(r.hmean_speedup), &r.total_misses.to_string()]);
    }
    t.print();

    tele.export("ablations").expect("telemetry export");
}
