//! `nuca-bench perf` — times a fixed workload matrix serially and in
//! parallel, and records the machine-readable baseline
//! (`BENCH_baseline.json`) that later PRs compare against.
//!
//! ```text
//! cargo run --release -p nuca-bench --bin perf             # full matrix, writes repo-root baseline
//! cargo run --release -p nuca-bench --bin perf -- --quick  # CI smoke matrix
//!     --jobs <N>            parallel pass thread count (0 = auto)  [default: auto]
//!     --repeat <N>          run the serial pass N times and report the
//!                           median wall-clock (guards --check-regression
//!                           against one-off host noise)      [default: 1]
//!     --no-skip             run with event-driven cycle skipping disabled
//!     --no-fast-path        run with the exact core-side hit fast path
//!                           disabled (the control semantics; the
//!                           fast_path_control section then compares
//!                           slow against slow)
//!     --sample-sets <K>     set-sampling shift for the accuracy pass   [default: 4]
//!     --max-sample-error <PCT>
//!                           fail if the sampled pass's worst hmean-IPC
//!                           error vs the full serial pass exceeds PCT %
//!     --time-sample <D:G>   time-sampling schedule for the time-sampled
//!                           accuracy pass: D detailed cycles alternating
//!                           with G functionally warmed cycles
//!                                                        [default: 10000:40000]
//!     --max-time-sample-error <PCT>
//!                           fail if the time-sampled pass's worst
//!                           hmean-IPC error vs the full serial pass
//!                           exceeds PCT %
//!     --out <FILE>          where to write the JSON (- = stdout only)
//!     --check-schema <FILE> fail if FILE's JSON schema differs from this run's
//!     --check-regression <FILE>
//!                           fail if this run's serial sim_cycles_per_second
//!                           is more than 15% below FILE's
//! ```
//!
//! The matrix is fixed (intensive-pool mixes x private/shared/adaptive)
//! so numbers are comparable across commits; wall-clock values move
//! with the host, the schema must not. The serial pass is the reference
//! semantics: the run also verifies the parallel pass produced
//! bit-identical results and records that as `"deterministic"`.
//!
//! Schema v2 extends v1 with a per-organization breakdown of
//! the serial pass and a `sampling` section: the same matrix re-run
//! under `--sample-sets`, reporting its throughput and its worst/mean
//! harmonic-mean-IPC error against the full serial pass. Accuracy gates
//! CI the same way speed does — `--max-sample-error` is the error
//! analogue of `--check-regression`.
//!
//! Schema v3 adds `serial.repeats` and
//! `serial.winning_repeat`: with `--repeat N` the serial pass runs N
//! times and the published wall-clock (and per-organization breakdown)
//! is the run with the median total wall — `winning_repeat` records
//! which one (1-based) so a baseline file says where its numbers came
//! from. Simulation results are bit-identical across repeats (that is
//! asserted); only wall-clock varies.
//!
//! Schema v4 adds a `time_sampling` section: the same
//! matrix re-run under `--time-sample D:G` (SMARTS-style detailed
//! windows alternating with functional-warming gaps), reporting its
//! throughput, speedup and worst/mean harmonic-mean-IPC error against
//! the full serial pass. `--max-time-sample-error` gates that error the
//! same way `--max-sample-error` gates set sampling.
//!
//! Schema v5 (this file) adds:
//!
//! - a `fast_path_control` section — the serial matrix re-run with the
//!   exact core-side hit fast path disabled (`--no-fast-path`), the
//!   same-host same-run control the fast path's speedup claim is
//!   measured against. Results are asserted bit-identical to the serial
//!   pass (the exactness contract) and `speedup_vs_control` is the
//!   honest serial-rate ratio. Both passes honor `--repeat`.
//! - an `attribution` block — per-organization hit counts and modeled
//!   demand cycles per level (core vs L1 vs L2 vs L3-local/remote vs
//!   memory, using the configured latencies), plus the fast-path
//!   hit-rate counters from an instrumented cell, so the next perf PR
//!   knows where the remaining bound is.
//! - a per-organization regression gate: `--check-regression` now also
//!   compares `serial.per_organization.<org>.sim_cycles_per_second`
//!   when the reference carries it, so a single-organization regression
//!   cannot hide inside a flat whole-matrix aggregate.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::time::Instant;

use nuca_bench::json::Json;
use nuca_core::experiment::{
    run_cells, run_mix_instrumented, ExperimentConfig, MixResult, SimCell,
};
use nuca_core::l3::Organization;
use simcore::config::MachineConfig;
use tracegen::spec::SpecApp;
use tracegen::workload::WorkloadPool;

struct Args {
    quick: bool,
    jobs: usize,
    repeat: usize,
    cycle_skip: bool,
    fast_path: bool,
    sample_shift: u32,
    max_sample_error: Option<f64>,
    time_sample: (u64, u64),
    max_time_sample_error: Option<f64>,
    out: Option<String>,
    check_schema: Option<String>,
    check_regression: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        jobs: 0,
        repeat: 1,
        cycle_skip: true,
        fast_path: true,
        sample_shift: 4,
        max_sample_error: None,
        time_sample: (10_000, 40_000),
        max_time_sample_error: None,
        out: None,
        check_schema: None,
        check_regression: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--jobs" => args.jobs = it.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--repeat" => {
                args.repeat = it.next().and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
            }
            "--no-skip" => args.cycle_skip = false,
            "--no-fast-path" => args.fast_path = false,
            "--sample-sets" => {
                args.sample_shift = it.next().and_then(|v| v.parse().ok()).unwrap_or(4);
            }
            "--max-sample-error" => {
                args.max_sample_error = it.next().and_then(|v| v.parse().ok());
            }
            "--time-sample" => {
                let v = it.next().unwrap_or_default();
                args.time_sample = parse_time_sample(&v).unwrap_or_else(|| {
                    eprintln!("perf: --time-sample wants D:G with D > 0 (got {v:?})");
                    std::process::exit(2);
                });
            }
            "--max-time-sample-error" => {
                args.max_time_sample_error = it.next().and_then(|v| v.parse().ok());
            }
            "--out" => args.out = it.next(),
            "--check-schema" => args.check_schema = it.next(),
            "--check-regression" => args.check_regression = it.next(),
            other => {
                if let Some(v) = other.strip_prefix("--jobs=") {
                    args.jobs = v.parse().unwrap_or(0);
                } else {
                    eprintln!("perf: unknown argument {other} (see the module docs)");
                    std::process::exit(2);
                }
            }
        }
    }
    args
}

/// Parses a `D:G` schedule; a zero detail with a non-zero gap is
/// rejected (there would be no windows to measure from).
fn parse_time_sample(v: &str) -> Option<(u64, u64)> {
    let (d, g) = v.split_once(':')?;
    let d = d.trim().parse::<u64>().ok()?;
    let g = g.trim().parse::<u64>().ok()?;
    if d == 0 && g > 0 {
        return None;
    }
    Some((d, g))
}

fn default_out_path() -> std::path::PathBuf {
    // crates/bench -> repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json")
}

fn pass(label: &str, n: u64) -> Json {
    Json::Obj(vec![(label.to_string(), Json::num(n as f64))])
}

/// Worst and mean relative harmonic-mean-IPC error of `sampled` against
/// the reference `full` results (cell-aligned).
fn sampling_error(full: &[MixResult], sampled: &[MixResult]) -> (f64, f64) {
    let mut max_err = 0.0f64;
    let mut sum_err = 0.0f64;
    let mut n = 0usize;
    for (f, s) in full.iter().zip(sampled) {
        if f.result.hmean_ipc > 0.0 {
            let e = ((s.result.hmean_ipc - f.result.hmean_ipc) / f.result.hmean_ipc).abs();
            max_err = max_err.max(e);
            sum_err += e;
            n += 1;
        }
    }
    (max_err, if n > 0 { sum_err / n as f64 } else { 0.0 })
}

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let args = parse_args();
    let machine = MachineConfig::baseline();
    let (n_mixes, exp) = if args.quick {
        (2, ExperimentConfig::quick())
    } else {
        (4, ExperimentConfig::default().scaled(20, 100))
    };
    let exp = exp
        .with_cycle_skip(args.cycle_skip)
        .with_fast_path(args.fast_path);
    let jobs = simcore::parallel::resolve_jobs(args.jobs);
    let orgs = [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
    ];
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    // Org-major cell order so the serial pass can time each
    // organization's slice contiguously; the parallel pass runs the same
    // list, so the determinism comparison is order-for-order.
    let machine_ref = &machine;
    let cells: Vec<SimCell<'_>> = orgs
        .iter()
        .flat_map(|&org| {
            mixes.iter().map(move |mix| SimCell {
                machine: machine_ref,
                org,
                mix,
            })
        })
        .collect();
    let sim_cycles_per_cell = exp.warmup_cycles + exp.measure_cycles;
    let total_sim_cycles = sim_cycles_per_cell * cells.len() as u64;
    let org_sim_cycles = sim_cycles_per_cell * mixes.len() as u64;

    eprintln!(
        "perf: {} cells ({} mixes x {} orgs), {} sim-cycles each, jobs={jobs}",
        cells.len(),
        mixes.len(),
        orgs.len(),
        sim_cycles_per_cell
    );

    // Serial pass, timed one organization slice at a time so the report
    // can break sim-cycles/s down per organization (the three last-level
    // designs stress very different code paths). With --repeat N the
    // whole pass runs N times and the median-wall run's numbers are
    // published: results are bit-identical across repeats, wall-clock is
    // not, and one descheduled repeat must not poison the baseline that
    // --check-regression compares against.
    let serial_exp = exp.with_jobs(1);
    let serial_pass = |pass_exp: &ExperimentConfig, what: &str| {
        let mut results: Vec<MixResult> = Vec::with_capacity(cells.len());
        let mut per_org: Vec<(String, Json)> = Vec::new();
        let mut wall_total = 0.0f64;
        for (i, org) in orgs.iter().enumerate() {
            let slice = &cells[i * mixes.len()..(i + 1) * mixes.len()];
            let t = Instant::now();
            results.extend(run_cells(slice, pass_exp).unwrap_or_else(|e| {
                panic!("{what} pass runs: {e}");
            }));
            let wall = t.elapsed().as_secs_f64();
            wall_total += wall;
            per_org.push((
                org.label().to_string(),
                Json::Obj(vec![
                    ("wall_seconds".into(), Json::num(wall)),
                    (
                        "sim_cycles_per_second".into(),
                        Json::num(org_sim_cycles as f64 / wall.max(1e-9)),
                    ),
                ]),
            ));
        }
        (results, wall_total, per_org)
    };
    type SerialRepeat = (Vec<MixResult>, f64, Vec<(String, Json)>);
    // Median by wall-clock (lower middle for even N — deterministic).
    let median_of = |mut repeats: Vec<SerialRepeat>| {
        for r in &repeats[1..] {
            assert_eq!(
                r.0, repeats[0].0,
                "serial repeats must be bit-identical; only wall-clock may vary"
            );
        }
        let mut order: Vec<usize> = (0..repeats.len()).collect();
        order.sort_by(|&a, &b| repeats[a].1.total_cmp(&repeats[b].1));
        let winner = order[(order.len() - 1) / 2];
        (repeats.swap_remove(winner), winner)
    };
    // Fast-path control: the identical serial matrix with the exact
    // core-side hit fast path disabled — the same-host same-run control
    // the fast path's speedup is measured against, under the same
    // --repeat median discipline. The exactness contract is asserted,
    // not assumed: the control must reproduce the serial results bit for
    // bit.
    //
    // The two variants are *interleaved* repeat by repeat, alternating
    // which goes first within each pair. Back-to-back blocks (all serial
    // repeats, then all control repeats) measured a 15 % difference on
    // this harness with bit-identical binaries in both blocks — whatever
    // runs first is systematically slower (frequency ramp / scheduler
    // drift), which is larger than the effect under test. Alternation
    // cancels monotone drift from the pair medians.
    let control_exp = serial_exp.with_fast_path(false);
    let mut repeats: Vec<SerialRepeat> = Vec::with_capacity(args.repeat);
    let mut control_repeats: Vec<SerialRepeat> = Vec::with_capacity(args.repeat);
    for r in 0..args.repeat {
        if r % 2 == 0 {
            repeats.push(serial_pass(&serial_exp, "serial"));
            control_repeats.push(serial_pass(&control_exp, "fast-path control"));
        } else {
            control_repeats.push(serial_pass(&control_exp, "fast-path control"));
            repeats.push(serial_pass(&serial_exp, "serial"));
        }
    }
    let ((serial, serial_wall, per_org), winning_repeat) = median_of(repeats);
    let ((control, control_wall, _), _) = median_of(control_repeats);
    let control_identical = control == serial;
    let fast_path_speedup = control_wall / serial_wall.max(1e-9);

    let parallel_exp = exp.with_jobs(jobs);
    let t1 = Instant::now();
    let parallel = run_cells(&cells, &parallel_exp).expect("parallel pass runs");
    let parallel_wall = t1.elapsed().as_secs_f64();

    // Sampled pass: the same matrix with only 1/2^shift of the L3 sets
    // simulated, compared cell-for-cell against the full serial results.
    let sampled_exp = serial_exp.with_sample_sets(Some(args.sample_shift));
    let t2 = Instant::now();
    let sampled = run_cells(&cells, &sampled_exp).expect("sampled pass runs");
    let sampled_wall = t2.elapsed().as_secs_f64();
    let (max_err, mean_err) = sampling_error(&serial, &sampled);

    // Time-sampled pass: the same matrix with detailed windows
    // alternating with functional-warming gaps, compared cell-for-cell
    // against the full serial results — same accuracy methodology as
    // the set-sampled pass, different sampling dimension. The explicit
    // fast-forward is cut to 5/8: the gap engine keeps warming state
    // through the whole run, so part of the up-front warm budget is
    // redundant here, and charging it all anyway would hide wall-clock
    // time sampling exists to save. (Scaling all the way down to the
    // schedule's 1/5 duty cycle leaves the megabyte working sets
    // visibly cold — the measured worst-cell error quintuples from ~5%
    // to ~26% — while 5/8 keeps it under the CI budget.) The accuracy
    // cost of the smaller budget is priced into the gated error numbers
    // below, not swept under the rug.
    let (ts_detail, ts_gap) = args.time_sample;
    let ts_exp = serial_exp
        .with_time_sample(Some(args.time_sample))
        .scaled_warm(5, 8);
    let t3 = Instant::now();
    let time_sampled = run_cells(&cells, &ts_exp).expect("time-sampled pass runs");
    let ts_wall = t3.elapsed().as_secs_f64();
    let (ts_max_err, ts_mean_err) = sampling_error(&serial, &time_sampled);

    // Per-level attribution: where the simulated demand goes under each
    // organization, as raw hit counts from the measured windows and as
    // modeled demand cycles (count x configured latency), so the next
    // perf PR knows whether the bound is the core, a cache level or
    // memory. The fast-path hit-rate counters come from one instrumented
    // cell per organization (the first mix; counters are a side channel,
    // the cell's results are bit-identical to the serial pass's).
    let attribution: Vec<(String, Json)> = orgs
        .iter()
        .enumerate()
        .map(|(i, &org)| {
            let slice = &serial[i * mixes.len()..(i + 1) * mixes.len()];
            let mut committed = 0u64;
            let mut l1_hits = 0u64;
            let mut l1_accesses = 0u64;
            let mut l2_hits = 0u64;
            let mut l2_accesses = 0u64;
            let mut l3_local = 0u64;
            let mut l3_remote = 0u64;
            let mut mem = 0u64;
            let mut l1_cycles = 0u64;
            for r in slice {
                for (_, s) in &r.result.per_core {
                    committed += s.committed;
                    l1_hits += s.l1i.hits + s.l1d.hits;
                    let l1i_acc = s.l1i.hits + s.l1i.misses;
                    let l1d_acc = s.l1d.hits + s.l1d.misses;
                    l1_accesses += l1i_acc + l1d_acc;
                    l1_cycles += l1i_acc * machine.l1i.latency() + l1d_acc * machine.l1d.latency();
                    l2_hits += s.l2.hits;
                    l2_accesses += s.l2.hits + s.l2.misses;
                    l3_local += s.l3_local_hits;
                    l3_remote += s.l3_remote_hits;
                    mem += s.l3_misses;
                }
            }
            let cycles = [
                ("core", committed),
                ("l1", l1_cycles),
                ("l2", l2_accesses * machine.l2.latency()),
                ("l3_local", l3_local * machine.l3.private.latency()),
                ("l3_remote", l3_remote * machine.l3.shared.latency()),
                ("memory", mem * machine.memory.first_chunk_shared),
            ];
            let total: u64 = cycles.iter().map(|&(_, c)| c).sum();
            let modeled: Vec<(String, Json)> = cycles
                .iter()
                .map(|&(level, c)| (level.to_string(), Json::num(c as f64)))
                .collect();
            let shares: Vec<(String, Json)> = cycles
                .iter()
                .map(|&(level, c)| {
                    (
                        level.to_string(),
                        Json::num(c as f64 / (total.max(1)) as f64),
                    )
                })
                .collect();
            let (_, fast) = run_mix_instrumented(&machine, org, &mixes[0], &serial_exp)
                .expect("instrumented cell runs");
            (
                org.label().to_string(),
                Json::Obj(vec![
                    (
                        "hits".into(),
                        Json::Obj(vec![
                            ("committed".into(), Json::num(committed as f64)),
                            ("l1".into(), Json::num(l1_hits as f64)),
                            ("l1_accesses".into(), Json::num(l1_accesses as f64)),
                            ("l2".into(), Json::num(l2_hits as f64)),
                            ("l3_local".into(), Json::num(l3_local as f64)),
                            ("l3_remote".into(), Json::num(l3_remote as f64)),
                            ("memory".into(), Json::num(mem as f64)),
                        ]),
                    ),
                    ("modeled_cycles".into(), Json::Obj(modeled)),
                    ("share".into(), Json::Obj(shares)),
                    (
                        "fast_path".into(),
                        Json::Obj(vec![
                            (
                                "data_fast_hits".into(),
                                Json::num(fast.data_fast_hits as f64),
                            ),
                            ("data_slow".into(), Json::num(fast.data_slow as f64)),
                            (
                                "inst_fast_hits".into(),
                                Json::num(fast.inst_fast_hits as f64),
                            ),
                            ("inst_slow".into(), Json::num(fast.inst_slow as f64)),
                            ("fast_fraction".into(), Json::num(fast.fast_fraction())),
                        ]),
                    ),
                ]),
            )
        })
        .collect();

    let deterministic = serial == parallel;
    let host_cores = simcore::parallel::default_jobs();
    // On a one-core host the "parallel" pass is the serial pass with
    // extra scheduling overhead; publishing its ratio as a speedup would
    // be noise dressed up as data. The key stays (schema is shape, not
    // values) but the value is honest.
    let speedup = serial_wall / parallel_wall.max(1e-9);
    let (speedup_json, note) = if host_cores == 1 {
        (
            Json::Null,
            "single-core host: the parallel pass cannot overlap work, so no speedup is reported",
        )
    } else {
        (
            Json::num(speedup),
            "speedup compares the serial pass against the multi-threaded pass on this host",
        )
    };

    let rate = |wall: f64| {
        vec![
            ("wall_seconds".to_string(), Json::num(wall)),
            (
                "cells_per_second".to_string(),
                Json::num(cells.len() as f64 / wall.max(1e-9)),
            ),
            (
                "sim_cycles_per_second".to_string(),
                Json::num(total_sim_cycles as f64 / wall.max(1e-9)),
            ),
        ]
    };
    let mut serial_json = rate(serial_wall);
    serial_json.push(("repeats".into(), Json::num(args.repeat as f64)));
    serial_json.push((
        "winning_repeat".into(),
        Json::num((winning_repeat + 1) as f64),
    ));
    serial_json.push(("per_organization".into(), Json::Obj(per_org.clone())));
    let mut sampling_json = rate(sampled_wall);
    sampling_json.insert(0, ("shift".into(), Json::num(args.sample_shift as f64)));
    sampling_json.push((
        "speedup_vs_serial".into(),
        Json::num(serial_wall / sampled_wall.max(1e-9)),
    ));
    sampling_json.push(("max_rel_error_hmean_ipc".into(), Json::num(max_err)));
    sampling_json.push(("mean_rel_error_hmean_ipc".into(), Json::num(mean_err)));
    let mut time_sampling_json = rate(ts_wall);
    time_sampling_json.insert(0, ("gap".into(), Json::num(ts_gap as f64)));
    time_sampling_json.insert(0, ("detail".into(), Json::num(ts_detail as f64)));
    time_sampling_json.push((
        "speedup_vs_serial".into(),
        Json::num(serial_wall / ts_wall.max(1e-9)),
    ));
    time_sampling_json.push(("max_rel_error_hmean_ipc".into(), Json::num(ts_max_err)));
    time_sampling_json.push(("mean_rel_error_hmean_ipc".into(), Json::num(ts_mean_err)));
    let fast_path_control_json = vec![
        ("wall_seconds".to_string(), Json::num(control_wall)),
        (
            "sim_cycles_per_second".to_string(),
            Json::num(total_sim_cycles as f64 / control_wall.max(1e-9)),
        ),
        (
            "speedup_vs_control".to_string(),
            Json::num(fast_path_speedup),
        ),
        ("identical".to_string(), Json::Bool(control_identical)),
    ];
    let doc = Json::Obj(vec![
        ("schema_version".into(), Json::num(5.0)),
        ("bench".into(), Json::str("nuca-bench perf")),
        ("quick".into(), Json::Bool(args.quick)),
        (
            "workload".into(),
            Json::Obj(vec![
                ("mixes".into(), Json::num(mixes.len() as f64)),
                (
                    "organizations".into(),
                    Json::Arr(orgs.iter().map(|o| Json::str(o.label())).collect()),
                ),
                ("cells".into(), Json::num(cells.len() as f64)),
                (
                    "warm_instructions".into(),
                    Json::num(exp.warm_instructions as f64),
                ),
                ("warmup_cycles".into(), Json::num(exp.warmup_cycles as f64)),
                (
                    "measure_cycles".into(),
                    Json::num(exp.measure_cycles as f64),
                ),
                ("seed".into(), Json::num(exp.seed as f64)),
            ]),
        ),
        ("host".into(), pass("cores", host_cores as u64)),
        ("jobs".into(), Json::num(jobs as f64)),
        ("cycle_skip".into(), Json::Bool(args.cycle_skip)),
        ("fast_path".into(), Json::Bool(args.fast_path)),
        ("serial".into(), Json::Obj(serial_json)),
        (
            "fast_path_control".into(),
            Json::Obj(fast_path_control_json),
        ),
        ("parallel".into(), Json::Obj(rate(parallel_wall))),
        ("speedup".into(), speedup_json),
        ("sampling".into(), Json::Obj(sampling_json)),
        ("time_sampling".into(), Json::Obj(time_sampling_json)),
        ("attribution".into(), Json::Obj(attribution)),
        ("note".into(), Json::str(note)),
        ("deterministic".into(), Json::Bool(deterministic)),
    ]);

    let text = doc.render();
    print!("{text}");
    let speedup_text = if host_cores == 1 {
        "n/a (single-core host)".to_string()
    } else {
        format!("{speedup:.2}x")
    };
    eprintln!(
        "perf: serial {serial_wall:.2}s (median of {}, repeat {} won), parallel \
         {parallel_wall:.2}s (jobs={jobs}), speedup {speedup_text}, \
         deterministic={deterministic}",
        args.repeat,
        winning_repeat + 1
    );
    eprintln!(
        "perf: sampled (shift {}) {sampled_wall:.2}s ({:.2}x vs serial), \
         hmean-IPC error max {:.2}% mean {:.2}%",
        args.sample_shift,
        serial_wall / sampled_wall.max(1e-9),
        max_err * 100.0,
        mean_err * 100.0
    );
    eprintln!(
        "perf: time-sampled ({ts_detail}:{ts_gap}) {ts_wall:.2}s ({:.2}x vs serial), \
         hmean-IPC error max {:.2}% mean {:.2}%",
        serial_wall / ts_wall.max(1e-9),
        ts_max_err * 100.0,
        ts_mean_err * 100.0
    );

    eprintln!(
        "perf: fast-path control {control_wall:.2}s, fast path {fast_path_speedup:.2}x \
         vs control, identical={control_identical}"
    );

    let mut failed = false;
    if !deterministic {
        eprintln!("perf: FAIL — parallel results differ from serial results");
        failed = true;
    }
    if !control_identical {
        eprintln!("perf: FAIL — --no-fast-path control results differ from serial results");
        failed = true;
    }

    if let Some(limit_pct) = args.max_sample_error {
        if max_err * 100.0 > limit_pct {
            eprintln!(
                "perf: FAIL — sampled pass error {:.2}% exceeds the {limit_pct}% budget",
                max_err * 100.0
            );
            failed = true;
        } else {
            eprintln!(
                "perf: sampled pass error {:.2}% within the {limit_pct}% budget",
                max_err * 100.0
            );
        }
    }

    if let Some(limit_pct) = args.max_time_sample_error {
        if ts_max_err * 100.0 > limit_pct {
            eprintln!(
                "perf: FAIL — time-sampled pass error {:.2}% exceeds the {limit_pct}% budget",
                ts_max_err * 100.0
            );
            failed = true;
        } else {
            eprintln!(
                "perf: time-sampled pass error {:.2}% within the {limit_pct}% budget",
                ts_max_err * 100.0
            );
        }
    }

    if let Some(reference) = &args.check_schema {
        let ref_text = std::fs::read_to_string(reference).unwrap_or_else(|e| {
            eprintln!("perf: cannot read schema reference {reference}: {e}");
            std::process::exit(2);
        });
        let ref_doc = Json::parse(&ref_text).unwrap_or_else(|e| {
            eprintln!("perf: schema reference {reference} is not valid JSON: {e}");
            std::process::exit(2);
        });
        let (ours, theirs) = (doc.schema(), ref_doc.schema());
        if ours == theirs {
            eprintln!("perf: schema matches {reference} ({} paths)", ours.len());
        } else {
            for missing in theirs.iter().filter(|p| !ours.contains(p)) {
                eprintln!("perf: schema path removed: {missing}");
            }
            for added in ours.iter().filter(|p| !theirs.contains(p)) {
                eprintln!("perf: schema path added: {added}");
            }
            eprintln!("perf: FAIL — JSON schema differs from {reference}");
            failed = true;
        }
    }

    if let Some(reference) = &args.check_regression {
        let ref_text = std::fs::read_to_string(reference).unwrap_or_else(|e| {
            eprintln!("perf: cannot read regression reference {reference}: {e}");
            std::process::exit(2);
        });
        let ref_doc = Json::parse(&ref_text).unwrap_or_else(|e| {
            eprintln!("perf: regression reference {reference} is not valid JSON: {e}");
            std::process::exit(2);
        });
        let ref_rate = ref_doc
            .get("serial")
            .and_then(|s| s.get("sim_cycles_per_second"))
            .and_then(|v| match v {
                Json::Num(n) => Some(*n),
                _ => None,
            })
            .unwrap_or_else(|| {
                eprintln!("perf: {reference} has no serial.sim_cycles_per_second");
                std::process::exit(2);
            });
        let our_rate = total_sim_cycles as f64 / serial_wall.max(1e-9);
        let ratio = our_rate / ref_rate.max(1e-9);
        // 15% grace absorbs host-to-host and run-to-run wall-clock noise;
        // a real hot-path regression (dropping the skip loop, re-growing
        // per-step allocation) blows well past it.
        if ratio < 0.85 {
            eprintln!(
                "perf: FAIL — serial throughput regressed: {our_rate:.0} vs \
                 {ref_rate:.0} sim-cycles/s in {reference} ({ratio:.2}x, floor 0.85x)"
            );
            failed = true;
        } else {
            eprintln!(
                "perf: serial throughput {our_rate:.0} vs {ref_rate:.0} sim-cycles/s \
                 in {reference} ({ratio:.2}x) — within the 15% regression budget"
            );
        }
        // Per-organization gate with the same floor: a single-org
        // regression must not hide inside a flat aggregate. References
        // from schema < 5 carry no per-organization rates; those skip
        // gracefully (the whole-matrix gate above still applies).
        for (label, org_json) in &per_org {
            let our_org_rate = org_json
                .get("sim_cycles_per_second")
                .and_then(|v| match v {
                    Json::Num(n) => Some(*n),
                    _ => None,
                })
                .unwrap_or(0.0);
            let ref_org_rate = ref_doc
                .get("serial")
                .and_then(|s| s.get("per_organization"))
                .and_then(|p| p.get(label))
                .and_then(|o| o.get("sim_cycles_per_second"))
                .and_then(|v| match v {
                    Json::Num(n) => Some(*n),
                    _ => None,
                });
            match ref_org_rate {
                Some(ref_org_rate) if ref_org_rate > 0.0 => {
                    let ratio = our_org_rate / ref_org_rate;
                    if ratio < 0.85 {
                        eprintln!(
                            "perf: FAIL — {label} serial throughput regressed: \
                             {our_org_rate:.0} vs {ref_org_rate:.0} sim-cycles/s in \
                             {reference} ({ratio:.2}x, floor 0.85x)"
                        );
                        failed = true;
                    } else {
                        eprintln!(
                            "perf: {label} serial throughput {our_org_rate:.0} vs \
                             {ref_org_rate:.0} sim-cycles/s ({ratio:.2}x) — within budget"
                        );
                    }
                }
                _ => eprintln!(
                    "perf: {reference} has no per-organization rate for {label}; \
                     skipping the per-org gate for it"
                ),
            }
        }
    }

    match args.out.as_deref() {
        Some("-") => {}
        Some(path) => {
            std::fs::write(path, &text).expect("write baseline JSON");
            eprintln!("perf: wrote {path}");
        }
        None => {
            let path = default_out_path();
            std::fs::write(&path, &text).expect("write baseline JSON");
            eprintln!("perf: wrote {}", path.display());
        }
    }

    tele.export("perf").expect("telemetry export");

    if failed {
        std::process::exit(1);
    }
}
