//! Figure 6: harmonic mean of IPC per experiment (LLC-intensive mixes).

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures::fig6;
use nuca_bench::report::{f4, pct, Table};
use simcore::config::MachineConfig;
use simcore::stats::speedup;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let r = fig6(&machine, &exp, nuca_bench::mix_count()).expect("figure 6 experiment");
    let mut t = Table::new(
        "Figure 6 — harmonic-mean IPC per experiment, sorted by adaptive/private",
        &["mix", "private", "shared", "adaptive", "adp/priv", "quotas"],
    );
    for row in &r.rows {
        t.row(&[
            &row.label,
            &f4(row.private),
            &f4(row.shared),
            &f4(row.adaptive),
            &pct(speedup(row.adaptive, row.private)),
            &format!("{:?}", row.quotas),
        ]);
    }
    t.print();
    println!();
    println!(
        "adaptive vs private: harmonic {} / arithmetic {}   (paper: +21% / +13%)",
        pct(r.adaptive.hmean_speedup),
        pct(r.adaptive.amean_speedup)
    );
    println!(
        "adaptive vs shared : harmonic {} / arithmetic {}   (paper: +2% / +5%)",
        pct(r.adaptive.hmean_speedup / r.shared.hmean_speedup),
        pct(r.adaptive.amean_speedup / r.shared.amean_speedup)
    );

    tele.export("fig6").expect("telemetry export");
}
