//! Figure 7: per-application speedup for the LLC-intensive applications.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures::fig7;
use nuca_bench::report::{pct, Table};
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let rows = fig7(&machine, &exp, nuca_bench::mix_count()).expect("figure 7 experiment");
    let mut t = Table::new(
        "Figure 7 — adaptive speedup per intensive application",
        &["app", "vs private", "vs shared", "vs 4x private", "n"],
    );
    for r in &rows {
        t.row(&[
            r.app,
            &pct(r.vs_private),
            &pct(r.vs_shared),
            &pct(r.vs_private4x),
            &r.appearances.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("Paper shape: ammp/art/twolf/vpr lose to the 4x-larger private cache");
    println!("(they want more capacity) but beat plain private caches.");

    tele.export("fig7").expect("telemetry export");
}
