//! Section 4.6: shadow tags in only 1/16 of the sets.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures::shadow_sampling;
use nuca_bench::report::{f4, Table};
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let r = shadow_sampling(&machine, &exp, nuca_bench::mix_count()).expect("4.6 experiment");
    let mut t = Table::new(
        "Section 4.6 — full shadow coverage vs 1/16 lowest-index sets",
        &["metric", "full", "1/16 sampled", "delta"],
    );
    t.row(&[
        "arithmetic IPC",
        &f4(r.full_amean),
        &f4(r.sampled_amean),
        &format!("{:+.2}%", r.amean_delta() * 100.0),
    ]);
    t.row(&[
        "harmonic IPC",
        &f4(r.full_hmean),
        &f4(r.sampled_hmean),
        &format!("{:+.2}%", r.hmean_delta() * 100.0),
    ]);
    t.print();
    println!("\nPaper: +0.1% average / -0.1% harmonic — sampling is essentially free.");

    tele.export("shadow_sampling").expect("telemetry export");
}
