//! Prints Table 1: the baseline machine configuration.

// Figure-harness binary: failing fast on export errors is intended.
#![allow(clippy::expect_used)]

use nuca_bench::report::Table;
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let m = MachineConfig::baseline();
    let mut t = Table::new("Table 1 — baseline configuration", &["parameter", "value"]);
    t.row(&[
        "Register update unit size",
        &format!("{} instructions", m.pipeline.ruu_size),
    ]);
    t.row(&[
        "Load/store queue",
        &format!("{} instructions", m.pipeline.lsq_size),
    ]);
    t.row(&[
        "Fetch queue size",
        &format!("{} instructions", m.pipeline.fetch_queue),
    ]);
    t.row(&[
        "Fetch/decode/issue/commit width",
        &format!("{} instructions/cycle", m.pipeline.width),
    ]);
    t.row(&[
        "Functional units",
        &format!(
            "{} INT ALUs, {} FP ALUs, {} INT mul/div, {} FP mul/div",
            m.pipeline.int_alus, m.pipeline.fp_alus, m.pipeline.int_mul, m.pipeline.fp_mul
        ),
    ]);
    t.row(&[
        "Branch predictor",
        &format!(
            "combined, bimodal {}K, 2-level {}K x {}-bit history, {}K chooser",
            m.branch.bimodal_entries / 1024,
            m.branch.level2_entries / 1024,
            m.branch.history_bits,
            m.branch.chooser_entries / 1024
        ),
    ]);
    t.row(&[
        "Branch target buffer",
        &format!("{}-entry, {}-way", m.branch.btb_entries, m.branch.btb_assoc),
    ]);
    t.row(&[
        "Mispredict penalty",
        &format!("{} cycles", m.pipeline.mispredict_penalty),
    ]);
    t.row(&["L1 I-cache", &format!("{}", m.l1i)]);
    t.row(&["L1 D-cache", &format!("{}", m.l1d)]);
    t.row(&["L2 cache", &format!("{}", m.l2)]);
    t.row(&["Shared L3", &format!("{}", m.l3.shared)]);
    t.row(&[
        "Private L3 slice",
        &format!(
            "{} ({}-cycle neighbor)",
            m.l3.private, m.l3.neighbor_latency
        ),
    ]);
    t.row(&[
        "Main memory",
        &format!(
            "{}/{} cycles first chunk (shared/private org), {} cycles inter-chunk, {} B chunks",
            m.memory.first_chunk_shared,
            m.memory.first_chunk_private,
            m.memory.inter_chunk,
            m.memory.chunk_bytes
        ),
    ]);
    t.row(&[
        "I/D TLB",
        &format!(
            "{}-entry fully associative, {}-cycle miss penalty",
            m.tlb.entries, m.tlb.miss_penalty
        ),
    ]);
    t.row(&["Processor cores", &format!("{} independent cores", m.cores)]);
    t.print();

    tele.export("table1").expect("telemetry export");
}
