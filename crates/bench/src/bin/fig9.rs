//! Figure 9: the per-application comparison with an 8-MByte L3.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures::fig9;
use nuca_bench::report::{pct, Table};
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let rows = fig9(&machine, &exp, nuca_bench::mix_count()).expect("figure 9 experiment");
    let mut t = Table::new(
        "Figure 9 — 8-MByte L3 (2 MB/core slices, same timing model)",
        &["app", "vs private", "vs shared", "vs 4x private", "n"],
    );
    for r in &rows {
        t.row(&[
            r.app,
            &pct(r.vs_private),
            &pct(r.vs_shared),
            &pct(r.vs_private4x),
            &r.appearances.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("Paper shape: with ample capacity the adaptive scheme's constraints");
    println!("stop paying off and can slightly degrade performance.");

    tele.export("fig9").expect("telemetry export");
}
