//! Figure 3: number of misses as a function of blocks per set.

// Figure-harness binary: failing fast on experiment errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures::{fig3, FIG3_WAYS};
use nuca_bench::report::Table;
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let exp = nuca_bench::experiment_config();
    let series = fig3(&machine, &exp).expect("figure 3 experiment");
    let mut headers = vec!["app".to_string()];
    headers.extend(FIG3_WAYS.iter().map(|w| format!("{w} blk/set")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 3 — misses vs blocks per set (fixed set count)",
        &headers_ref,
    );
    for s in &series {
        let mut row = vec![s.app.name().to_string()];
        row.extend(s.points.iter().map(|p| p.misses.to_string()));
        t.row_owned(row);
    }
    t.print();
    println!();
    println!("Paper shape check: mcf flat after 1 block/set; gzip needs ~4; ammp keeps improving.");

    tele.export("fig3").expect("telemetry export");
}
