//! Section 2.7: implementation cost of the adaptive scheme.

// Figure-harness binary: failing fast on export errors is intended.
#![allow(clippy::expect_used)]

use nuca_bench::report::Table;
use nuca_core::cost::CostModel;
use simcore::config::MachineConfig;

fn main() {
    let tele = nuca_bench::trace_out::TelemetryArgs::parse();
    tele.install();
    let machine = MachineConfig::baseline();
    let c = CostModel::for_machine(&machine);
    let mut t = Table::new(
        "Section 2.7 — storage overhead",
        &["component", "bits", "share"],
    );
    t.row(&[
        "shadow tags (1/16 of sets)",
        &c.shadow_tag_bits().to_string(),
        &format!("{:.0}%", c.shadow_fraction() * 100.0),
    ]);
    t.row(&[
        "core IDs (2 bits/block)",
        &c.core_id_bits().to_string(),
        &format!("{:.0}%", c.core_id_fraction() * 100.0),
    ]);
    t.row(&[
        "counters & quota registers",
        &c.counter_total_bits().to_string(),
        "<1%",
    ]);
    t.row(&["total", &c.total_bits().to_string(), ""]);
    t.print();
    println!();
    println!("total = {:.1} Kbits (paper: 152 Kbits)", c.total_kbits());
    println!(
        "overhead vs 4-MByte L3 data storage: {:.2}% (paper: ~0.5%)",
        c.overhead_fraction(machine.l3.shared.size_bytes()) * 100.0
    );

    tele.export("cost_model").expect("telemetry export");
}
