//! Drivers for every table and figure of the paper's evaluation section.
//!
//! Each function runs the corresponding experiment at the requested scale
//! and returns structured results; the `fig*` binaries print them as the
//! paper's rows/series, and `EXPERIMENTS.md` records paper-vs-measured.

use nuca_core::experiment::{
    classify, per_app_speedup, run_cells, sensitivity_grid, Classification, ExperimentConfig,
    MixResult, SensitivityPoint, SimCell,
};
use nuca_core::l3::Organization;
use simcore::config::MachineConfig;
use simcore::error::Result;
use simcore::stats::{arithmetic_mean, speedup};
use tracegen::spec::SpecApp;
use tracegen::workload::{Mix, WorkloadPool};

/// The applications whose miss curves Figure 3 plots (the paper names
/// `mcf` and `gzip`; the others are representative of its five curves).
pub const FIG3_APPS: [SpecApp; 5] = [
    SpecApp::Mcf,
    SpecApp::Gzip,
    SpecApp::Ammp,
    SpecApp::Twolf,
    SpecApp::Parser,
];

/// Blocks-per-set grid for the Figure 3 sweep.
pub const FIG3_WAYS: [u32; 7] = [1, 2, 3, 4, 6, 8, 16];

/// Flattens a `mixes x orgs` grid into independent cells, row-major
/// (every organization of mix 0, then mix 1, ...), for
/// [`run_cells`]. Callers recover rows with `chunks(orgs.len())`.
fn mix_org_grid<'a>(
    machine: &'a MachineConfig,
    mixes: &'a [Mix],
    orgs: &[Organization],
) -> Vec<SimCell<'a>> {
    mixes
        .iter()
        .flat_map(|mix| {
            orgs.iter()
                .map(move |&org| SimCell { machine, org, mix })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// One Figure 3 series.
#[derive(Debug, Clone)]
pub struct Fig3Series {
    /// The application.
    pub app: SpecApp,
    /// Misses per measured window at each blocks-per-set point.
    pub points: Vec<SensitivityPoint>,
}

/// Figure 3: number of misses as a function of blocks per set. The
/// whole `app x ways` grid is one flat work list, so it parallelizes
/// across `exp.jobs` workers.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig3(machine: &MachineConfig, exp: &ExperimentConfig) -> Result<Vec<Fig3Series>> {
    let rows = sensitivity_grid(machine, &FIG3_APPS, &FIG3_WAYS, exp)?;
    Ok(FIG3_APPS
        .into_iter()
        .zip(rows)
        .map(|(app, points)| Fig3Series { app, points })
        .collect())
}

/// Figure 5: classification of all 24 applications by last-level
/// intensity (threshold: nine accesses per thousand cycles).
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig5(machine: &MachineConfig, exp: &ExperimentConfig) -> Result<Vec<Classification>> {
    classify(machine, exp)
}

/// One experiment (mix) of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// The mix label.
    pub label: String,
    /// Harmonic-mean IPC under private slices.
    pub private: f64,
    /// Harmonic-mean IPC under the shared cache.
    pub shared: f64,
    /// Harmonic-mean IPC under the adaptive scheme.
    pub adaptive: f64,
    /// Final adaptive quotas.
    pub quotas: Vec<u32>,
}

/// Aggregate of a scheme against the private baseline.
#[derive(Debug, Clone, Copy)]
pub struct SchemeSummary {
    /// Mean of per-mix harmonic-IPC speedups.
    pub hmean_speedup: f64,
    /// Mean of per-mix arithmetic-IPC speedups.
    pub amean_speedup: f64,
}

/// Figure 6 results: per-mix harmonic IPC for the three schemes, sorted
/// by the adaptive scheme's speedup over private (as the paper sorts).
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Per-experiment rows, sorted ascending by adaptive/private.
    pub rows: Vec<Fig6Row>,
    /// Shared-cache aggregate vs private.
    pub shared: SchemeSummary,
    /// Adaptive aggregate vs private.
    pub adaptive: SchemeSummary,
}

/// Figure 6: harmonic-mean IPC per experiment over LLC-intensive mixes.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig6(machine: &MachineConfig, exp: &ExperimentConfig, n_mixes: usize) -> Result<Fig6Result> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    let orgs = [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
    ];
    let cells = mix_org_grid(machine, &mixes, &orgs);
    let results = run_cells(&cells, exp)?;
    let mut rows = Vec::new();
    let mut sh_h = Vec::new();
    let mut sh_a = Vec::new();
    let mut ad_h = Vec::new();
    let mut ad_a = Vec::new();
    for (mix, rs) in mixes.iter().zip(results.chunks(orgs.len())) {
        let (p, s, a) = (&rs[0].result, &rs[1].result, &rs[2].result);
        sh_h.push(speedup(s.hmean_ipc, p.hmean_ipc));
        sh_a.push(speedup(s.amean_ipc, p.amean_ipc));
        ad_h.push(speedup(a.hmean_ipc, p.hmean_ipc));
        ad_a.push(speedup(a.amean_ipc, p.amean_ipc));
        rows.push(Fig6Row {
            label: mix.label(),
            private: p.hmean_ipc,
            shared: s.hmean_ipc,
            adaptive: a.hmean_ipc,
            quotas: a.quotas.clone().unwrap_or_default(),
        });
    }
    rows.sort_by(|x, y| {
        let sx = speedup(x.adaptive, x.private);
        let sy = speedup(y.adaptive, y.private);
        sx.total_cmp(&sy)
    });
    Ok(Fig6Result {
        rows,
        shared: SchemeSummary {
            hmean_speedup: arithmetic_mean(&sh_h),
            amean_speedup: arithmetic_mean(&sh_a),
        },
        adaptive: SchemeSummary {
            hmean_speedup: arithmetic_mean(&ad_h),
            amean_speedup: arithmetic_mean(&ad_a),
        },
    })
}

/// Per-application speedups of the adaptive scheme against three
/// yardsticks (Figure 7 and Figure 9).
#[derive(Debug, Clone)]
pub struct PerAppRow {
    /// Application name.
    pub app: &'static str,
    /// Adaptive IPC / private IPC, averaged over appearances.
    pub vs_private: f64,
    /// Adaptive IPC / shared IPC.
    pub vs_shared: f64,
    /// Adaptive IPC / 4x-size-private IPC.
    pub vs_private4x: f64,
    /// Number of appearances across the mixes.
    pub appearances: usize,
}

fn per_app_rows(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    mixes: &[Mix],
) -> Result<Vec<PerAppRow>> {
    let orgs = [
        Organization::adaptive(),
        Organization::Private,
        Organization::Shared,
        Organization::PrivateScaled { factor: 4 },
    ];
    let cells = mix_org_grid(machine, mixes, &orgs);
    let results = run_cells(&cells, exp)?;
    let column = |k: usize| -> Vec<MixResult> {
        results
            .iter()
            .skip(k)
            .step_by(orgs.len())
            .cloned()
            .collect()
    };
    let (adaptive, private, shared, private4) = (column(0), column(1), column(2), column(3));
    let vs_p = per_app_speedup(&adaptive, &private);
    let vs_s = per_app_speedup(&adaptive, &shared);
    let vs_4 = per_app_speedup(&adaptive, &private4);
    Ok(vs_p
        .into_iter()
        .map(|(app, sp, n)| {
            let find = |v: &[(&'static str, f64, usize)]| {
                v.iter()
                    .find(|(a, _, _)| *a == app)
                    .map(|(_, s, _)| *s)
                    .unwrap_or(0.0)
            };
            PerAppRow {
                app,
                vs_private: sp,
                vs_shared: find(&vs_s),
                vs_private4x: find(&vs_4),
                appearances: n,
            }
        })
        .collect())
}

/// Figure 7: per-application speedup of the adaptive scheme for the
/// LLC-intensive applications, against private, shared and 4x private.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig7(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<PerAppRow>> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    per_app_rows(machine, exp, &mixes)
}

/// One Figure 8 row: an application's speedup under the adaptive scheme
/// relative to private caches, over mixes drawn from all applications.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Application name.
    pub app: &'static str,
    /// Adaptive IPC / private IPC.
    pub speedup: f64,
    /// Whether the application is LLC-intensive (Figure 5).
    pub intensive: bool,
    /// Appearances across the mixes.
    pub appearances: usize,
}

/// Figure 8: speedup vs private caches for all applications (both
/// categories), over mixes drawn from the full suite.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig8(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<Fig8Row>> {
    let mixes = WorkloadPool::random_mixes(&SpecApp::ALL, machine.cores, n_mixes, exp.seed);
    let orgs = [Organization::adaptive(), Organization::Private];
    let cells = mix_org_grid(machine, &mixes, &orgs);
    let results = run_cells(&cells, exp)?;
    let adaptive: Vec<MixResult> = results.iter().step_by(2).cloned().collect();
    let private: Vec<MixResult> = results.iter().skip(1).step_by(2).cloned().collect();
    Ok(per_app_speedup(&adaptive, &private)
        .into_iter()
        .map(|(app, sp, n)| Fig8Row {
            app,
            speedup: sp,
            intensive: app
                .parse::<SpecApp>()
                .map(|a| a.is_llc_intensive())
                .unwrap_or(false),
            appearances: n,
        })
        .collect())
}

/// Figure 9: the Figure 7 experiment with an 8-MByte last-level cache
/// (same timing model, as the paper notes).
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig9(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<PerAppRow>> {
    let big = machine.with_l3_scale(2)?;
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), big.cores, n_mixes, exp.seed);
    per_app_rows(&big, exp, &mixes)
}

/// Figure 10 result: aggregate speedups vs private for each scheme on
/// the baseline and on the technology-scaled machine.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// (label, baseline hmean speedup, scaled hmean speedup) per scheme.
    pub schemes: Vec<(&'static str, f64, f64)>,
}

/// Figure 10: impact of technology scaling (L2 9→11, L3 14/19→16/24,
/// memory 258/260→330/338 cycles). The paper's claim: the new scheme's
/// advantage grows as memory gets relatively slower.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig10(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Fig10Result> {
    let scaled = machine.technology_scaled();
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    let orgs = [
        ("shared", Organization::Shared),
        ("cooperative", Organization::Cooperative { seed: exp.seed }),
        ("adaptive", Organization::adaptive()),
    ];
    // One flat cell list: per mix, the private yardstick on both
    // machines (simulated once, not once per scheme), then every scheme
    // on both machines.
    let mut cells = Vec::new();
    for mix in &mixes {
        cells.push(SimCell {
            machine,
            org: Organization::Private,
            mix,
        });
        cells.push(SimCell {
            machine: &scaled,
            org: Organization::Private,
            mix,
        });
        for (_, org) in orgs {
            cells.push(SimCell { machine, org, mix });
            cells.push(SimCell {
                machine: &scaled,
                org,
                mix,
            });
        }
    }
    let results = run_cells(&cells, exp)?;
    let stride = 2 + 2 * orgs.len();
    let mut out = Vec::new();
    for (k, (label, _)) in orgs.iter().enumerate() {
        let mut base_sp = Vec::new();
        let mut scaled_sp = Vec::new();
        for row in results.chunks(stride) {
            let (pb, ps) = (&row[0], &row[1]);
            let (ob, os) = (&row[2 + 2 * k], &row[3 + 2 * k]);
            base_sp.push(speedup(ob.result.hmean_ipc, pb.result.hmean_ipc));
            scaled_sp.push(speedup(os.result.hmean_ipc, ps.result.hmean_ipc));
        }
        out.push((
            *label,
            arithmetic_mean(&base_sp),
            arithmetic_mean(&scaled_sp),
        ));
    }
    Ok(Fig10Result { schemes: out })
}

/// One row of Figures 11/12: the adaptive scheme relative to the
/// cooperative ("random replacement") scheme for one mix.
#[derive(Debug, Clone)]
pub struct VsCooperativeRow {
    /// Mix label.
    pub label: String,
    /// Harmonic-mean IPC, adaptive.
    pub adaptive: f64,
    /// Harmonic-mean IPC, cooperative.
    pub cooperative: f64,
    /// adaptive / cooperative.
    pub relative: f64,
}

fn vs_cooperative(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    mixes: &[Mix],
) -> Result<Vec<VsCooperativeRow>> {
    let orgs = [
        Organization::adaptive(),
        Organization::Cooperative { seed: exp.seed },
    ];
    let cells = mix_org_grid(machine, mixes, &orgs);
    let results = run_cells(&cells, exp)?;
    let mut rows: Vec<VsCooperativeRow> = mixes
        .iter()
        .zip(results.chunks(orgs.len()))
        .map(|(mix, pair)| {
            let (a, c) = (&pair[0], &pair[1]);
            VsCooperativeRow {
                label: mix.label(),
                adaptive: a.result.hmean_ipc,
                cooperative: c.result.hmean_ipc,
                relative: speedup(a.result.hmean_ipc, c.result.hmean_ipc),
            }
        })
        .collect();
    rows.sort_by(|x, y| x.relative.total_cmp(&y.relative));
    Ok(rows)
}

/// Figure 11: adaptive vs cooperative over memory-intensive mixes.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig11(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<VsCooperativeRow>> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    vs_cooperative(machine, exp, &mixes)
}

/// Figure 12: adaptive vs cooperative over mixes from all applications —
/// the advantage shrinks because many applications barely use the L3.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig12(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<VsCooperativeRow>> {
    let mixes = WorkloadPool::random_mixes(&SpecApp::ALL, machine.cores, n_mixes, exp.seed);
    vs_cooperative(machine, exp, &mixes)
}

/// Section 4.6 result: average/harmonic IPC with full shadow-tag
/// coverage vs 1/16 lowest-index-set sampling.
#[derive(Debug, Clone)]
pub struct ShadowSamplingResult {
    /// Mean per-mix arithmetic IPC, full coverage.
    pub full_amean: f64,
    /// Mean per-mix arithmetic IPC, sampled (1/16).
    pub sampled_amean: f64,
    /// Mean per-mix harmonic IPC, full coverage.
    pub full_hmean: f64,
    /// Mean per-mix harmonic IPC, sampled (1/16).
    pub sampled_hmean: f64,
}

impl ShadowSamplingResult {
    /// Relative change of the arithmetic mean when sampling.
    pub fn amean_delta(&self) -> f64 {
        speedup(self.sampled_amean, self.full_amean) - 1.0
    }

    /// Relative change of the harmonic mean when sampling.
    pub fn hmean_delta(&self) -> f64 {
        speedup(self.sampled_hmean, self.full_hmean) - 1.0
    }
}

/// Section 4.6: reducing the number of shadow tags to 1/16 of the sets
/// (lowest index). The paper reports ±0.1 % IPC deltas.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn shadow_sampling(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<ShadowSamplingResult> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    let params = nuca_core::engine::AdaptiveParams {
        shadow_sampling: cachesim::shadow::SetSampling::LowestIndex { shift: 4 },
        ..nuca_core::engine::AdaptiveParams::default()
    };
    let orgs = [Organization::adaptive(), Organization::Adaptive(params)];
    let cells = mix_org_grid(machine, &mixes, &orgs);
    let results = run_cells(&cells, exp)?;
    let mut full_a = Vec::new();
    let mut full_h = Vec::new();
    let mut samp_a = Vec::new();
    let mut samp_h = Vec::new();
    for pair in results.chunks(orgs.len()) {
        let (full, samp) = (&pair[0], &pair[1]);
        full_a.push(full.result.amean_ipc);
        full_h.push(full.result.hmean_ipc);
        samp_a.push(samp.result.amean_ipc);
        samp_h.push(samp.result.hmean_ipc);
    }
    Ok(ShadowSamplingResult {
        full_amean: arithmetic_mean(&full_a),
        sampled_amean: arithmetic_mean(&samp_a),
        full_hmean: arithmetic_mean(&full_h),
        sampled_hmean: arithmetic_mean(&samp_h),
    })
}

/// An ablation point: one parameter value and its aggregate outcome.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Human-readable parameter value.
    pub value: String,
    /// Mean harmonic-IPC speedup vs the private baseline.
    pub hmean_speedup: f64,
    /// Total last-level misses across mixes (the quantity the scheme
    /// minimizes).
    pub total_misses: u64,
}

/// Runs an ablation over adaptive parameters on intensive mixes.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn ablate<P>(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
    points: &[(String, P)],
    to_params: impl Fn(&P) -> nuca_core::engine::AdaptiveParams,
) -> Result<Vec<AblationPoint>> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    // One flat cell list: the private baselines first, then every
    // (point, mix) pair — the whole ablation parallelizes at once.
    let orgs: Vec<Organization> = points
        .iter()
        .map(|(_, p)| Organization::Adaptive(to_params(p)))
        .collect();
    let mut cells: Vec<SimCell<'_>> = mixes
        .iter()
        .map(|mix| SimCell {
            machine,
            org: Organization::Private,
            mix,
        })
        .collect();
    for &org in &orgs {
        cells.extend(mixes.iter().map(|mix| SimCell { machine, org, mix }));
    }
    let results = run_cells(&cells, exp)?;
    let (baselines, rest) = results.split_at(mixes.len());
    Ok(points
        .iter()
        .enumerate()
        .map(|(i, (label, _))| {
            let row = &rest[i * mixes.len()..(i + 1) * mixes.len()];
            let mut sp = Vec::new();
            let mut misses = 0;
            for (r, base) in row.iter().zip(baselines) {
                sp.push(speedup(r.result.hmean_ipc, base.result.hmean_ipc));
                misses += r.result.total_l3_misses();
            }
            AblationPoint {
                value: label.clone(),
                hmean_speedup: arithmetic_mean(&sp),
                total_misses: misses,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_exp() -> ExperimentConfig {
        ExperimentConfig::quick()
    }

    #[test]
    fn fig6_rows_are_sorted_by_adaptive_speedup() {
        let machine = MachineConfig::baseline();
        let r = fig6(&machine, &tiny_exp(), 3).unwrap();
        assert_eq!(r.rows.len(), 3);
        for w in r.rows.windows(2) {
            let a = speedup(w[0].adaptive, w[0].private);
            let b = speedup(w[1].adaptive, w[1].private);
            assert!(a <= b + 1e-12);
        }
    }

    #[test]
    fn fig8_covers_both_categories() {
        let machine = MachineConfig::baseline();
        let rows = fig8(&machine, &tiny_exp(), 6).unwrap();
        assert!(rows.iter().any(|r| r.intensive));
        assert!(rows.iter().any(|r| !r.intensive));
        for r in &rows {
            assert!(r.speedup > 0.0, "{} speedup must be positive", r.app);
        }
    }

    #[test]
    fn fig11_relative_column_is_consistent() {
        let machine = MachineConfig::baseline();
        let rows = fig11(&machine, &tiny_exp(), 2).unwrap();
        for r in rows {
            assert!((r.relative - r.adaptive / r.cooperative).abs() < 1e-9);
        }
    }
}
