//! Drivers for every table and figure of the paper's evaluation section.
//!
//! Each function runs the corresponding experiment at the requested scale
//! and returns structured results; the `fig*` binaries print them as the
//! paper's rows/series, and `EXPERIMENTS.md` records paper-vs-measured.

use nuca_core::experiment::{
    classify, compare_schemes, per_app_speedup, run_mix, sensitivity_sweep, Classification,
    ExperimentConfig, MixResult, SensitivityPoint,
};
use nuca_core::l3::Organization;
use simcore::config::MachineConfig;
use simcore::error::Result;
use simcore::stats::{arithmetic_mean, speedup};
use tracegen::spec::SpecApp;
use tracegen::workload::{Mix, WorkloadPool};

/// The applications whose miss curves Figure 3 plots (the paper names
/// `mcf` and `gzip`; the others are representative of its five curves).
pub const FIG3_APPS: [SpecApp; 5] = [
    SpecApp::Mcf,
    SpecApp::Gzip,
    SpecApp::Ammp,
    SpecApp::Twolf,
    SpecApp::Parser,
];

/// Blocks-per-set grid for the Figure 3 sweep.
pub const FIG3_WAYS: [u32; 7] = [1, 2, 3, 4, 6, 8, 16];

/// One Figure 3 series.
#[derive(Debug, Clone)]
pub struct Fig3Series {
    /// The application.
    pub app: SpecApp,
    /// Misses per measured window at each blocks-per-set point.
    pub points: Vec<SensitivityPoint>,
}

/// Figure 3: number of misses as a function of blocks per set.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig3(machine: &MachineConfig, exp: &ExperimentConfig) -> Result<Vec<Fig3Series>> {
    FIG3_APPS
        .into_iter()
        .map(|app| {
            Ok(Fig3Series {
                app,
                points: sensitivity_sweep(machine, app, &FIG3_WAYS, exp)?,
            })
        })
        .collect()
}

/// Figure 5: classification of all 24 applications by last-level
/// intensity (threshold: nine accesses per thousand cycles).
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig5(machine: &MachineConfig, exp: &ExperimentConfig) -> Result<Vec<Classification>> {
    classify(machine, exp)
}

/// One experiment (mix) of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// The mix label.
    pub label: String,
    /// Harmonic-mean IPC under private slices.
    pub private: f64,
    /// Harmonic-mean IPC under the shared cache.
    pub shared: f64,
    /// Harmonic-mean IPC under the adaptive scheme.
    pub adaptive: f64,
    /// Final adaptive quotas.
    pub quotas: Vec<u32>,
}

/// Aggregate of a scheme against the private baseline.
#[derive(Debug, Clone, Copy)]
pub struct SchemeSummary {
    /// Mean of per-mix harmonic-IPC speedups.
    pub hmean_speedup: f64,
    /// Mean of per-mix arithmetic-IPC speedups.
    pub amean_speedup: f64,
}

/// Figure 6 results: per-mix harmonic IPC for the three schemes, sorted
/// by the adaptive scheme's speedup over private (as the paper sorts).
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Per-experiment rows, sorted ascending by adaptive/private.
    pub rows: Vec<Fig6Row>,
    /// Shared-cache aggregate vs private.
    pub shared: SchemeSummary,
    /// Adaptive aggregate vs private.
    pub adaptive: SchemeSummary,
}

/// Figure 6: harmonic-mean IPC per experiment over LLC-intensive mixes.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig6(machine: &MachineConfig, exp: &ExperimentConfig, n_mixes: usize) -> Result<Fig6Result> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    let orgs = [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
    ];
    let mut rows = Vec::new();
    let mut sh_h = Vec::new();
    let mut sh_a = Vec::new();
    let mut ad_h = Vec::new();
    let mut ad_a = Vec::new();
    for mix in &mixes {
        let rs = compare_schemes(machine, &orgs, mix, exp)?;
        let (p, s, a) = (&rs[0].result, &rs[1].result, &rs[2].result);
        sh_h.push(speedup(s.hmean_ipc, p.hmean_ipc));
        sh_a.push(speedup(s.amean_ipc, p.amean_ipc));
        ad_h.push(speedup(a.hmean_ipc, p.hmean_ipc));
        ad_a.push(speedup(a.amean_ipc, p.amean_ipc));
        rows.push(Fig6Row {
            label: mix.label(),
            private: p.hmean_ipc,
            shared: s.hmean_ipc,
            adaptive: a.hmean_ipc,
            quotas: a.quotas.clone().unwrap_or_default(),
        });
    }
    rows.sort_by(|x, y| {
        let sx = speedup(x.adaptive, x.private);
        let sy = speedup(y.adaptive, y.private);
        sx.total_cmp(&sy)
    });
    Ok(Fig6Result {
        rows,
        shared: SchemeSummary {
            hmean_speedup: arithmetic_mean(&sh_h),
            amean_speedup: arithmetic_mean(&sh_a),
        },
        adaptive: SchemeSummary {
            hmean_speedup: arithmetic_mean(&ad_h),
            amean_speedup: arithmetic_mean(&ad_a),
        },
    })
}

/// Per-application speedups of the adaptive scheme against three
/// yardsticks (Figure 7 and Figure 9).
#[derive(Debug, Clone)]
pub struct PerAppRow {
    /// Application name.
    pub app: &'static str,
    /// Adaptive IPC / private IPC, averaged over appearances.
    pub vs_private: f64,
    /// Adaptive IPC / shared IPC.
    pub vs_shared: f64,
    /// Adaptive IPC / 4x-size-private IPC.
    pub vs_private4x: f64,
    /// Number of appearances across the mixes.
    pub appearances: usize,
}

fn per_app_rows(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    mixes: &[Mix],
) -> Result<Vec<PerAppRow>> {
    let mut adaptive = Vec::new();
    let mut private = Vec::new();
    let mut shared = Vec::new();
    let mut private4 = Vec::new();
    for mix in mixes {
        adaptive.push(run_mix(machine, Organization::adaptive(), mix, exp)?);
        private.push(run_mix(machine, Organization::Private, mix, exp)?);
        shared.push(run_mix(machine, Organization::Shared, mix, exp)?);
        private4.push(run_mix(
            machine,
            Organization::PrivateScaled { factor: 4 },
            mix,
            exp,
        )?);
    }
    let vs_p = per_app_speedup(&adaptive, &private);
    let vs_s = per_app_speedup(&adaptive, &shared);
    let vs_4 = per_app_speedup(&adaptive, &private4);
    Ok(vs_p
        .into_iter()
        .map(|(app, sp, n)| {
            let find = |v: &[(&'static str, f64, usize)]| {
                v.iter()
                    .find(|(a, _, _)| *a == app)
                    .map(|(_, s, _)| *s)
                    .unwrap_or(0.0)
            };
            PerAppRow {
                app,
                vs_private: sp,
                vs_shared: find(&vs_s),
                vs_private4x: find(&vs_4),
                appearances: n,
            }
        })
        .collect())
}

/// Figure 7: per-application speedup of the adaptive scheme for the
/// LLC-intensive applications, against private, shared and 4x private.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig7(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<PerAppRow>> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    per_app_rows(machine, exp, &mixes)
}

/// One Figure 8 row: an application's speedup under the adaptive scheme
/// relative to private caches, over mixes drawn from all applications.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Application name.
    pub app: &'static str,
    /// Adaptive IPC / private IPC.
    pub speedup: f64,
    /// Whether the application is LLC-intensive (Figure 5).
    pub intensive: bool,
    /// Appearances across the mixes.
    pub appearances: usize,
}

/// Figure 8: speedup vs private caches for all applications (both
/// categories), over mixes drawn from the full suite.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig8(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<Fig8Row>> {
    let mixes = WorkloadPool::random_mixes(&SpecApp::ALL, machine.cores, n_mixes, exp.seed);
    let mut adaptive = Vec::new();
    let mut private = Vec::new();
    for mix in &mixes {
        adaptive.push(run_mix(machine, Organization::adaptive(), mix, exp)?);
        private.push(run_mix(machine, Organization::Private, mix, exp)?);
    }
    Ok(per_app_speedup(&adaptive, &private)
        .into_iter()
        .map(|(app, sp, n)| Fig8Row {
            app,
            speedup: sp,
            intensive: app
                .parse::<SpecApp>()
                .map(|a| a.is_llc_intensive())
                .unwrap_or(false),
            appearances: n,
        })
        .collect())
}

/// Figure 9: the Figure 7 experiment with an 8-MByte last-level cache
/// (same timing model, as the paper notes).
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig9(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<PerAppRow>> {
    let big = machine.with_l3_scale(2)?;
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), big.cores, n_mixes, exp.seed);
    per_app_rows(&big, exp, &mixes)
}

/// Figure 10 result: aggregate speedups vs private for each scheme on
/// the baseline and on the technology-scaled machine.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// (label, baseline hmean speedup, scaled hmean speedup) per scheme.
    pub schemes: Vec<(&'static str, f64, f64)>,
}

/// Figure 10: impact of technology scaling (L2 9→11, L3 14/19→16/24,
/// memory 258/260→330/338 cycles). The paper's claim: the new scheme's
/// advantage grows as memory gets relatively slower.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig10(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Fig10Result> {
    let scaled = machine.technology_scaled();
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    let orgs = [
        ("shared", Organization::Shared),
        ("cooperative", Organization::Cooperative { seed: exp.seed }),
        ("adaptive", Organization::adaptive()),
    ];
    let mut out = Vec::new();
    for (label, org) in orgs {
        let mut base_sp = Vec::new();
        let mut scaled_sp = Vec::new();
        for mix in &mixes {
            let pb = run_mix(machine, Organization::Private, mix, exp)?;
            let ob = run_mix(machine, org, mix, exp)?;
            base_sp.push(speedup(ob.result.hmean_ipc, pb.result.hmean_ipc));
            let ps = run_mix(&scaled, Organization::Private, mix, exp)?;
            let os = run_mix(&scaled, org, mix, exp)?;
            scaled_sp.push(speedup(os.result.hmean_ipc, ps.result.hmean_ipc));
        }
        out.push((
            label,
            arithmetic_mean(&base_sp),
            arithmetic_mean(&scaled_sp),
        ));
    }
    Ok(Fig10Result { schemes: out })
}

/// One row of Figures 11/12: the adaptive scheme relative to the
/// cooperative ("random replacement") scheme for one mix.
#[derive(Debug, Clone)]
pub struct VsCooperativeRow {
    /// Mix label.
    pub label: String,
    /// Harmonic-mean IPC, adaptive.
    pub adaptive: f64,
    /// Harmonic-mean IPC, cooperative.
    pub cooperative: f64,
    /// adaptive / cooperative.
    pub relative: f64,
}

fn vs_cooperative(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    mixes: &[Mix],
) -> Result<Vec<VsCooperativeRow>> {
    let mut rows = Vec::new();
    for mix in mixes {
        let a = run_mix(machine, Organization::adaptive(), mix, exp)?;
        let c = run_mix(
            machine,
            Organization::Cooperative { seed: exp.seed },
            mix,
            exp,
        )?;
        rows.push(VsCooperativeRow {
            label: mix.label(),
            adaptive: a.result.hmean_ipc,
            cooperative: c.result.hmean_ipc,
            relative: speedup(a.result.hmean_ipc, c.result.hmean_ipc),
        });
    }
    rows.sort_by(|x, y| x.relative.total_cmp(&y.relative));
    Ok(rows)
}

/// Figure 11: adaptive vs cooperative over memory-intensive mixes.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig11(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<VsCooperativeRow>> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    vs_cooperative(machine, exp, &mixes)
}

/// Figure 12: adaptive vs cooperative over mixes from all applications —
/// the advantage shrinks because many applications barely use the L3.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn fig12(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<Vec<VsCooperativeRow>> {
    let mixes = WorkloadPool::random_mixes(&SpecApp::ALL, machine.cores, n_mixes, exp.seed);
    vs_cooperative(machine, exp, &mixes)
}

/// Section 4.6 result: average/harmonic IPC with full shadow-tag
/// coverage vs 1/16 lowest-index-set sampling.
#[derive(Debug, Clone)]
pub struct ShadowSamplingResult {
    /// Mean per-mix arithmetic IPC, full coverage.
    pub full_amean: f64,
    /// Mean per-mix arithmetic IPC, sampled (1/16).
    pub sampled_amean: f64,
    /// Mean per-mix harmonic IPC, full coverage.
    pub full_hmean: f64,
    /// Mean per-mix harmonic IPC, sampled (1/16).
    pub sampled_hmean: f64,
}

impl ShadowSamplingResult {
    /// Relative change of the arithmetic mean when sampling.
    pub fn amean_delta(&self) -> f64 {
        speedup(self.sampled_amean, self.full_amean) - 1.0
    }

    /// Relative change of the harmonic mean when sampling.
    pub fn hmean_delta(&self) -> f64 {
        speedup(self.sampled_hmean, self.full_hmean) - 1.0
    }
}

/// Section 4.6: reducing the number of shadow tags to 1/16 of the sets
/// (lowest index). The paper reports ±0.1 % IPC deltas.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn shadow_sampling(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
) -> Result<ShadowSamplingResult> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    let mut full_a = Vec::new();
    let mut full_h = Vec::new();
    let mut samp_a = Vec::new();
    let mut samp_h = Vec::new();
    for mix in &mixes {
        let full = run_mix(machine, Organization::adaptive(), mix, exp)?;
        let params = nuca_core::engine::AdaptiveParams {
            shadow_sampling: cachesim::shadow::SetSampling::LowestIndex { shift: 4 },
            ..nuca_core::engine::AdaptiveParams::default()
        };
        let samp = run_mix(machine, Organization::Adaptive(params), mix, exp)?;
        full_a.push(full.result.amean_ipc);
        full_h.push(full.result.hmean_ipc);
        samp_a.push(samp.result.amean_ipc);
        samp_h.push(samp.result.hmean_ipc);
    }
    Ok(ShadowSamplingResult {
        full_amean: arithmetic_mean(&full_a),
        sampled_amean: arithmetic_mean(&samp_a),
        full_hmean: arithmetic_mean(&full_h),
        sampled_hmean: arithmetic_mean(&samp_h),
    })
}

/// An ablation point: one parameter value and its aggregate outcome.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Human-readable parameter value.
    pub value: String,
    /// Mean harmonic-IPC speedup vs the private baseline.
    pub hmean_speedup: f64,
    /// Total last-level misses across mixes (the quantity the scheme
    /// minimizes).
    pub total_misses: u64,
}

/// Runs an ablation over adaptive parameters on intensive mixes.
///
/// # Errors
///
/// Propagates configuration errors from the experiment harness.
pub fn ablate<P>(
    machine: &MachineConfig,
    exp: &ExperimentConfig,
    n_mixes: usize,
    points: &[(String, P)],
    to_params: impl Fn(&P) -> nuca_core::engine::AdaptiveParams,
) -> Result<Vec<AblationPoint>> {
    let mixes =
        WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, n_mixes, exp.seed);
    let baselines: Vec<MixResult> = mixes
        .iter()
        .map(|m| run_mix(machine, Organization::Private, m, exp))
        .collect::<Result<_>>()?;
    points
        .iter()
        .map(|(label, p)| {
            let mut sp = Vec::new();
            let mut misses = 0;
            for (mix, base) in mixes.iter().zip(&baselines) {
                let r = run_mix(machine, Organization::Adaptive(to_params(p)), mix, exp)?;
                sp.push(speedup(r.result.hmean_ipc, base.result.hmean_ipc));
                misses += r.result.total_l3_misses();
            }
            Ok(AblationPoint {
                value: label.clone(),
                hmean_speedup: arithmetic_mean(&sp),
                total_misses: misses,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_exp() -> ExperimentConfig {
        ExperimentConfig::quick()
    }

    #[test]
    fn fig6_rows_are_sorted_by_adaptive_speedup() {
        let machine = MachineConfig::baseline();
        let r = fig6(&machine, &tiny_exp(), 3).unwrap();
        assert_eq!(r.rows.len(), 3);
        for w in r.rows.windows(2) {
            let a = speedup(w[0].adaptive, w[0].private);
            let b = speedup(w[1].adaptive, w[1].private);
            assert!(a <= b + 1e-12);
        }
    }

    #[test]
    fn fig8_covers_both_categories() {
        let machine = MachineConfig::baseline();
        let rows = fig8(&machine, &tiny_exp(), 6).unwrap();
        assert!(rows.iter().any(|r| r.intensive));
        assert!(rows.iter().any(|r| !r.intensive));
        for r in &rows {
            assert!(r.speedup > 0.0, "{} speedup must be positive", r.app);
        }
    }

    #[test]
    fn fig11_relative_column_is_consistent() {
        let machine = MachineConfig::baseline();
        let rows = fig11(&machine, &tiny_exp(), 2).unwrap();
        for r in rows {
            assert!((r.relative - r.adaptive / r.cooperative).abs() < 1e-9);
        }
    }
}
