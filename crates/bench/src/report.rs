//! Plain-text table rendering for the figure binaries.

use std::fmt::Write as _;

/// A fixed-width text table with a title, built row by row.
///
/// # Example
///
/// ```
/// use nuca_bench::report::Table;
/// let mut t = Table::new("demo", &["app", "ipc"]);
/// t.row(&["gzip", "0.31"]);
/// let s = t.render();
/// assert!(s.contains("gzip"));
/// assert!(s.contains("demo"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with four decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a speedup as a percentage delta ("+12.3%").
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new("x", &["a", "long-header"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let s = t.render();
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(pct(1.21), "+21.0%");
        assert_eq!(pct(0.95), "-5.0%");
    }
}
