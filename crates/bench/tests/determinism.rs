//! Parallel-execution determinism regression tests.
//!
//! The work-stealing runner in `simcore::parallel` must be pure
//! execution policy: the same experiment grid run with `--jobs 1` and
//! `--jobs 4` has to produce bit-identical results, because every
//! simulation cell carries its own RNG and no state is shared between
//! cells. These tests pin that contract at two levels — the raw
//! `run_cells` grid API and a full figure driver.

// Test harness: failing fast on setup errors is intended.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nuca_bench::figures;
use nuca_core::experiment::{run_cells, ExperimentConfig, SimCell};
use nuca_core::l3::Organization;
use simcore::config::MachineConfig;
use tracegen::spec::SpecApp;
use tracegen::workload::WorkloadPool;

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        warm_instructions: 40_000,
        warmup_cycles: 8_000,
        measure_cycles: 25_000,
        seed: 2007,
        jobs: 1,
        cycle_skip: true,
        fast_path: true,
        sample_shift: None,
        time_sample: None,
    }
}

#[test]
fn run_cells_is_bit_identical_across_job_counts() {
    let machine = MachineConfig::baseline();
    let exp = tiny();
    let mixes = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), machine.cores, 3, exp.seed);
    let orgs = [
        Organization::Private,
        Organization::Shared,
        Organization::adaptive(),
    ];
    let cells: Vec<SimCell<'_>> = mixes
        .iter()
        .flat_map(|mix| {
            orgs.iter().map(|&org| SimCell {
                machine: &machine,
                org,
                mix,
            })
        })
        .collect();

    let serial = run_cells(&cells, &exp.with_jobs(1)).unwrap();
    let parallel = run_cells(&cells, &exp.with_jobs(4)).unwrap();
    assert_eq!(
        serial, parallel,
        "run_cells with jobs=4 must reproduce jobs=1 exactly"
    );

    // And an oversubscribed pool (more workers than cells) as the edge.
    let oversubscribed = run_cells(&cells, &exp.with_jobs(64)).unwrap();
    assert_eq!(serial, oversubscribed);
}

#[test]
fn figure_driver_is_bit_identical_across_job_counts() {
    let machine = MachineConfig::baseline();
    let exp = tiny();
    // Fig6Result has no PartialEq; bit-identical floats render to
    // identical Debug text, which is also what the fig* binaries print.
    let serial = format!(
        "{:?}",
        figures::fig6(&machine, &exp.with_jobs(1), 2).unwrap()
    );
    let parallel = format!(
        "{:?}",
        figures::fig6(&machine, &exp.with_jobs(4), 2).unwrap()
    );
    assert_eq!(
        serial, parallel,
        "fig6 output must not depend on the job count"
    );
}
