//! Crash-safe sharded campaign execution with warm-state forking.
//!
//! The runner walks its shard's cells **in grid-index order** and
//! appends one manifest line per cell as it completes. That ordering is
//! the whole crash-safety story: a killed campaign's manifest is a
//! prefix of the uninterrupted one, so `--resume` (skip what the
//! manifest already has, truncate a partial tail) reproduces the
//! remaining lines byte-for-byte, and the shard manifests of a
//! `--shard K/N` split merge — a stable sort by cell index — into
//! exactly the single-process manifest.
//!
//! Functional warm-up is paid once per *warm group* (cells with equal
//! [`warm_fingerprint`](crate::grid::warm_fingerprint)) and forked to
//! the rest of the group through the versioned, checksummed chip
//! snapshot ([`Cmp::save_chip_state`]). Within a chunk of cells the
//! warm-ups and the timed runs each fan out over `jobs` worker
//! threads; results are bit-identical for every `jobs` value because
//! cells share nothing mutable and lines are appended in index order
//! after the join.

use std::path::PathBuf;

use nuca_core::cmp::{Cmp, CmpResult};
use nuca_core::l3::Organization;
use simcore::config::MachineConfig;
use simcore::parallel::{map_slice, resolve_jobs};
use simcore::snapshot::fnv1a64;
use telemetry::json::Json;
use telemetry::registry::Registry;
use tracegen::workload::Mix;

use crate::grid::{machine_for, organization_for, warm_fingerprint, Cell};
use crate::manifest::{read_completed, ManifestWriter};
use crate::screen::{screen, Pruned};
use crate::spec::CampaignSpec;
use crate::CampaignError;

/// Execution policy for one campaign invocation. None of these knobs
/// affect manifest *content* — only which slice of it this process
/// writes and how fast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Worker threads (`0` = one per available core).
    pub jobs: usize,
    /// `(K, N)`: this process runs shard `K` of `N` (1-based).
    pub shard: (u32, u32),
    /// Skip cells already in the manifest (and truncate a partial
    /// trailing line — the footprint of a kill).
    pub resume: bool,
    /// Test hook: stop (pretending to be killed) after appending this
    /// many lines in this invocation.
    pub fail_after: Option<usize>,
    /// Manifest path this shard appends to.
    pub out: PathBuf,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: 1,
            shard: (1, 1),
            resume: false,
            fail_after: None,
            out: PathBuf::from("campaign.jsonl"),
        }
    }
}

/// Progress events, delivered in manifest order from the orchestration
/// loop (never from worker threads).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Grid expanded and screened; execution is about to start.
    Start {
        /// Cells in the full grid.
        cells: usize,
        /// Cells owned by this shard.
        shard_cells: usize,
        /// Cells the screening pass pruned (whole grid).
        pruned: usize,
    },
    /// `--resume` found completed cells in the manifest.
    Resumed {
        /// Cells skipped because their lines already exist.
        skipped: usize,
    },
    /// One functional warm-up finished and its snapshot was cached.
    Warmed {
        /// Cells of this shard's work list forking this warm state.
        cells_sharing: usize,
    },
    /// A simulated cell finished and its line was appended.
    CellDone {
        /// Grid index.
        cell: usize,
        /// Harmonic-mean IPC of the measured window.
        hmean_ipc: f64,
    },
    /// A pruned cell's line was appended (pruning is never silent).
    CellPruned {
        /// Grid index.
        cell: usize,
        /// The dominating cell's grid index.
        dominated_by: usize,
    },
    /// `fail_after` tripped; the invocation stops as if killed.
    Killed {
        /// Lines appended before stopping.
        appended: usize,
    },
}

/// What one invocation did, for callers and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Cells in the full grid.
    pub total_cells: usize,
    /// Cells owned by this shard.
    pub shard_cells: usize,
    /// Pruned-cell lines this invocation appended.
    pub pruned: usize,
    /// Cells skipped via `--resume`.
    pub skipped: usize,
    /// Cells simulated to completion this invocation.
    pub ran: usize,
    /// Functional warm-ups paid this invocation.
    pub warm_groups: usize,
    /// Whether `fail_after` cut the run short.
    pub killed: bool,
    /// `campaign/*` counters mirroring the fields above.
    pub registry: Registry,
}

/// Which shard (0-based) a cell index belongs to. Hashing the index
/// spreads expensive neighboring cells (same org, same mix) across
/// shards instead of giving one shard a solid block of them.
pub fn shard_of(index: usize, shards: u32) -> u32 {
    let h = fnv1a64(&(index as u64).to_le_bytes());
    (h % u64::from(shards.max(1))) as u32
}

/// One cell ready to simulate: its machine, organization, workload and
/// warm-group fingerprint, resolved once up front.
struct Prepared {
    cell: Cell,
    machine: MachineConfig,
    org: Organization,
    mix: Mix,
    fp: u64,
}

/// A unit of this shard's work list, in grid-index order.
enum Work {
    Prune {
        cell: Cell,
        verdict: Pruned,
        mix_label: String,
    },
    Run(Box<Prepared>),
}

impl Work {
    fn index(&self) -> usize {
        match self {
            Work::Prune { cell, .. } => cell.index,
            Work::Run(p) => p.cell.index,
        }
    }
}

/// Runs (this shard of) a campaign, appending manifest lines to
/// `opts.out` in cell-index order and reporting progress through
/// `on_event`.
///
/// # Errors
///
/// [`CampaignError::Config`] for invalid shard arguments or cell
/// geometry, [`CampaignError::Manifest`] when the manifest already
/// exists without `--resume` (or is corrupt mid-file),
/// [`CampaignError::Io`]/[`CampaignError::Snapshot`] on file and
/// snapshot failures.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &RunOptions,
    on_event: &mut dyn FnMut(&Event),
) -> Result<Report, CampaignError> {
    let (k, n) = opts.shard;
    if k == 0 || n == 0 || k > n {
        return Err(CampaignError::Config(format!(
            "invalid shard {k}/{n}: want 1 <= K <= N"
        )));
    }
    let jobs = resolve_jobs(opts.jobs);
    let cells = spec.cells();

    // Screening is global — every shard prices the whole grid and
    // derives the identical pruned set, so no coordination is needed.
    let pruned_list = if spec.screen {
        screen(spec, &cells)?
    } else {
        Vec::new()
    };
    let verdict_for = |idx: usize| pruned_list.iter().find(|p| p.cell == idx).copied();

    let completed = if opts.resume {
        read_completed(&opts.out)?
    } else {
        match std::fs::metadata(&opts.out) {
            Ok(m) if m.len() > 0 => {
                return Err(CampaignError::Manifest(format!(
                    "{} already has content; pass --resume to continue it or remove it first",
                    opts.out.display()
                )))
            }
            _ => Vec::new(),
        }
    };

    // Build this shard's work list in grid order, resolving machines,
    // mixes and warm fingerprints once.
    let mut mix_lists: Vec<(u64, Vec<Mix>)> = Vec::new();
    let mut todo: Vec<Work> = Vec::new();
    let mut skipped = 0usize;
    let mut shard_cells = 0usize;
    for cell in &cells {
        if shard_of(cell.index, n) != k - 1 {
            continue;
        }
        shard_cells += 1;
        if completed.contains(&cell.index) {
            skipped += 1;
            continue;
        }
        let machine = machine_for(cell)?;
        if !mix_lists.iter().any(|(s, _)| *s == cell.mix_seed) {
            mix_lists.push((cell.mix_seed, spec.mixes_for(cell.mix_seed, machine.cores)));
        }
        let mix = mix_lists
            .iter()
            .find(|(s, _)| *s == cell.mix_seed)
            .and_then(|(_, list)| list.get(cell.mix_index))
            .cloned()
            .ok_or_else(|| {
                CampaignError::Config(format!("cell {}: mix index out of range", cell.index))
            })?;
        match verdict_for(cell.index) {
            Some(verdict) => todo.push(Work::Prune {
                cell: *cell,
                verdict,
                mix_label: mix.label(),
            }),
            None => {
                let org = organization_for(cell, spec.seed);
                let fp = warm_fingerprint(&machine, org, &mix, spec.seed, spec.warm_instructions);
                todo.push(Work::Run(Box::new(Prepared {
                    cell: *cell,
                    machine,
                    org,
                    mix,
                    fp,
                })));
            }
        }
    }

    on_event(&Event::Start {
        cells: cells.len(),
        shard_cells,
        pruned: pruned_list.len(),
    });
    if skipped > 0 {
        on_event(&Event::Resumed { skipped });
    }

    // How many still-pending cells fork each warm state, so snapshots
    // are dropped the moment their last cell completes.
    let mut refcounts: Vec<(u64, usize)> = Vec::new();
    for w in &todo {
        if let Work::Run(p) = w {
            match refcounts.iter_mut().find(|(f, _)| *f == p.fp) {
                Some(rc) => rc.1 += 1,
                None => refcounts.push((p.fp, 1)),
            }
        }
    }

    let mut writer = ManifestWriter::append_to(&opts.out)?;
    let mut warm_cache: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut appended = 0usize;
    let mut ran = 0usize;
    let mut pruned_written = 0usize;
    let mut warm_groups = 0usize;
    let mut killed = false;

    let chunk_len = jobs.max(1) * 2;
    'chunks: for chunk in todo.chunks(chunk_len) {
        // Pay the chunk's missing warm-ups, fanned out over `jobs`.
        let mut missing: Vec<&Prepared> = Vec::new();
        for w in chunk {
            if let Work::Run(p) = w {
                let cached = warm_cache.iter().any(|(f, _)| *f == p.fp);
                let queued = missing.iter().any(|q| q.fp == p.fp);
                if !cached && !queued {
                    missing.push(p);
                }
            }
        }
        let warmed = map_slice(jobs, &missing, |p| warm_group(p, spec));
        for (p, bytes) in missing.iter().zip(warmed) {
            warm_cache.push((p.fp, bytes?));
            warm_groups += 1;
            let sharing = refcounts
                .iter()
                .find(|(f, _)| *f == p.fp)
                .map_or(0, |(_, c)| *c);
            on_event(&Event::Warmed {
                cells_sharing: sharing,
            });
        }

        // Simulate the chunk's runnable cells, then append every line
        // of the chunk in grid order.
        let runs: Vec<&Prepared> = chunk
            .iter()
            .filter_map(|w| match w {
                Work::Run(p) => Some(p.as_ref()),
                Work::Prune { .. } => None,
            })
            .collect();
        let cache = &warm_cache;
        let outputs = map_slice(jobs, &runs, |p| run_one(p, spec, cache));
        let mut outputs = outputs.into_iter();
        for w in chunk {
            let line = match w {
                Work::Prune {
                    cell,
                    verdict,
                    mix_label,
                } => {
                    on_event(&Event::CellPruned {
                        cell: cell.index,
                        dominated_by: verdict.dominated_by,
                    });
                    pruned_written += 1;
                    prune_line(cell, mix_label, verdict)
                }
                Work::Run(p) => {
                    let (hmean, line) = outputs.next().ok_or_else(|| {
                        CampaignError::Config(format!(
                            "cell {}: missing simulation output",
                            w.index()
                        ))
                    })??;
                    ran += 1;
                    release_warm_state(&mut warm_cache, &mut refcounts, p.fp);
                    on_event(&Event::CellDone {
                        cell: p.cell.index,
                        hmean_ipc: hmean,
                    });
                    line
                }
            };
            writer.append(&line)?;
            appended += 1;
            if opts.fail_after == Some(appended) {
                killed = true;
                on_event(&Event::Killed { appended });
                break 'chunks;
            }
        }
    }

    let mut registry = Registry::new();
    registry.add("campaign/cells_total", cells.len() as u64);
    registry.add("campaign/cells_shard", shard_cells as u64);
    registry.add("campaign/pruned_grid", pruned_list.len() as u64);
    registry.add("campaign/pruned_written", pruned_written as u64);
    registry.add("campaign/skipped", skipped as u64);
    registry.add("campaign/ran", ran as u64);
    registry.add("campaign/warm_groups", warm_groups as u64);
    registry.add("campaign/warm_forks", (ran - warm_groups.min(ran)) as u64);
    registry.add("campaign/appended", appended as u64);
    registry.add("campaign/killed", u64::from(killed));
    Ok(Report {
        total_cells: cells.len(),
        shard_cells,
        pruned: pruned_written,
        skipped,
        ran,
        warm_groups,
        killed,
        registry,
    })
}

/// Pays one warm group's functional warm-up and returns the chip
/// snapshot every cell of the group forks from. Any group member may
/// act as representative — warm state is latency-independent (pinned
/// by `nuca-core`'s snapshot tests) — so the first is used.
fn warm_group(p: &Prepared, spec: &CampaignSpec) -> Result<Vec<u8>, CampaignError> {
    let mut cmp = Cmp::new(&p.machine, p.org, &p.mix, spec.seed)?;
    cmp.warm(spec.warm_instructions);
    Ok(cmp.save_chip_state()?)
}

/// Runs one cell from its warm group's snapshot: restore, timed
/// warm-up, reset, measure. Returns the headline metric and the
/// finished manifest line.
fn run_one(
    p: &Prepared,
    spec: &CampaignSpec,
    warm_cache: &[(u64, Vec<u8>)],
) -> Result<(f64, String), CampaignError> {
    let bytes = warm_cache
        .iter()
        .find(|(f, _)| *f == p.fp)
        .map(|(_, b)| b)
        .ok_or_else(|| {
            CampaignError::Snapshot(format!("cell {}: warm state not cached", p.cell.index))
        })?;
    let mut cmp = Cmp::new(&p.machine, p.org, &p.mix, spec.seed)?;
    cmp.load_chip_state(bytes)?;
    if let Some((detail, gap)) = p.cell.time_sample.to_config() {
        cmp.set_time_sample(detail, gap);
    }
    cmp.run(spec.warmup_cycles);
    cmp.reset_stats();
    cmp.run(spec.measure_cycles);
    let result = cmp.snapshot();
    let line = done_line(&p.cell, &p.mix.label(), &result);
    Ok((result.hmean_ipc, line))
}

/// Drops a warm snapshot once its last pending cell has completed.
fn release_warm_state(cache: &mut Vec<(u64, Vec<u8>)>, refcounts: &mut [(u64, usize)], fp: u64) {
    if let Some(rc) = refcounts.iter_mut().find(|(f, _)| *f == fp) {
        rc.1 = rc.1.saturating_sub(1);
        if rc.1 == 0 {
            cache.retain(|(f, _)| *f != fp);
        }
    }
}

/// The axis-echo fields every manifest line starts with, in fixed key
/// order (the manifest is byte-compared across runs; key order and
/// number rendering must never drift).
fn axis_fields(cell: &Cell, mix_label: &str, status: &str) -> Vec<(String, Json)> {
    vec![
        ("cell".to_string(), Json::num(cell.index as f64)),
        ("status".to_string(), Json::str(status)),
        ("org".to_string(), Json::str(cell.org.name())),
        ("l3_mb".to_string(), Json::num(cell.l3_mb as f64)),
        ("l3_assoc".to_string(), Json::num(f64::from(cell.l3_assoc))),
        (
            "l3_latency".to_string(),
            Json::str(cell.l3_latency.render()),
        ),
        ("l2_latency".to_string(), Json::num(cell.l2_latency as f64)),
        (
            "mem_latency".to_string(),
            Json::str(cell.mem_latency.render()),
        ),
        ("mix_seed".to_string(), Json::num(cell.mix_seed as f64)),
        ("mix_index".to_string(), Json::num(cell.mix_index as f64)),
        (
            "sample_shift".to_string(),
            Json::num(f64::from(cell.sample_shift)),
        ),
        (
            "time_sample".to_string(),
            Json::str(cell.time_sample.render()),
        ),
        ("mix".to_string(), Json::str(mix_label)),
    ]
}

/// The manifest line of a completed simulation cell.
fn done_line(cell: &Cell, mix_label: &str, result: &CmpResult) -> String {
    let mut fields = axis_fields(cell, mix_label, "done");
    fields.push(("hmean_ipc".to_string(), Json::num(result.hmean_ipc)));
    fields.push(("amean_ipc".to_string(), Json::num(result.amean_ipc)));
    fields.push((
        "ipc".to_string(),
        Json::Arr(result.ipc.iter().map(|&v| Json::num(v)).collect()),
    ));
    fields.push((
        "l3_accesses".to_string(),
        Json::num(result.total_l3_accesses() as f64),
    ));
    fields.push((
        "l3_misses".to_string(),
        Json::num(result.total_l3_misses() as f64),
    ));
    fields.push((
        "mem_requests".to_string(),
        Json::num(result.memory.requests as f64),
    ));
    if let Some(quotas) = &result.quotas {
        fields.push((
            "quotas".to_string(),
            Json::Arr(quotas.iter().map(|&q| Json::num(f64::from(q))).collect()),
        ));
    }
    if let Some(t) = &result.time_sampling {
        fields.push((
            "time_sampling".to_string(),
            Json::Obj(vec![
                ("detail".to_string(), Json::num(t.detail as f64)),
                ("gap".to_string(), Json::num(t.gap as f64)),
                ("windows".to_string(), Json::num(t.windows as f64)),
                (
                    "detailed_cycles".to_string(),
                    Json::num(t.detailed_cycles as f64),
                ),
                (
                    "functional_cycles".to_string(),
                    Json::num(t.functional_cycles as f64),
                ),
                (
                    "mean_window_hmean_ipc".to_string(),
                    Json::num(t.mean_window_hmean_ipc),
                ),
                ("std_error".to_string(), Json::num(t.hmean_ipc_std_error)),
                ("relative_ci95".to_string(), Json::num(t.relative_ci95)),
            ]),
        ));
    }
    if let Some(s) = &result.sampling {
        fields.push((
            "sampling".to_string(),
            Json::Obj(vec![
                ("shift".to_string(), Json::num(f64::from(s.shift))),
                (
                    "sampled_accesses".to_string(),
                    Json::num(s.sampled_accesses as f64),
                ),
                (
                    "estimated_accesses".to_string(),
                    Json::num(s.estimated_accesses as f64),
                ),
                ("mean_latency".to_string(), Json::num(s.mean_latency)),
                ("std_error".to_string(), Json::num(s.std_error)),
            ]),
        ));
    }
    Json::Obj(fields).render_compact()
}

/// The manifest line of a screened-out cell: pruning is never silent —
/// the dominator and both price tags are recorded.
fn prune_line(cell: &Cell, mix_label: &str, verdict: &Pruned) -> String {
    let mut fields = axis_fields(cell, mix_label, "pruned");
    fields.push((
        "dominated_by".to_string(),
        Json::num(verdict.dominated_by as f64),
    ));
    fields.push((
        "storage_bits".to_string(),
        Json::num(verdict.estimate.storage_bits as f64),
    ));
    fields.push((
        "modeled_latency".to_string(),
        Json::num(verdict.estimate.modeled_latency),
    ));
    fields.push((
        "dominator_storage_bits".to_string(),
        Json::num(verdict.dominator.storage_bits as f64),
    ));
    fields.push((
        "dominator_modeled_latency".to_string(),
        Json::num(verdict.dominator.modeled_latency),
    ));
    Json::Obj(fields).render_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axes, LatPair, OrgKind};

    /// A campaign small enough for unit tests but real enough to
    /// exercise warm forking: one org would hide group sharing, so two
    /// latency points share each (org, mix) warm-up.
    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".to_string(),
            warm_instructions: 60_000,
            warmup_cycles: 5_000,
            measure_cycles: 20_000,
            mixes: 1,
            axes: Axes {
                organization: vec![OrgKind::Private, OrgKind::Adaptive],
                l3_latency: vec![
                    LatPair {
                        private: 14,
                        shared: 19,
                    },
                    LatPair {
                        private: 16,
                        shared: 24,
                    },
                ],
                ..Axes::default()
            },
            ..CampaignSpec::default()
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nuca-runner-{}-{name}", std::process::id()))
    }

    fn run(spec: &CampaignSpec, opts: &RunOptions) -> Report {
        run_campaign(spec, opts, &mut |_| {}).unwrap()
    }

    #[test]
    fn warm_state_is_forked_across_latency_cells() {
        let spec = tiny_spec();
        let out = tmp("fork.jsonl");
        let _ = std::fs::remove_file(&out);
        let report = run(
            &spec,
            &RunOptions {
                out: out.clone(),
                ..RunOptions::default()
            },
        );
        // 2 orgs x 2 latency pairs x 1 mix = 4 cells, but only 2
        // functional warm-ups: the latency axis forks.
        assert_eq!(report.total_cells, 4);
        assert_eq!(report.ran, 4);
        assert_eq!(report.warm_groups, 2);
        assert!(!report.killed);
        assert_eq!(report.registry.counter("campaign/warm_forks"), Some(2));
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_manifest() {
        let spec = tiny_spec();
        let full = tmp("full.jsonl");
        let cut = tmp("cut.jsonl");
        let _ = std::fs::remove_file(&full);
        let _ = std::fs::remove_file(&cut);
        run(
            &spec,
            &RunOptions {
                out: full.clone(),
                ..RunOptions::default()
            },
        );
        let killed = run(
            &spec,
            &RunOptions {
                out: cut.clone(),
                fail_after: Some(1),
                jobs: 2,
                ..RunOptions::default()
            },
        );
        assert!(killed.killed);
        assert_eq!(killed.registry.counter("campaign/killed"), Some(1));
        let resumed = run(
            &spec,
            &RunOptions {
                out: cut.clone(),
                resume: true,
                jobs: 2,
                ..RunOptions::default()
            },
        );
        assert_eq!(resumed.skipped, 1);
        assert!(!resumed.killed);
        let a = std::fs::read(&full).unwrap();
        let b = std::fs::read(&cut).unwrap();
        assert_eq!(a, b, "killed+resumed manifest must be byte-identical");
        let _ = std::fs::remove_file(&full);
        let _ = std::fs::remove_file(&cut);
    }

    #[test]
    fn shards_partition_the_grid_and_merge_to_the_serial_manifest() {
        let spec = tiny_spec();
        let serial = tmp("serial.jsonl");
        let s1 = tmp("s1.jsonl");
        let s2 = tmp("s2.jsonl");
        for p in [&serial, &s1, &s2] {
            let _ = std::fs::remove_file(p);
        }
        run(
            &spec,
            &RunOptions {
                out: serial.clone(),
                ..RunOptions::default()
            },
        );
        let r1 = run(
            &spec,
            &RunOptions {
                out: s1.clone(),
                shard: (1, 2),
                ..RunOptions::default()
            },
        );
        let r2 = run(
            &spec,
            &RunOptions {
                out: s2.clone(),
                shard: (2, 2),
                ..RunOptions::default()
            },
        );
        assert_eq!(r1.shard_cells + r2.shard_cells, 4);
        assert!(r1.shard_cells > 0 && r2.shard_cells > 0, "both shards work");
        let merged = crate::manifest::merge(&[s1.clone(), s2.clone()]).unwrap();
        let serial_text = std::fs::read_to_string(&serial).unwrap();
        assert_eq!(merged, serial_text);
        for p in [&serial, &s1, &s2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn existing_manifest_without_resume_is_refused() {
        let spec = tiny_spec();
        let out = tmp("refuse.jsonl");
        std::fs::write(&out, "{\"cell\":0}\n").unwrap();
        let err = run_campaign(
            &spec,
            &RunOptions {
                out: out.clone(),
                ..RunOptions::default()
            },
            &mut |_| {},
        );
        assert!(matches!(err, Err(CampaignError::Manifest(_))));
        assert!(matches!(
            run_campaign(
                &spec,
                &RunOptions {
                    shard: (3, 2),
                    ..RunOptions::default()
                },
                &mut |_| {},
            ),
            Err(CampaignError::Config(_))
        ));
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn screening_prunes_into_the_manifest_not_into_silence() {
        let mut spec = tiny_spec();
        spec.screen = true;
        spec.axes.organization = vec![OrgKind::Shared];
        let out = tmp("screen.jsonl");
        let _ = std::fs::remove_file(&out);
        let mut pruned_events = 0usize;
        let report = run_campaign(
            &spec,
            &RunOptions {
                out: out.clone(),
                ..RunOptions::default()
            },
            &mut |e| {
                if matches!(e, Event::CellPruned { .. }) {
                    pruned_events += 1;
                }
            },
        )
        .unwrap();
        // The slower latency pair is dominated: half the grid prunes,
        // and every pruned cell still has a manifest line.
        assert_eq!(report.pruned, 1);
        assert_eq!(report.ran, 1);
        assert_eq!(pruned_events, 1);
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("\"status\":\"pruned\""));
        assert!(text.contains("\"dominated_by\":0"));
        assert!(text.contains("\"modeled_latency\""));
        let _ = std::fs::remove_file(&out);
    }
}
