//! The crash-safe JSONL manifest: append, resume, merge.
//!
//! One line per finished cell, appended in cell-index order, flushed
//! per line. Lines carry no timestamps or host state, so the manifest
//! of a killed-and-resumed campaign is byte-identical to the manifest
//! of an uninterrupted run, and shard manifests merge (sort by cell
//! index) into exactly the single-process file. A partial trailing
//! line — the footprint of a kill mid-write — is truncated away on
//! resume and its cell re-runs.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

use telemetry::json::Json;

use crate::CampaignError;

fn io_err(path: &Path, e: impl std::fmt::Display) -> CampaignError {
    CampaignError::Io(format!("{}: {e}", path.display()))
}

/// An open manifest being appended to.
#[derive(Debug)]
pub struct ManifestWriter {
    file: File,
}

impl ManifestWriter {
    /// Opens (creating if absent) the manifest for appending.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] if the file cannot be opened.
    pub fn append_to(path: &Path) -> Result<Self, CampaignError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(ManifestWriter { file })
    }

    /// Appends one line (the newline is added here) and flushes, so a
    /// kill after this call loses nothing.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] on a write failure.
    pub fn append(&mut self, line: &str) -> Result<(), CampaignError> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.file
            .write_all(&buf)
            .and_then(|()| self.file.flush())
            .map_err(|e| CampaignError::Io(format!("manifest append: {e}")))
    }
}

/// The cell index a manifest line describes.
///
/// # Errors
///
/// [`CampaignError::Manifest`] if the line is not a JSON object with a
/// numeric `cell` field.
pub fn cell_index(line: &str) -> Result<usize, CampaignError> {
    let doc =
        Json::parse(line).map_err(|e| CampaignError::Manifest(format!("unparsable line: {e}")))?;
    match doc.get("cell").and_then(Json::as_num) {
        Some(n) if n >= 0.0 => Ok(n as usize),
        _ => Err(CampaignError::Manifest(
            "line has no numeric `cell` field".to_string(),
        )),
    }
}

/// Reads a manifest for `--resume`: returns the completed cell indices
/// in file order, truncating a partial or unparsable trailing line in
/// place (the kill footprint) so appending can continue cleanly.
///
/// A missing file is an empty manifest. A malformed line *before* the
/// last one is corruption, not a kill footprint, and is an error.
///
/// # Errors
///
/// [`CampaignError::Io`] on read/write failures,
/// [`CampaignError::Manifest`] on mid-file corruption.
pub fn read_completed(path: &Path) -> Result<Vec<usize>, CampaignError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(path, e)),
    };
    let mut keep_bytes = 0usize;
    let mut done = Vec::new();
    let mut lines = text.split_inclusive('\n').peekable();
    while let Some(line) = lines.next() {
        let is_last = lines.peek().is_none();
        let complete = line.ends_with('\n');
        match cell_index(line.trim_end_matches('\n')) {
            Ok(idx) if complete => {
                done.push(idx);
                keep_bytes += line.len();
            }
            // A partial (no newline) or garbled trailing line is the
            // kill footprint: truncate it, its cell re-runs.
            Ok(_) | Err(_) if is_last => break,
            Ok(_) => break, // unreachable: !complete implies is_last
            Err(e) => {
                return Err(CampaignError::Manifest(format!(
                    "{}: corrupt non-trailing line: {e}",
                    path.display()
                )))
            }
        }
    }
    if keep_bytes < text.len() {
        std::fs::write(path, &text.as_bytes()[..keep_bytes]).map_err(|e| io_err(path, e))?;
    }
    Ok(done)
}

/// Merges shard manifests into one document: all lines, sorted stably
/// by cell index. Since every writer appends in cell-index order and a
/// cell belongs to exactly one shard, the merge of N shard manifests
/// is byte-identical to an uninterrupted single-process manifest.
///
/// # Errors
///
/// [`CampaignError::Manifest`] on unparsable lines or when two inputs
/// disagree about the same cell; [`CampaignError::Io`] on read errors.
pub fn merge(inputs: &[std::path::PathBuf]) -> Result<String, CampaignError> {
    let mut lines: Vec<(usize, String)> = Vec::new();
    for path in inputs {
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            lines.push((cell_index(line)?, line.to_string()));
        }
    }
    lines.sort_by_key(|(idx, _)| *idx);
    for pair in lines.windows(2) {
        if pair[0].0 == pair[1].0 && pair[0].1 != pair[1].1 {
            return Err(CampaignError::Manifest(format!(
                "cell {} appears twice with different content",
                pair[0].0
            )));
        }
    }
    lines.dedup();
    let mut out = String::new();
    for (_, line) in &lines {
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nuca-campaign-{}-{name}", std::process::id()))
    }

    #[test]
    fn append_resume_and_truncate_partial_tail() {
        let path = tmp("resume.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut w = ManifestWriter::append_to(&path).unwrap();
        w.append("{\"cell\":0,\"status\":\"done\"}").unwrap();
        w.append("{\"cell\":2,\"status\":\"pruned\"}").unwrap();
        drop(w);
        // Simulate a kill mid-write: a partial trailing line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"cell\":5,\"sta").unwrap();
        }
        let done = read_completed(&path).unwrap();
        assert_eq!(done, vec![0, 2]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with("\"pruned\"}\n"), "partial tail truncated");
        // Appending after resume continues cleanly.
        let mut w = ManifestWriter::append_to(&path).unwrap();
        w.append("{\"cell\":5,\"status\":\"done\"}").unwrap();
        assert_eq!(read_completed(&path).unwrap(), vec![0, 2, 5]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_manifest_is_empty_and_midfile_corruption_is_fatal() {
        let path = tmp("missing.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_completed(&path).unwrap(), Vec::<usize>::new());
        std::fs::write(&path, "not json\n{\"cell\":1}\n").unwrap();
        assert!(matches!(
            read_completed(&path),
            Err(CampaignError::Manifest(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_sorts_by_cell_and_rejects_conflicts() {
        let a = tmp("shard-a.jsonl");
        let b = tmp("shard-b.jsonl");
        std::fs::write(&a, "{\"cell\":1,\"v\":1}\n{\"cell\":3,\"v\":3}\n").unwrap();
        std::fs::write(&b, "{\"cell\":0,\"v\":0}\n{\"cell\":2,\"v\":2}\n").unwrap();
        let merged = merge(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(
            merged,
            "{\"cell\":0,\"v\":0}\n{\"cell\":1,\"v\":1}\n{\"cell\":2,\"v\":2}\n{\"cell\":3,\"v\":3}\n"
        );
        // Identical duplicates dedupe; conflicting duplicates error.
        std::fs::write(&b, "{\"cell\":1,\"v\":1}\n").unwrap();
        assert_eq!(
            merge(&[a.clone(), b.clone()]).unwrap(),
            "{\"cell\":1,\"v\":1}\n{\"cell\":3,\"v\":3}\n"
        );
        std::fs::write(&b, "{\"cell\":1,\"v\":9}\n").unwrap();
        assert!(matches!(
            merge(&[a.clone(), b.clone()]),
            Err(CampaignError::Manifest(_))
        ));
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }
}
