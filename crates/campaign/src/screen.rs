//! The analytical screening pass: prune grid cells that are Pareto-
//! dominated before paying for their simulation.
//!
//! Screening compares cells *running the same workload* — same
//! `(mix_seed, mix_index, sample_shift)` — using the closed-form
//! [`nuca_core::cost::screening_estimate`] price: storage bits and
//! modeled miss-service latency. A cell is pruned when some other cell
//! of its workload class is no worse on both and strictly better on
//! one. Pruning is never silent: every pruned cell gets a manifest
//! line naming its dominator and both price tags, and the runner
//! reports the pruned list through its event stream.
//!
//! The pass is global (it sees the whole grid, not one shard's slice),
//! so every shard of a campaign computes the identical pruned set.

use nuca_core::cost::{screening_estimate, ScreeningEstimate};

use crate::grid::{machine_for, organization_for, Cell};
use crate::spec::CampaignSpec;
use crate::CampaignError;

/// The screening verdict for one pruned cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pruned {
    /// The pruned cell's grid index.
    pub cell: usize,
    /// The dominating cell's grid index (lowest such index).
    pub dominated_by: usize,
    /// The pruned cell's price.
    pub estimate: ScreeningEstimate,
    /// The dominator's price.
    pub dominator: ScreeningEstimate,
}

/// Prices every cell and returns the pruned ones, sorted by cell
/// index. Cells in different workload classes never compare.
///
/// # Errors
///
/// [`CampaignError::Config`] if a cell's machine cannot be built.
pub fn screen(spec: &CampaignSpec, cells: &[Cell]) -> Result<Vec<Pruned>, CampaignError> {
    let mut estimates = Vec::with_capacity(cells.len());
    for cell in cells {
        let machine = machine_for(cell)?;
        let org = organization_for(cell, spec.seed);
        estimates.push(screening_estimate(&machine, &org));
    }
    let same_class = |a: &Cell, b: &Cell| {
        a.mix_seed == b.mix_seed && a.mix_index == b.mix_index && a.sample_shift == b.sample_shift
    };
    let mut pruned = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let verdict = cells.iter().enumerate().find(|(j, other)| {
            *j != i && same_class(cell, other) && estimates[*j].dominates(&estimates[i])
        });
        if let Some((j, _)) = verdict {
            pruned.push(Pruned {
                cell: cell.index,
                dominated_by: cells[j].index,
                estimate: estimates[i],
                dominator: estimates[j],
            });
        }
    }
    Ok(pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axes, LatPair, OrgKind};

    /// A latency sweep: the slower latency pair is dominated at equal
    /// storage, the larger capacity survives (more storage, better
    /// latency).
    fn sweep_spec() -> CampaignSpec {
        CampaignSpec {
            mixes: 2,
            screen: true,
            axes: Axes {
                organization: vec![OrgKind::Shared],
                l3_latency: vec![
                    LatPair {
                        private: 14,
                        shared: 19,
                    },
                    LatPair {
                        private: 16,
                        shared: 24,
                    },
                ],
                ..Axes::default()
            },
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn slower_latency_points_are_pruned_per_workload() {
        let spec = sweep_spec();
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        let pruned = screen(&spec, &cells).unwrap();
        // Cells 2 and 3 (the 16/24 pair) are dominated by 0 and 1.
        assert_eq!(pruned.len(), 2);
        assert_eq!((pruned[0].cell, pruned[0].dominated_by), (2, 0));
        assert_eq!((pruned[1].cell, pruned[1].dominated_by), (3, 1));
        assert!(pruned[0].dominator.modeled_latency < pruned[0].estimate.modeled_latency);
    }

    #[test]
    fn pareto_frontier_survives() {
        let mut spec = sweep_spec();
        spec.axes.l3_latency = vec![LatPair {
            private: 14,
            shared: 19,
        }];
        spec.axes.l3_mb = vec![4, 8];
        let cells = spec.cells();
        // Bigger cache: more storage, better modeled latency — a
        // Pareto frontier with nothing dominated.
        assert!(screen(&spec, &cells).unwrap().is_empty());
    }

    #[test]
    fn different_mixes_never_compare() {
        let spec = sweep_spec();
        let cells = spec.cells();
        let pruned = screen(&spec, &cells).unwrap();
        for p in &pruned {
            let a = cells[p.cell];
            let b = cells[p.dominated_by];
            assert_eq!(a.mix_index, b.mix_index);
            assert_eq!(a.mix_seed, b.mix_seed);
        }
    }
}
