//! The campaign engine: declarative sweep specs, warm-state
//! snapshot/fork, and crash-safe sharded execution (DESIGN.md §9).
//!
//! A *campaign* is the design-space-exploration layer above
//! [`nuca_core::experiment`]: a committed `.toml` spec describes axes
//! (organization, L3 size/ways/latency, memory latency, mix seeds,
//! sampling shift) that expand into a flat, deterministic grid of
//! simulation cells. The engine then
//!
//! 1. optionally *screens* the grid with the analytical cost/latency
//!    model of [`nuca_core::cost`], pruning cells dominated on both
//!    storage cost and modeled service latency (every pruned cell is
//!    logged in the manifest — pruning is never silent);
//! 2. groups the surviving cells by *warm fingerprint* — the hash of
//!    everything the functional warm-up state depends on — pays the
//!    functional warm-up once per group, snapshots the chip with
//!    [`nuca_core::cmp::Cmp::save_chip_state`], and forks the bytes
//!    into every cell of the group (restore → timed run is pinned
//!    bit-identical to warming through);
//! 3. appends one JSON line per finished cell to a manifest, in cell
//!    order, so a killed campaign resumes exactly where it stopped and
//!    a sharded campaign merges bit-identically with an uninterrupted
//!    single-process run.
//!
//! The library never prints; progress flows through a caller-supplied
//! event callback and a [`telemetry::registry::Registry`] of counters.

pub mod driver;
pub mod grid;
pub mod manifest;
pub mod runner;
pub mod screen;
pub mod spec;

use std::fmt;

/// Any error the campaign engine can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The spec file failed to parse or validate (message carries
    /// `file:line:` context).
    Spec(String),
    /// A cell's machine configuration failed to build.
    Config(String),
    /// A file-system operation on the manifest or spec failed.
    Io(String),
    /// A manifest being resumed or merged is inconsistent.
    Manifest(String),
    /// A chip-state snapshot failed to encode or decode.
    Snapshot(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(m) => write!(f, "spec error: {m}"),
            CampaignError::Config(m) => write!(f, "config error: {m}"),
            CampaignError::Io(m) => write!(f, "io error: {m}"),
            CampaignError::Manifest(m) => write!(f, "manifest error: {m}"),
            CampaignError::Snapshot(m) => write!(f, "snapshot error: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<simcore::error::ConfigError> for CampaignError {
    fn from(e: simcore::error::ConfigError) -> Self {
        CampaignError::Config(e.to_string())
    }
}

impl From<simcore::snapshot::SnapshotError> for CampaignError {
    fn from(e: simcore::snapshot::SnapshotError) -> Self {
        CampaignError::Snapshot(format!("{e:?}"))
    }
}
