//! The declarative sweep-spec format and its parser.
//!
//! Specs are a minimal, hand-rolled TOML subset — sections, `key =
//! value` lines, integers, booleans, double-quoted strings and flat
//! arrays, with `#` comments — deliberately small enough to need no
//! external dependency while still reading as ordinary TOML:
//!
//! ```toml
//! [campaign]
//! name = "smoke"
//! seed = 2007
//! warm = 60000
//! warmup = 5000
//! measure = 20000
//! mixes = 2
//! pool = "intensive"
//! screen = false
//!
//! [axes]
//! organization = ["private", "adaptive"]
//! l3_mb = [4]
//! l3_assoc = [16]
//! l3_latency = ["14/19"]
//! l2_latency = [9]
//! mem_latency = ["258/260"]
//! mix_seed = [2007]
//! sample_shift = [0]
//! time_sample = ["0:0"]
//! ```
//!
//! Every axis is optional and defaults to the Table 1 baseline; the
//! grid is the cartesian product of all axes with the mix index
//! innermost (see [`crate::grid`]). Parse errors carry `line N:`
//! context; [`CampaignSpec::render`] emits canonical text that
//! re-parses to an identical spec (the round-trip property the unit
//! tests pin).

use crate::CampaignError;

/// Which application pool mixes are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// The 16 LLC-intensive applications (Figures 6, 7, 11).
    Intensive,
    /// All 24 applications (Figures 8, 9, 12).
    All,
}

impl PoolKind {
    /// The spec-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            PoolKind::Intensive => "intensive",
            PoolKind::All => "all",
        }
    }
}

/// One value of the `organization` axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrgKind {
    /// Per-core private slices.
    Private,
    /// Private slices at 4x capacity (the Figures 7–9 yardstick).
    Private4x,
    /// One shared cache.
    Shared,
    /// The paper's adaptive scheme (default parameters).
    Adaptive,
    /// Chang & Sohi's cooperative caching.
    Cooperative,
}

impl OrgKind {
    /// The spec-file spelling (matches the `nuca-sim --org` names).
    pub fn name(self) -> &'static str {
        match self {
            OrgKind::Private => "private",
            OrgKind::Private4x => "private4x",
            OrgKind::Shared => "shared",
            OrgKind::Adaptive => "adaptive",
            OrgKind::Cooperative => "cooperative",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "private" => Some(OrgKind::Private),
            "private4x" => Some(OrgKind::Private4x),
            "shared" => Some(OrgKind::Shared),
            "adaptive" => Some(OrgKind::Adaptive),
            "cooperative" => Some(OrgKind::Cooperative),
            _ => None,
        }
    }
}

/// A `private/shared` latency pair, spelled `"14/19"` in specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatPair {
    /// Latency on the private/local path.
    pub private: u64,
    /// Latency on the shared/remote path.
    pub shared: u64,
}

impl LatPair {
    /// The spec-file spelling, `private/shared`.
    pub fn render(self) -> String {
        format!("{}/{}", self.private, self.shared)
    }

    fn parse(s: &str) -> Option<Self> {
        let (a, b) = s.split_once('/')?;
        Some(LatPair {
            private: a.trim().parse().ok()?,
            shared: b.trim().parse().ok()?,
        })
    }
}

/// A `detail:gap` time-sampling schedule, spelled `"20000:80000"` in
/// specs. `0:0` turns time sampling off (full-detail simulation); a
/// zero gap with a non-zero detail is also full detail by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsPair {
    /// Cycles simulated in detail per window.
    pub detail: u64,
    /// Functionally warmed cycles between windows.
    pub gap: u64,
}

impl TsPair {
    /// The spec-file spelling, `detail:gap`.
    pub fn render(self) -> String {
        format!("{}:{}", self.detail, self.gap)
    }

    /// The [`nuca_core::experiment::ExperimentConfig::time_sample`]
    /// value this axis point selects (`None` when sampling is off).
    pub fn to_config(self) -> Option<(u64, u64)> {
        if self.gap == 0 {
            None
        } else {
            Some((self.detail, self.gap))
        }
    }

    /// Parses the `detail:gap` spelling (used by the spec axis and the
    /// `--time-sample` command-line override). Schedule *validity*
    /// (`detail > 0` whenever `gap > 0`) is the spec validator's job.
    pub fn parse(s: &str) -> Option<Self> {
        let (d, g) = s.split_once(':')?;
        Some(TsPair {
            detail: d.trim().parse().ok()?,
            gap: g.trim().parse().ok()?,
        })
    }
}

/// The sweep axes; each `Vec` is one dimension of the cartesian grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axes {
    /// Last-level organizations.
    pub organization: Vec<OrgKind>,
    /// Aggregate L3 capacity in MiB.
    pub l3_mb: Vec<u64>,
    /// Shared-organization associativity (private slices get
    /// `assoc / cores`, floored at 1).
    pub l3_assoc: Vec<u32>,
    /// L3 hit latencies as `private/shared` pairs (the neighbor/remote
    /// latency follows the shared value, as in the Figure 10 scaling).
    pub l3_latency: Vec<LatPair>,
    /// L2 hit latency (9 baseline, 11 technology-scaled).
    pub l2_latency: Vec<u64>,
    /// Memory first-chunk latencies as `private/shared` pairs.
    pub mem_latency: Vec<LatPair>,
    /// Workload-mix seeds; each seed draws `mixes` mixes from `pool`.
    pub mix_seed: Vec<u64>,
    /// Set-sampling shifts (`0` = full-detail simulation).
    pub sample_shift: Vec<u32>,
    /// Time-sampling schedules as `detail:gap` pairs (`0:0` = every
    /// cycle simulated in detail).
    pub time_sample: Vec<TsPair>,
}

impl Default for Axes {
    fn default() -> Self {
        Axes {
            organization: vec![OrgKind::Private, OrgKind::Shared, OrgKind::Adaptive],
            l3_mb: vec![4],
            l3_assoc: vec![16],
            l3_latency: vec![LatPair {
                private: 14,
                shared: 19,
            }],
            l2_latency: vec![9],
            mem_latency: vec![LatPair {
                private: 258,
                shared: 260,
            }],
            mix_seed: vec![2007],
            sample_shift: vec![0],
            time_sample: vec![TsPair { detail: 0, gap: 0 }],
        }
    }
}

/// A parsed, validated campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (manifest lines echo it nowhere; it names outputs).
    pub name: String,
    /// Master seed handed to [`nuca_core::cmp::Cmp::new`].
    pub seed: u64,
    /// Functional warm instructions per core.
    pub warm_instructions: u64,
    /// Timed warm-up cycles after restore.
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
    /// Mixes drawn per `mix_seed` axis value.
    pub mixes: usize,
    /// Application pool mixes are drawn from.
    pub pool: PoolKind,
    /// Whether the analytical screening pass prunes dominated cells.
    pub screen: bool,
    /// The sweep axes.
    pub axes: Axes,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            name: "campaign".to_string(),
            seed: 2007,
            warm_instructions: 3_000_000,
            warmup_cycles: 1_000_000,
            measure_cycles: 1_500_000,
            mixes: 10,
            pool: PoolKind::Intensive,
            screen: false,
            axes: Axes::default(),
        }
    }
}

// ---------------------------------------------------------------------
// Raw TOML-subset representation.

#[derive(Debug, Clone, PartialEq)]
enum RawValue {
    Int(i64),
    Str(String),
    Bool(bool),
    Arr(Vec<RawValue>),
}

impl RawValue {
    fn kind(&self) -> &'static str {
        match self {
            RawValue::Int(_) => "integer",
            RawValue::Str(_) => "string",
            RawValue::Bool(_) => "boolean",
            RawValue::Arr(_) => "array",
        }
    }
}

#[derive(Debug, Clone)]
struct RawEntry {
    key: String,
    line: usize,
    value: RawValue,
}

#[derive(Debug, Clone)]
struct RawSection {
    name: String,
    line: usize,
    entries: Vec<RawEntry>,
}

fn err(line: usize, msg: impl Into<String>) -> CampaignError {
    CampaignError::Spec(format!("line {line}: {}", msg.into()))
}

/// Strips a trailing comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(s: &str, line: usize) -> Result<RawValue, CampaignError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err(line, "missing value"));
    }
    if let Some(rest) = s.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(err(line, format!("unterminated string: {s}")));
        };
        if body.contains('"') {
            return Err(err(line, "strings may not contain embedded quotes"));
        }
        return Ok(RawValue::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(RawValue::Bool(true)),
        "false" => return Ok(RawValue::Bool(false)),
        _ => {}
    }
    s.replace('_', "")
        .parse::<i64>()
        .map(RawValue::Int)
        .map_err(|_| {
            err(
                line,
                format!("expected an integer, string, boolean or array, got `{s}`"),
            )
        })
}

fn parse_value(s: &str, line: usize) -> Result<RawValue, CampaignError> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(err(line, "array must open and close on one line"));
        };
        let body = body.trim();
        if body.is_empty() {
            return Ok(RawValue::Arr(Vec::new()));
        }
        let items = body
            .split(',')
            .map(|item| parse_scalar(item, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(RawValue::Arr(items));
    }
    parse_scalar(s, line)
}

fn parse_raw(text: &str) -> Result<Vec<RawSection>, CampaignError> {
    let mut sections: Vec<RawSection> = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(
                    line_no,
                    format!("unterminated section header `{line}`"),
                ));
            };
            let name = name.trim();
            if name.is_empty() {
                return Err(err(line_no, "empty section name"));
            }
            if sections.iter().any(|s| s.name == name) {
                return Err(err(line_no, format!("duplicate section `[{name}]`")));
            }
            sections.push(RawSection {
                name: name.to_string(),
                line: line_no,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(
                line_no,
                format!("expected `key = value` or `[section]`, got `{line}`"),
            ));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err(line_no, format!("invalid key `{key}`")));
        }
        let value = parse_value(value, line_no)?;
        let Some(section) = sections.last_mut() else {
            return Err(err(
                line_no,
                format!("`{key}` appears before any [section] header"),
            ));
        };
        if section.entries.iter().any(|e| e.key == key) {
            return Err(err(line_no, format!("duplicate key `{key}`")));
        }
        section.entries.push(RawEntry {
            key: key.to_string(),
            line: line_no,
            value,
        });
    }
    Ok(sections)
}

// ---------------------------------------------------------------------
// Typed extraction.

fn as_u64(e: &RawEntry) -> Result<u64, CampaignError> {
    match e.value {
        RawValue::Int(v) if v >= 0 => Ok(v as u64),
        _ => Err(err(
            e.line,
            format!(
                "`{}` must be a non-negative integer, got {}",
                e.key,
                e.value.kind()
            ),
        )),
    }
}

fn as_bool(e: &RawEntry) -> Result<bool, CampaignError> {
    match e.value {
        RawValue::Bool(v) => Ok(v),
        _ => Err(err(
            e.line,
            format!("`{}` must be true or false, got {}", e.key, e.value.kind()),
        )),
    }
}

fn as_str(e: &RawEntry) -> Result<&str, CampaignError> {
    match &e.value {
        RawValue::Str(s) => Ok(s),
        _ => Err(err(
            e.line,
            format!("`{}` must be a string, got {}", e.key, e.value.kind()),
        )),
    }
}

fn as_arr(e: &RawEntry) -> Result<&[RawValue], CampaignError> {
    match &e.value {
        RawValue::Arr(items) => {
            if items.is_empty() {
                Err(err(e.line, format!("axis `{}` must not be empty", e.key)))
            } else {
                Ok(items)
            }
        }
        _ => Err(err(
            e.line,
            format!("axis `{}` must be an array, got {}", e.key, e.value.kind()),
        )),
    }
}

fn int_axis(e: &RawEntry) -> Result<Vec<u64>, CampaignError> {
    as_arr(e)?
        .iter()
        .map(|v| match v {
            RawValue::Int(n) if *n >= 0 => Ok(*n as u64),
            other => Err(err(
                e.line,
                format!(
                    "axis `{}` holds non-negative integers, got {}",
                    e.key,
                    other.kind()
                ),
            )),
        })
        .collect()
}

fn lat_axis(e: &RawEntry) -> Result<Vec<LatPair>, CampaignError> {
    as_arr(e)?
        .iter()
        .map(|v| match v {
            RawValue::Str(s) => LatPair::parse(s).ok_or_else(|| {
                err(
                    e.line,
                    format!(
                        "axis `{}` holds \"private/shared\" latency pairs, got \"{s}\"",
                        e.key
                    ),
                )
            }),
            other => Err(err(
                e.line,
                format!(
                    "axis `{}` holds \"private/shared\" strings, got {}",
                    e.key,
                    other.kind()
                ),
            )),
        })
        .collect()
}

fn ts_axis(e: &RawEntry) -> Result<Vec<TsPair>, CampaignError> {
    as_arr(e)?
        .iter()
        .map(|v| match v {
            RawValue::Str(s) => TsPair::parse(s).ok_or_else(|| {
                err(
                    e.line,
                    format!(
                        "axis `{}` holds \"detail:gap\" schedule pairs, got \"{s}\"",
                        e.key
                    ),
                )
            }),
            other => Err(err(
                e.line,
                format!(
                    "axis `{}` holds \"detail:gap\" strings, got {}",
                    e.key,
                    other.kind()
                ),
            )),
        })
        .collect()
}

impl CampaignSpec {
    /// Parses a spec from text.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] with `line N:` context on any syntax
    /// error, unknown section/key, type mismatch or invalid value.
    pub fn parse(text: &str) -> Result<Self, CampaignError> {
        let sections = parse_raw(text)?;
        let mut spec = CampaignSpec::default();
        let mut saw_campaign = false;
        for section in &sections {
            match section.name.as_str() {
                "campaign" => {
                    saw_campaign = true;
                    spec.apply_campaign(section)?;
                }
                "axes" => spec.apply_axes(section)?,
                other => {
                    return Err(err(
                        section.line,
                        format!("unknown section `[{other}]` (expected [campaign] or [axes])"),
                    ))
                }
            }
        }
        if !saw_campaign {
            return Err(CampaignError::Spec(
                "line 1: spec must contain a [campaign] section".to_string(),
            ));
        }
        spec.validate()?;
        Ok(spec)
    }

    fn apply_campaign(&mut self, section: &RawSection) -> Result<(), CampaignError> {
        for e in &section.entries {
            match e.key.as_str() {
                "name" => self.name = as_str(e)?.to_string(),
                "seed" => self.seed = as_u64(e)?,
                "warm" => self.warm_instructions = as_u64(e)?,
                "warmup" => self.warmup_cycles = as_u64(e)?,
                "measure" => self.measure_cycles = as_u64(e)?,
                "mixes" => self.mixes = as_u64(e)? as usize,
                "screen" => self.screen = as_bool(e)?,
                "pool" => {
                    self.pool = match as_str(e)? {
                        "intensive" => PoolKind::Intensive,
                        "all" => PoolKind::All,
                        other => {
                            return Err(err(
                                e.line,
                                format!("`pool` must be \"intensive\" or \"all\", got \"{other}\""),
                            ))
                        }
                    }
                }
                other => return Err(err(e.line, format!("unknown [campaign] key `{other}`"))),
            }
        }
        Ok(())
    }

    fn apply_axes(&mut self, section: &RawSection) -> Result<(), CampaignError> {
        for e in &section.entries {
            match e.key.as_str() {
                "organization" => {
                    self.axes.organization = as_arr(e)?
                        .iter()
                        .map(|v| match v {
                            RawValue::Str(s) => OrgKind::parse(s).ok_or_else(|| {
                                err(
                                    e.line,
                                    format!(
                                        "unknown organization \"{s}\" (expected private, \
                                         private4x, shared, adaptive or cooperative)"
                                    ),
                                )
                            }),
                            other => Err(err(
                                e.line,
                                format!("`organization` holds strings, got {}", other.kind()),
                            )),
                        })
                        .collect::<Result<_, _>>()?;
                }
                "l3_mb" => self.axes.l3_mb = int_axis(e)?,
                "l3_assoc" => {
                    self.axes.l3_assoc = int_axis(e)?.into_iter().map(|v| v as u32).collect();
                }
                "l3_latency" => self.axes.l3_latency = lat_axis(e)?,
                "l2_latency" => self.axes.l2_latency = int_axis(e)?,
                "mem_latency" => self.axes.mem_latency = lat_axis(e)?,
                "mix_seed" => self.axes.mix_seed = int_axis(e)?,
                "sample_shift" => {
                    self.axes.sample_shift = int_axis(e)?.into_iter().map(|v| v as u32).collect();
                }
                "time_sample" => self.axes.time_sample = ts_axis(e)?,
                other => return Err(err(e.line, format!("unknown [axes] key `{other}`"))),
            }
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), CampaignError> {
        let bad = |msg: String| Err(CampaignError::Spec(msg));
        if self.name.is_empty() {
            return bad("campaign name must not be empty".to_string());
        }
        if self.mixes == 0 {
            return bad("`mixes` must be at least 1".to_string());
        }
        if self.measure_cycles == 0 {
            return bad("`measure` must be at least 1".to_string());
        }
        let a = &self.axes;
        if a.organization.is_empty()
            || a.l3_mb.is_empty()
            || a.l3_assoc.is_empty()
            || a.l3_latency.is_empty()
            || a.l2_latency.is_empty()
            || a.mem_latency.is_empty()
            || a.mix_seed.is_empty()
            || a.sample_shift.is_empty()
            || a.time_sample.is_empty()
        {
            return bad("every axis needs at least one value".to_string());
        }
        if a.l3_mb.iter().any(|&mb| mb == 0 || mb > 1024) {
            return bad("`l3_mb` values must be in 1..=1024".to_string());
        }
        if a.l3_assoc.contains(&0) {
            return bad("`l3_assoc` values must be at least 1".to_string());
        }
        if a.time_sample.iter().any(|t| t.detail == 0 && t.gap > 0) {
            return bad("`time_sample` schedules need detail > 0 when gap > 0 \
                 (there would be no detailed windows to measure from)"
                .to_string());
        }
        Ok(())
    }

    /// Renders the spec as canonical text; `parse(render(s)) == s` for
    /// every valid spec (the round-trip property).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "[campaign]");
        let _ = writeln!(out, "name = \"{}\"", self.name);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "warm = {}", self.warm_instructions);
        let _ = writeln!(out, "warmup = {}", self.warmup_cycles);
        let _ = writeln!(out, "measure = {}", self.measure_cycles);
        let _ = writeln!(out, "mixes = {}", self.mixes);
        let _ = writeln!(out, "pool = \"{}\"", self.pool.name());
        let _ = writeln!(out, "screen = {}", self.screen);
        let _ = writeln!(out);
        let _ = writeln!(out, "[axes]");
        let strs = |items: &[String]| items.join(", ");
        let _ = writeln!(
            out,
            "organization = [{}]",
            strs(
                &self
                    .axes
                    .organization
                    .iter()
                    .map(|o| format!("\"{}\"", o.name()))
                    .collect::<Vec<_>>()
            )
        );
        let ints = |items: &[u64]| {
            items
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "l3_mb = [{}]", ints(&self.axes.l3_mb));
        let _ = writeln!(
            out,
            "l3_assoc = [{}]",
            ints(
                &self
                    .axes
                    .l3_assoc
                    .iter()
                    .map(|&v| v as u64)
                    .collect::<Vec<_>>()
            )
        );
        let lats = |items: &[LatPair]| {
            items
                .iter()
                .map(|l| format!("\"{}\"", l.render()))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "l3_latency = [{}]", lats(&self.axes.l3_latency));
        let _ = writeln!(out, "l2_latency = [{}]", ints(&self.axes.l2_latency));
        let _ = writeln!(out, "mem_latency = [{}]", lats(&self.axes.mem_latency));
        let _ = writeln!(out, "mix_seed = [{}]", ints(&self.axes.mix_seed));
        let _ = writeln!(
            out,
            "sample_shift = [{}]",
            ints(
                &self
                    .axes
                    .sample_shift
                    .iter()
                    .map(|&v| v as u64)
                    .collect::<Vec<_>>()
            )
        );
        let _ = writeln!(
            out,
            "time_sample = [{}]",
            self.axes
                .time_sample
                .iter()
                .map(|t| format!("\"{}\"", t.render()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = r#"
# A tiny campaign.
[campaign]
name = "smoke"   # inline comment
seed = 7
warm = 60000
warmup = 5000
measure = 20000
mixes = 2
pool = "all"
screen = true

[axes]
organization = ["private", "adaptive"]
l3_mb = [4, 8]
l3_latency = ["14/19", "16/24"]
mem_latency = ["258/260"]
sample_shift = [0, 4]
time_sample = ["0:0", "20000:80000"]
"#;

    #[test]
    fn parses_a_spec_with_defaults_for_missing_axes() {
        let spec = CampaignSpec::parse(SMOKE).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.warm_instructions, 60_000);
        assert_eq!(spec.mixes, 2);
        assert_eq!(spec.pool, PoolKind::All);
        assert!(spec.screen);
        assert_eq!(
            spec.axes.organization,
            vec![OrgKind::Private, OrgKind::Adaptive]
        );
        assert_eq!(spec.axes.l3_mb, vec![4, 8]);
        assert_eq!(spec.axes.l3_assoc, vec![16], "default axis");
        assert_eq!(spec.axes.l2_latency, vec![9], "default axis");
        assert_eq!(
            spec.axes.l3_latency,
            vec![
                LatPair {
                    private: 14,
                    shared: 19
                },
                LatPair {
                    private: 16,
                    shared: 24
                }
            ]
        );
        assert_eq!(spec.axes.sample_shift, vec![0, 4]);
        assert_eq!(
            spec.axes.time_sample,
            vec![
                TsPair { detail: 0, gap: 0 },
                TsPair {
                    detail: 20_000,
                    gap: 80_000
                }
            ]
        );
        assert_eq!(spec.axes.time_sample[0].to_config(), None);
        assert_eq!(spec.axes.time_sample[1].to_config(), Some((20_000, 80_000)));
    }

    #[test]
    fn round_trips_through_render() {
        let spec = CampaignSpec::parse(SMOKE).unwrap();
        let text = spec.render();
        let again = CampaignSpec::parse(&text).unwrap();
        assert_eq!(spec, again);
        // And render is a fixed point.
        assert_eq!(text, again.render());
    }

    #[test]
    fn default_spec_round_trips_too() {
        let spec = CampaignSpec::default();
        assert_eq!(CampaignSpec::parse(&spec.render()).unwrap(), spec);
    }

    fn expect_err(text: &str, needle: &str) {
        match CampaignSpec::parse(text) {
            Err(CampaignError::Spec(msg)) => {
                assert!(
                    msg.contains(needle),
                    "error `{msg}` should mention `{needle}`"
                );
            }
            other => panic!("expected a spec error mentioning `{needle}`, got {other:?}"),
        }
    }

    #[test]
    fn malformed_specs_carry_line_numbers_and_context() {
        expect_err("[campaign]\nname 7\n", "line 2");
        expect_err("[campaign]\nname 7\n", "expected `key = value`");
        expect_err("[campaign]\nbogus = 1\n", "unknown [campaign] key `bogus`");
        expect_err("[bogus]\n", "unknown section `[bogus]`");
        expect_err("x = 1\n", "before any [section]");
        expect_err("[campaign]\nseed = \"x\"\n", "non-negative integer");
        expect_err("[campaign]\nseed = -3\n", "non-negative integer");
        expect_err("[campaign]\npool = \"weird\"\n", "\"intensive\" or \"all\"");
        expect_err("[campaign]\nname = \"x\n", "unterminated string");
        expect_err("[campaign]\nscreen = 1\n", "true or false");
        expect_err("[campaign]\nseed = 1\nseed = 2\n", "duplicate key `seed`");
        expect_err(
            "[campaign]\n[axes]\norganization = [\"warp\"]\n",
            "unknown organization \"warp\"",
        );
        expect_err(
            "[campaign]\n[axes]\nl3_latency = [\"14:19\"]\n",
            "latency pairs",
        );
        expect_err(
            "[campaign]\n[axes]\ntime_sample = [\"14/19\"]\n",
            "schedule pairs",
        );
        expect_err(
            "[campaign]\n[axes]\ntime_sample = [\"0:500\"]\n",
            "detail > 0",
        );
        expect_err("[campaign]\n[axes]\nl3_mb = []\n", "must not be empty");
        expect_err("[campaign]\n[axes]\nl3_mb = [1,\n2]\n", "one line");
        expect_err("[axes]\nl3_mb = [4]\n", "[campaign] section");
        expect_err("[campaign]\nmixes = 0\n", "`mixes` must be at least 1");
        expect_err(
            "[campaign]\n[axes]\nl3_mb = [0]\n",
            "`l3_mb` values must be in 1..=1024",
        );
    }

    #[test]
    fn comments_and_underscored_integers_parse() {
        let spec = CampaignSpec::parse("[campaign] # c\nwarm = 3_000_000 # c\n").unwrap();
        assert_eq!(spec.warm_instructions, 3_000_000);
    }
}
