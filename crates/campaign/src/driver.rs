//! The `nuca-sim campaign` command line: argument parsing, progress
//! printing and exit-status mapping.
//!
//! The binary stays a thin shell — it hands this module the argument
//! slice after the `campaign` word and a print callback, and maps the
//! returned code to `std::process::exit`. Keeping the driver here (and
//! print-free except through the callback) keeps the whole subsystem
//! inside the deterministic-lint wall: no clocks, no `std::env`, no
//! direct stdout.
//!
//! ```text
//! nuca-sim campaign <spec.toml> [--out PATH] [--shard K/N] [--resume]
//!                   [--jobs N] [--sample-sets K] [--time-sample D:G]
//!                   [--fail-after N]
//! nuca-sim campaign merge <merged.jsonl> <shard.jsonl>...
//! ```
//!
//! Exit codes: `0` success, `2` usage/configuration error, `3` the run
//! was cut short by `--fail-after` (the kill-injection test hook).

use std::path::PathBuf;

use crate::manifest;
use crate::runner::{run_campaign, Event, Report, RunOptions};
use crate::spec::CampaignSpec;
use crate::CampaignError;

/// Exit code for a run `--fail-after` cut short.
pub const EXIT_KILLED: i32 = 3;
/// Exit code for usage and configuration errors.
pub const EXIT_USAGE: i32 = 2;

/// One-line usage summary, printed on argument errors.
pub const USAGE: &str = "usage: nuca-sim campaign <spec.toml> [--out PATH] [--shard K/N] \
[--resume] [--jobs N] [--sample-sets K] [--time-sample D:G] [--fail-after N]\n   or: \
nuca-sim campaign merge <merged.jsonl> <shard.jsonl>...";

/// Runs the `campaign` subcommand. `args` is everything after the
/// `campaign` word; every line of output goes through `print`.
pub fn run(args: &[String], print: &mut dyn FnMut(&str)) -> i32 {
    match args.first().map(String::as_str) {
        None => {
            print(USAGE);
            EXIT_USAGE
        }
        Some("merge") => match merge_command(&args[1..]) {
            Ok(summary) => {
                print(&summary);
                0
            }
            Err(e) => {
                print(&format!("campaign merge: {e}"));
                print(USAGE);
                EXIT_USAGE
            }
        },
        Some(_) => campaign_command(args, print),
    }
}

/// `campaign merge <out> <in...>`: merge shard manifests into one file.
fn merge_command(args: &[String]) -> Result<String, CampaignError> {
    let (out, inputs) = args.split_first().ok_or_else(|| {
        CampaignError::Config("merge needs an output path and at least one input".to_string())
    })?;
    if inputs.is_empty() {
        return Err(CampaignError::Config(
            "merge needs at least one input manifest".to_string(),
        ));
    }
    let paths: Vec<PathBuf> = inputs.iter().map(PathBuf::from).collect();
    let merged = manifest::merge(&paths)?;
    let lines = merged.lines().count();
    std::fs::write(out, &merged).map_err(|e| CampaignError::Io(format!("{out}: {e}")))?;
    Ok(format!(
        "merged {} manifests into {out}: {lines} cells",
        paths.len()
    ))
}

/// Parsed form of the non-merge command line.
struct Parsed {
    spec_path: String,
    opts: RunOptions,
    sample_override: Option<u32>,
    time_override: Option<crate::spec::TsPair>,
}

fn parse_u64(flag: &str, value: Option<&String>) -> Result<u64, CampaignError> {
    value
        .ok_or_else(|| CampaignError::Config(format!("{flag} needs a value")))?
        .parse::<u64>()
        .map_err(|_| CampaignError::Config(format!("{flag}: not a number")))
}

fn parse_args(args: &[String]) -> Result<Parsed, CampaignError> {
    let mut parsed = Parsed {
        spec_path: String::new(),
        opts: RunOptions::default(),
        sample_override: None,
        time_override: None,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                parsed.opts.out = PathBuf::from(
                    it.next()
                        .ok_or_else(|| CampaignError::Config("--out needs a path".to_string()))?,
                );
            }
            "--shard" => {
                let v = it
                    .next()
                    .ok_or_else(|| CampaignError::Config("--shard needs K/N".to_string()))?;
                let (k, n) = v
                    .split_once('/')
                    .and_then(|(k, n)| Some((k.parse::<u32>().ok()?, n.parse::<u32>().ok()?)))
                    .ok_or_else(|| {
                        CampaignError::Config(format!("--shard {v}: want K/N, e.g. 1/4"))
                    })?;
                parsed.opts.shard = (k, n);
            }
            "--resume" => parsed.opts.resume = true,
            "--jobs" => parsed.opts.jobs = parse_u64("--jobs", it.next())? as usize,
            "--fail-after" => {
                parsed.opts.fail_after = Some(parse_u64("--fail-after", it.next())? as usize);
            }
            "--sample-sets" => {
                parsed.sample_override = Some(parse_u64("--sample-sets", it.next())? as u32);
            }
            "--time-sample" => {
                let v = it.next().ok_or_else(|| {
                    CampaignError::Config("--time-sample needs detail:gap".to_string())
                })?;
                let pair = crate::spec::TsPair::parse(v).ok_or_else(|| {
                    CampaignError::Config(format!(
                        "--time-sample {v}: want detail:gap cycle counts, e.g. 10000:40000"
                    ))
                })?;
                if pair.detail == 0 && pair.gap > 0 {
                    return Err(CampaignError::Config(format!(
                        "--time-sample {v}: detail must be > 0 when gap > 0 \
                         (no detailed cycles to measure IPC from)"
                    )));
                }
                parsed.time_override = Some(pair);
            }
            _ if arg.starts_with("--") => {
                return Err(CampaignError::Config(format!("unknown flag {arg}")));
            }
            _ if parsed.spec_path.is_empty() => parsed.spec_path = arg.clone(),
            _ => {
                return Err(CampaignError::Config(format!(
                    "unexpected argument {arg} (spec is {})",
                    parsed.spec_path
                )));
            }
        }
    }
    if parsed.spec_path.is_empty() {
        return Err(CampaignError::Config("no spec file given".to_string()));
    }
    Ok(parsed)
}

/// `campaign <spec.toml> ...`: parse, run, narrate, map the exit code.
fn campaign_command(args: &[String], print: &mut dyn FnMut(&str)) -> i32 {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            print(&format!("campaign: {e}"));
            print(USAGE);
            return EXIT_USAGE;
        }
    };
    let text = match std::fs::read_to_string(&parsed.spec_path) {
        Ok(t) => t,
        Err(e) => {
            print(&format!("campaign: {}: {e}", parsed.spec_path));
            return EXIT_USAGE;
        }
    };
    let mut spec = match CampaignSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            print(&format!("campaign: {}: {e}", parsed.spec_path));
            return EXIT_USAGE;
        }
    };
    if let Some(shift) = parsed.sample_override {
        spec.axes.sample_shift = vec![shift];
    }
    if let Some(pair) = parsed.time_override {
        spec.axes.time_sample = vec![pair];
    }
    let (k, n) = parsed.opts.shard;
    print(&format!(
        "campaign {}: spec {}, shard {k}/{n}, out {}",
        spec.name,
        parsed.spec_path,
        parsed.opts.out.display()
    ));
    let mut narrate = |e: &Event| match *e {
        Event::Start {
            cells,
            shard_cells,
            pruned,
        } => print(&format!(
            "  grid: {cells} cells, this shard owns {shard_cells}, screening pruned {pruned}"
        )),
        Event::Resumed { skipped } => {
            print(&format!("  resume: {skipped} cells already in manifest"));
        }
        Event::Warmed { cells_sharing } => {
            print(&format!(
                "  warm state ready ({cells_sharing} cells fork it)"
            ));
        }
        Event::CellDone { cell, hmean_ipc } => {
            print(&format!("  cell {cell} done hmean_ipc={hmean_ipc:.4}"));
        }
        Event::CellPruned { cell, dominated_by } => {
            print(&format!(
                "  cell {cell} pruned (dominated by {dominated_by})"
            ));
        }
        Event::Killed { appended } => {
            print(&format!("  killed after {appended} lines (--fail-after)"));
        }
    };
    match run_campaign(&spec, &parsed.opts, &mut narrate) {
        Ok(report) => {
            print(&summary(&report));
            if report.killed {
                EXIT_KILLED
            } else {
                0
            }
        }
        Err(e) => {
            print(&format!("campaign: {e}"));
            EXIT_USAGE
        }
    }
}

fn summary(r: &Report) -> String {
    format!(
        "campaign {}: ran {}, pruned {}, skipped {}, warm-ups {} (forked {})",
        if r.killed { "killed" } else { "done" },
        r.ran,
        r.pruned,
        r.skipped,
        r.warm_groups,
        r.ran.saturating_sub(r.warm_groups)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn collect(args: &[&str]) -> (i32, Vec<String>) {
        let mut out = Vec::new();
        let code = run(&strings(args), &mut |line| out.push(line.to_string()));
        (code, out)
    }

    #[test]
    fn usage_errors_exit_2_with_usage_text() {
        let (code, out) = collect(&[]);
        assert_eq!(code, EXIT_USAGE);
        assert!(out.join("\n").contains("usage:"));
        let (code, out) = collect(&["spec.toml", "--bogus"]);
        assert_eq!(code, EXIT_USAGE);
        assert!(out.join("\n").contains("unknown flag --bogus"));
        let (code, out) = collect(&["spec.toml", "--shard", "4"]);
        assert_eq!(code, EXIT_USAGE);
        assert!(out.join("\n").contains("want K/N"));
        let (code, out) = collect(&["/nonexistent/spec.toml"]);
        assert_eq!(code, EXIT_USAGE);
        assert!(out.join("\n").contains("/nonexistent/spec.toml"));
    }

    #[test]
    fn flags_parse_into_run_options() {
        let parsed = parse_args(&strings(&[
            "s.toml",
            "--out",
            "m.jsonl",
            "--shard",
            "2/4",
            "--resume",
            "--jobs",
            "3",
            "--fail-after",
            "7",
            "--sample-sets",
            "4",
            "--time-sample",
            "10000:40000",
        ]))
        .unwrap();
        assert_eq!(parsed.spec_path, "s.toml");
        assert_eq!(parsed.opts.out, PathBuf::from("m.jsonl"));
        assert_eq!(parsed.opts.shard, (2, 4));
        assert!(parsed.opts.resume);
        assert_eq!(parsed.opts.jobs, 3);
        assert_eq!(parsed.opts.fail_after, Some(7));
        assert_eq!(parsed.sample_override, Some(4));
        let pair = parsed.time_override.unwrap();
        assert_eq!((pair.detail, pair.gap), (10_000, 40_000));
    }

    #[test]
    fn time_sample_override_rejects_empty_windows() {
        let err = match parse_args(&strings(&["s.toml", "--time-sample", "0:500"])) {
            Err(e) => e,
            Ok(_) => panic!("0:500 must be rejected"),
        };
        assert!(err.to_string().contains("detail must be > 0"));
        let err = match parse_args(&strings(&["s.toml", "--time-sample", "10000/40000"])) {
            Err(e) => e,
            Ok(_) => panic!("10000/40000 must be rejected"),
        };
        assert!(err.to_string().contains("detail:gap"));
    }

    #[test]
    fn merge_subcommand_writes_the_merged_manifest() {
        let dir = std::env::temp_dir();
        let a = dir.join(format!("nuca-driver-a-{}.jsonl", std::process::id()));
        let b = dir.join(format!("nuca-driver-b-{}.jsonl", std::process::id()));
        let out = dir.join(format!("nuca-driver-m-{}.jsonl", std::process::id()));
        std::fs::write(&a, "{\"cell\":1}\n").unwrap();
        std::fs::write(&b, "{\"cell\":0}\n").unwrap();
        let (code, lines) = collect(&[
            "merge",
            out.to_str().unwrap(),
            a.to_str().unwrap(),
            b.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{lines:?}");
        assert_eq!(
            std::fs::read_to_string(&out).unwrap(),
            "{\"cell\":0}\n{\"cell\":1}\n"
        );
        assert!(lines.join("\n").contains("2 cells"));
        let (code, _) = collect(&["merge", out.to_str().unwrap()]);
        assert_eq!(code, EXIT_USAGE);
        for p in [&a, &b, &out] {
            let _ = std::fs::remove_file(p);
        }
    }
}
