//! Spec → deterministic cell grid, machine construction and the warm
//! fingerprint that decides which cells share one functional warm-up.
//!
//! The grid is the cartesian product of the axes in declaration order —
//! organization, `l3_mb`, `l3_assoc`, `l3_latency`, `l2_latency`,
//! `mem_latency`, `mix_seed`, `sample_shift`, `time_sample` — with the
//! mix index innermost, so cell N always means the same point for a
//! given spec.
//!
//! # Warm fingerprint
//!
//! Functional warm-up advances state without timing, so the post-warm
//! chip state is *independent of every latency parameter*: the L2/L3
//! hit latencies, the neighbor latency and the memory first-chunk
//! latencies (pinned by `nuca-core`'s `snapshot_is_latency_independent`
//! test). [`warm_fingerprint`] therefore hashes only what warm state
//! can depend on — core count, cache shapes (size/assoc/block), the
//! bus occupancy parameters (`inter_chunk`, `chunk_bytes`), the
//! organization's structural identity, the sampling shift, the mix and
//! the seeds. Cells that differ only in latency axes share one warm-up
//! and fork the snapshot, which is where the campaign engine's speedup
//! comes from. The `time_sample` axis is likewise excluded: warm-up is
//! functional, so the post-warm state cannot depend on how the *timed*
//! phase will be sampled.

use nuca_core::engine::AdaptiveParams;
use nuca_core::l3::Organization;
use simcore::config::{CacheGeometry, MachineConfig, MachineConfigBuilder};
use simcore::snapshot::fnv1a64;
use tracegen::spec::SpecApp;
use tracegen::workload::{Mix, WorkloadPool};

use crate::spec::{CampaignSpec, LatPair, OrgKind, PoolKind, TsPair};
use crate::CampaignError;

/// One point of the expanded grid. Axis values are echoed verbatim so
/// manifest lines can identify the cell without re-expanding the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Position in the grid (the manifest key).
    pub index: usize,
    /// Organization axis value.
    pub org: OrgKind,
    /// Aggregate L3 capacity in MiB.
    pub l3_mb: u64,
    /// Shared-organization associativity.
    pub l3_assoc: u32,
    /// L3 private/shared hit latencies.
    pub l3_latency: LatPair,
    /// L2 hit latency.
    pub l2_latency: u64,
    /// Memory private/shared first-chunk latencies.
    pub mem_latency: LatPair,
    /// Mix seed (selects the mix list).
    pub mix_seed: u64,
    /// Index into the mix list drawn from `mix_seed`.
    pub mix_index: usize,
    /// Set-sampling shift (`0` = off).
    pub sample_shift: u32,
    /// Time-sampling schedule (`0:0` = off).
    pub time_sample: TsPair,
}

impl CampaignSpec {
    /// Expands the spec into its flat, deterministic cell grid.
    pub fn cells(&self) -> Vec<Cell> {
        let a = &self.axes;
        let mut cells = Vec::new();
        for &org in &a.organization {
            for &l3_mb in &a.l3_mb {
                for &l3_assoc in &a.l3_assoc {
                    for &l3_latency in &a.l3_latency {
                        for &l2_latency in &a.l2_latency {
                            for &mem_latency in &a.mem_latency {
                                for &mix_seed in &a.mix_seed {
                                    for &sample_shift in &a.sample_shift {
                                        for &time_sample in &a.time_sample {
                                            for mix_index in 0..self.mixes {
                                                cells.push(Cell {
                                                    index: cells.len(),
                                                    org,
                                                    l3_mb,
                                                    l3_assoc,
                                                    l3_latency,
                                                    l2_latency,
                                                    mem_latency,
                                                    mix_seed,
                                                    mix_index,
                                                    sample_shift,
                                                    time_sample,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The application pool the spec draws mixes from.
    pub fn pool_apps(&self) -> Vec<SpecApp> {
        match self.pool {
            PoolKind::Intensive => SpecApp::intensive_pool(),
            PoolKind::All => SpecApp::ALL.to_vec(),
        }
    }

    /// The mix list for one `mix_seed` axis value (`mixes` entries).
    pub fn mixes_for(&self, mix_seed: u64, cores: usize) -> Vec<Mix> {
        WorkloadPool::random_mixes(&self.pool_apps(), cores, self.mixes, mix_seed)
    }
}

/// Builds the machine configuration a cell runs on.
///
/// # Errors
///
/// [`CampaignError::Config`] when the axis values describe an invalid
/// geometry (e.g. an associativity the set math cannot honor).
pub fn machine_for(cell: &Cell) -> Result<MachineConfig, CampaignError> {
    let capacity = cell.l3_mb * 1024 * 1024;
    let mut machine = MachineConfigBuilder::new()
        .l3_capacity(capacity)
        .l3_private_latency(cell.l3_latency.private)
        .l3_shared_latency(cell.l3_latency.shared)
        .l3_neighbor_latency(cell.l3_latency.shared)
        .build()?;
    let cores = machine.cores as u32;
    machine.l3.shared = CacheGeometry::new(capacity, cell.l3_assoc, 64, cell.l3_latency.shared)?;
    machine.l3.private = CacheGeometry::new(
        capacity / u64::from(cores),
        (cell.l3_assoc / cores).max(1),
        64,
        cell.l3_latency.private,
    )?;
    machine.l2 = machine.l2.with_latency(cell.l2_latency);
    machine.memory.first_chunk_private = cell.mem_latency.private;
    machine.memory.first_chunk_shared = cell.mem_latency.shared;
    if cell.sample_shift > 0 {
        machine.l3.sample_shift = Some(cell.sample_shift);
    }
    machine.validate()?;
    Ok(machine)
}

/// The [`Organization`] a cell runs (the cooperative scheme's internal
/// seed follows the campaign seed, as `nuca-sim --org cooperative`
/// does).
pub fn organization_for(cell: &Cell, campaign_seed: u64) -> Organization {
    match cell.org {
        OrgKind::Private => Organization::Private,
        OrgKind::Private4x => Organization::PrivateScaled { factor: 4 },
        OrgKind::Shared => Organization::Shared,
        OrgKind::Adaptive => Organization::Adaptive(AdaptiveParams::default()),
        OrgKind::Cooperative => Organization::Cooperative {
            seed: campaign_seed,
        },
    }
}

/// Everything the post-warm chip state depends on, hashed. Cells with
/// equal fingerprints share one functional warm-up; latency parameters
/// are deliberately excluded (see the module docs).
pub fn warm_fingerprint(
    machine: &MachineConfig,
    org: Organization,
    mix: &Mix,
    campaign_seed: u64,
    warm_instructions: u64,
) -> u64 {
    use std::fmt::Write as _;
    let mut id = String::new();
    let shape =
        |g: &CacheGeometry| format!("{}x{}x{}", g.size_bytes(), g.total_ways(), g.block_bytes());
    let _ = write!(
        id,
        "cores={};l1i={};l1d={};l2={};l3s={};l3p={};bus={}x{};shift={:?};",
        machine.cores,
        shape(&machine.l1i),
        shape(&machine.l1d),
        shape(&machine.l2),
        shape(&machine.l3.shared),
        shape(&machine.l3.private),
        machine.memory.inter_chunk,
        machine.memory.chunk_bytes,
        machine.l3.sample_shift,
    );
    // The organization's structural identity: variant, adaptive
    // parameters, scale factors and internal seeds all shape warm
    // state; Debug renders them canonically. Latency fields do not
    // appear in any Organization variant the grid generates.
    let _ = write!(id, "org={org:?};");
    let _ = write!(id, "mix={};fwd={:?};", mix.label(), mix.forwards);
    let _ = write!(id, "seed={campaign_seed};warm={warm_instructions}");
    fnv1a64(id.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axes;

    fn two_by_two() -> CampaignSpec {
        CampaignSpec {
            mixes: 2,
            axes: Axes {
                organization: vec![OrgKind::Private, OrgKind::Adaptive],
                l3_latency: vec![
                    LatPair {
                        private: 14,
                        shared: 19,
                    },
                    LatPair {
                        private: 16,
                        shared: 24,
                    },
                ],
                ..Axes::default()
            },
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn grid_is_the_cartesian_product_in_declaration_order() {
        let spec = two_by_two();
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2, "orgs x latencies x mixes");
        // Mix index is innermost, organization outermost.
        assert_eq!(cells[0].mix_index, 0);
        assert_eq!(cells[1].mix_index, 1);
        assert_eq!(cells[0].l3_latency.private, 14);
        assert_eq!(cells[2].l3_latency.private, 16);
        assert_eq!(cells[0].org, OrgKind::Private);
        assert_eq!(cells[4].org, OrgKind::Adaptive);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Expansion is deterministic.
        assert_eq!(cells, spec.cells());
    }

    #[test]
    fn machines_honor_the_axes() {
        let spec = two_by_two();
        let cells = spec.cells();
        let m = machine_for(&cells[2]).unwrap();
        assert_eq!(m.l3.shared.size_bytes(), 4 * 1024 * 1024);
        assert_eq!(m.l3.shared.latency(), 24);
        assert_eq!(m.l3.private.latency(), 16);
        assert_eq!(m.l3.neighbor_latency, 24);
        assert_eq!(m.l3.shared.total_ways(), 16);
        assert_eq!(m.l3.private.total_ways(), 4);
        assert_eq!(m.memory.first_chunk_private, 258);
        assert_eq!(m.l3.sample_shift, None);
    }

    #[test]
    fn sampling_shift_reaches_the_machine() {
        let mut spec = two_by_two();
        spec.axes.sample_shift = vec![3];
        let cells = spec.cells();
        let m = machine_for(&cells[0]).unwrap();
        assert_eq!(m.l3.sample_shift, Some(3));
    }

    #[test]
    fn time_sample_axis_reaches_the_cells() {
        let mut spec = two_by_two();
        spec.axes.time_sample = vec![
            TsPair { detail: 0, gap: 0 },
            TsPair {
                detail: 5_000,
                gap: 20_000,
            },
        ];
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2, "time_sample doubles the grid");
        // The time_sample axis sits between sample_shift and mix_index.
        assert_eq!(cells[0].time_sample.to_config(), None);
        assert_eq!(cells[2].time_sample.to_config(), Some((5_000, 20_000)));
        assert_eq!(cells[2].mix_index, 0);
    }

    #[test]
    fn warm_fingerprint_ignores_latency_axes_only() {
        let spec = two_by_two();
        let cells = spec.cells();
        let mixes = spec.mixes_for(2007, 4);
        let fp = |cell: &Cell| {
            let m = machine_for(cell).unwrap();
            warm_fingerprint(
                &m,
                organization_for(cell, spec.seed),
                &mixes[cell.mix_index],
                spec.seed,
                spec.warm_instructions,
            )
        };
        // Cells 0 and 2: same org/mix, different L3 latency pair —
        // one warm group.
        assert_eq!(fp(&cells[0]), fp(&cells[2]));
        // Different mix, org or structure: different groups.
        assert_ne!(fp(&cells[0]), fp(&cells[1]));
        assert_ne!(fp(&cells[0]), fp(&cells[4]));
        let mut bigger = cells[0];
        bigger.l3_mb = 8;
        assert_ne!(fp(&cells[0]), fp(&bigger));
        let mut sampled = cells[0];
        sampled.sample_shift = 4;
        assert_ne!(fp(&cells[0]), fp(&sampled));
    }
}
