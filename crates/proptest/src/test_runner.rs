//! The case-running half of the stub: configuration, failure type and the
//! `proptest!` / `prop_assert*` macros.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 because several properties in
    /// this workspace run thousands of simulator steps per case.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Defines `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]   // optional
///     #[test]
///     fn my_property(x in 0u8..16, ys in collection::vec(0u64..4, 0..10)) {
///         prop_assert!(x < 16);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])+
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.effective_cases() {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, cfg.effective_cases(), e, inputs,
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(concat!("assertion failed: ", stringify!($cond), ": {}"), format!($($fmt)+)),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r,
            )));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}
