//! Collection strategies (`proptest::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy for `Vec`s of `element` values with a length drawn uniformly
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
