//! Value-generation strategies: the sampling half of proptest's `Strategy`
//! abstraction (shrinking is intentionally absent — see the crate docs).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// Generates values of `Self::Value` from a deterministic stream.
///
/// Object-safe: the combinator methods are `Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works (used by [`prop_oneof!`]).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed to mix arms in [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Debug,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union over `arms`; panics on an empty arm list (a test
    /// authoring error, never reachable through `prop_oneof!`).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

impl<T: Debug> Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy over every value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident => $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A => 0)
    (A => 0, B => 1)
    (A => 0, B => 1, C => 2)
    (A => 0, B => 1, C => 2, D => 3)
    (A => 0, B => 1, C => 2, D => 3, E => 4)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5)
}

/// Uniform choice between strategies producing the same value type.
///
/// Arms may have different concrete types; each is boxed.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
