//! Offline stand-in for the `proptest` crate.
//!
//! This workspace must build in environments with no network access and no
//! crates.io mirror, so the real `proptest` cannot be downloaded. This crate
//! reimplements the small slice of its API the workspace uses — strategies
//! over ranges/tuples/collections, `prop_oneof!`, `prop_map`, `Just`,
//! `any::<T>()`, the `proptest!` macro and the `prop_assert*` macros — on a
//! deterministic SplitMix64 stream.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the sampled inputs but does
//!   not minimize them.
//! - **Deterministic by default.** Each test's stream is seeded from the
//!   test name, so failures reproduce run to run; set `PROPTEST_SEED` to
//!   explore a different stream.
//! - `PROPTEST_CASES` overrides the per-test case count.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The subset of `proptest::prelude` the workspace imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic pseudo-random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a textual label (typically the test name),
    /// honouring the `PROPTEST_SEED` environment variable when set.
    pub fn from_label(label: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                seed ^= extra.rotate_left(17);
            }
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, bound)`; returns 0 for a zero bound.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_label("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(0), 0);
    }

    proptest! {
        #[test]
        fn macro_samples_ranges(x in 0u8..16, y in 1u64..50) {
            prop_assert!(x < 16);
            prop_assert!((1..50).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_supports_config_tuples_and_vec(
            pairs in crate::collection::vec((0u64..64, any::<bool>()), 1..40),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 40);
            for (v, _) in &pairs {
                prop_assert!(*v < 64);
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_map_and_just_compose(
            v in prop_oneof![
                (0u8..4).prop_map(|x| x as i32),
                Just(-1i32),
            ]
        ) {
            prop_assert!(v == -1 || (0..4).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn float_ranges_sample_within_bounds(f in 0.25f64..4.0) {
            prop_assert!((0.25..4.0).contains(&f));
        }
    }
}
