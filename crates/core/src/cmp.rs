//! The four-core chip multiprocessor: cores, last-level organization and
//! the shared memory channel bound together.
//!
//! Mirrors the simulated architecture of Figure 1: four independent
//! out-of-order cores with private L1/L2 hierarchies, a last-level cache
//! managed by one of the [`Organization`]s, and a shared off-chip bus
//! with congestion. The methodology of Section 3 (random fast-forward,
//! warm-up, fixed measured cycles) is driven through
//! [`Cmp::run`]/[`Cmp::reset_stats`].

use std::borrow::Borrow;

use cpusim::core::{Core, CoreStats};
use cpusim::l3iface::{L3Batch, L3Op, LastLevel, OPS_PER_WARM_OP};
use memsim::MemoryStats;
use simcore::config::MachineConfig;
use simcore::error::{ConfigError, Result};
use simcore::invariant::{Invariant, Violation};
use simcore::rng::SimRng;
use simcore::stats::{arithmetic_mean, harmonic_mean};
use simcore::types::{CoreId, Cycle};
use telemetry::{Event, NullSink, Sink};
use tracegen::workload::Mix;
use tracegen::TraceGenerator;

use crate::l3::{L3System, Organization, SamplingReport};

/// SMARTS-style accuracy summary of a time-sampled run: what fraction of
/// time ran detailed, how many paired measurements the estimate rests
/// on, and the confidence interval those measurements imply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSamplingReport {
    /// Detailed-window length in cycles.
    pub detail: u64,
    /// Functional-warming gap length in cycles.
    pub gap: u64,
    /// Full-length detailed windows measured (partial tail windows feed
    /// the IPC estimate but not the window-to-window error bound).
    pub windows: u64,
    /// Cycles simulated in detail since the last stats reset.
    pub detailed_cycles: u64,
    /// Cycles covered by functional warming since the last stats reset.
    pub functional_cycles: u64,
    /// Mean per-window hmean IPC over the full windows.
    pub mean_window_hmean_ipc: f64,
    /// Standard error of that mean (0 with fewer than two windows).
    pub hmean_ipc_std_error: f64,
    /// Relative half-width of the 95 % confidence interval:
    /// `1.96 · SE / mean` (the SMARTS reporting convention).
    pub relative_ci95: f64,
}

/// Results of one measurement window on a [`Cmp`].
#[derive(Debug, Clone, PartialEq)]
pub struct CmpResult {
    /// Per-core `(application name, statistics)`, in core order.
    pub per_core: Vec<(&'static str, CoreStats)>,
    /// Per-core IPC, in core order.
    pub ipc: Vec<f64>,
    /// Harmonic mean of per-core IPC — the paper's headline metric.
    pub hmean_ipc: f64,
    /// Arithmetic mean of per-core IPC.
    pub amean_ipc: f64,
    /// Memory-channel statistics for the window.
    pub memory: MemoryStats,
    /// Adaptive quota snapshot, when the organization is adaptive.
    pub quotas: Option<Vec<u32>>,
    /// Set-sampling accuracy summary, when the run was set-sampled.
    pub sampling: Option<SamplingReport>,
    /// Time-sampling accuracy summary, when the run was time-sampled
    /// (`None` for full-detail runs, including `--time-sample d:0`).
    pub time_sampling: Option<TimeSamplingReport>,
}

impl CmpResult {
    /// Total last-level misses across cores.
    pub fn total_l3_misses(&self) -> u64 {
        self.per_core.iter().map(|(_, s)| s.l3_misses).sum()
    }

    /// Total last-level accesses across cores.
    pub fn total_l3_accesses(&self) -> u64 {
        self.per_core.iter().map(|(_, s)| s.l3_accesses).sum()
    }
}

/// The simulated chip multiprocessor.
///
/// The `S` parameter selects the telemetry sink shared by the cores and
/// the last-level organization; the default [`NullSink`] compiles all
/// emission sites away.
#[derive(Debug)]
pub struct Cmp<S: Sink = NullSink> {
    cores: Vec<Core<S>>,
    l3: L3System<S>,
    now: Cycle,
    window_start: Cycle,
    /// Whether [`Cmp::run`] may jump over provably-idle windows (the
    /// event-driven fast path). The `--no-skip` escape hatch clears it.
    cycle_skip: bool,
    /// Per-core memo of the last [`Core::idle_until`] answer: while
    /// `idle_wake[i] > now`, core `i` is known idle until that cycle and
    /// need not be re-proved. Sound because idleness depends only on
    /// core-local state and an idle core's step is a no-op, so the proof
    /// survives other cores' activity; cleared whenever a core goes
    /// active (0 is always stale) and at the top of [`Cmp::run`].
    idle_wake: Vec<u64>,
    /// `Some((detail, gap))` when [`Cmp::run`] time-samples: alternate
    /// `detail` cycle-accurate cycles with `gap` functionally-warmed
    /// cycles. `None` (the default, and any 0-gap request) runs every
    /// cycle in detail.
    time_sample: Option<(u64, u64)>,
    /// Detailed-window measurement accumulators for the SMARTS estimate.
    ts: TsAccum,
    /// The chip-level telemetry sink (window-boundary events; cores and
    /// the organization carry their own clones).
    sink: S,
}

/// Per-window accumulators of a time-sampled run. Reset with the
/// statistics window; scratch vectors are allocated once at build time.
#[derive(Debug, Clone, Default)]
struct TsAccum {
    /// Full detailed windows measured.
    windows: u64,
    /// Running sum of per-window hmean IPC over full windows.
    sum: f64,
    /// Running sum of squares (for the standard error).
    sumsq: f64,
    /// Total cycles run in detail.
    detailed_cycles: u64,
    /// Total cycles covered functionally.
    functional_cycles: u64,
    /// Per-core instructions committed inside detailed windows.
    core_committed: Vec<u64>,
    /// Scratch: per-core committed count at the current window's start.
    window_base: Vec<u64>,
    /// Scratch: per-core IPC of the current window.
    window_ipc: Vec<f64>,
    /// Gap retirement pacing, as the exact rational `pace_num[i] /
    /// pace_den` instructions per cycle: the last detailed window's
    /// per-core committed count (floored at one, so a fully stalled
    /// window cannot starve the generator stream) over its span. The
    /// functional gap retires by Bresenham accumulation against these,
    /// so each core advances its instruction stream at the density the
    /// detailed model just measured — integer math only, deterministic.
    pace_num: Vec<u64>,
    /// Denominator of the pacing rational: the last window's span.
    pace_den: u64,
    /// Per-core Bresenham credit carried across gap cycles.
    pace_acc: Vec<u64>,
}

impl TsAccum {
    fn for_cores(cores: usize) -> Self {
        TsAccum {
            core_committed: vec![0; cores],
            window_base: vec![0; cores],
            window_ipc: vec![0.0; cores],
            pace_num: vec![0; cores],
            pace_acc: vec![0; cores],
            ..TsAccum::default()
        }
    }

    fn reset(&mut self) {
        self.windows = 0;
        self.sum = 0.0;
        self.sumsq = 0.0;
        self.detailed_cycles = 0;
        self.functional_cycles = 0;
        self.core_committed.fill(0);
        self.pace_num.fill(0);
        self.pace_den = 0;
        self.pace_acc.fill(0);
    }
}

impl Cmp {
    /// Builds an untraced chip running `mix` under the given last-level
    /// organization. Each core's trace generator is seeded independently
    /// from `seed` and fast-forwarded per the mix (Section 3).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the mix does not match the machine's
    /// core count or the organization cannot be built.
    pub fn new(cfg: &MachineConfig, org: Organization, mix: &Mix, seed: u64) -> Result<Self> {
        Cmp::new_with_sink(cfg, org, mix, seed, NullSink)
    }

    /// Builds an untraced chip running arbitrary application profiles —
    /// used for parallel (read-shared) workloads and custom studies that
    /// go beyond the 24 SPEC2000-like presets.
    ///
    /// Accepts anything that borrows as a profile (`AppProfile`,
    /// `Arc<AppProfile>`, `&AppProfile`), so replicated workloads can
    /// share one profile allocation across cores.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the profile count does not match the
    /// machine's core count or the organization cannot be built.
    pub fn with_profiles<P: Borrow<tracegen::AppProfile>>(
        cfg: &MachineConfig,
        org: Organization,
        profiles: &[P],
        forwards: &[u64],
        seed: u64,
    ) -> Result<Self> {
        Cmp::with_profiles_and_sink(cfg, org, profiles, forwards, seed, NullSink)
    }
}

impl<S: Sink> Cmp<S> {
    /// Builds a chip running `mix`, cloning `sink` into every core and
    /// the last-level organization so one recorder observes the whole
    /// chip.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the mix does not match the machine's
    /// core count or the organization cannot be built.
    pub fn new_with_sink(
        cfg: &MachineConfig,
        org: Organization,
        mix: &Mix,
        seed: u64,
        sink: S,
    ) -> Result<Self> {
        let profiles: Vec<tracegen::AppProfile> =
            mix.apps.iter().map(|a| a.profile().clone()).collect();
        Cmp::with_profiles_and_sink(cfg, org, &profiles, &mix.forwards, seed, sink)
    }

    /// Builds a chip from arbitrary profiles with a telemetry sink (see
    /// [`Cmp::with_profiles`] for the workload semantics).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the profile count does not match the
    /// machine's core count or the organization cannot be built.
    pub fn with_profiles_and_sink<P: Borrow<tracegen::AppProfile>>(
        cfg: &MachineConfig,
        org: Organization,
        profiles: &[P],
        forwards: &[u64],
        seed: u64,
        sink: S,
    ) -> Result<Self> {
        if profiles.len() != cfg.cores || forwards.len() != cfg.cores {
            return Err(ConfigError::new(format!(
                "workload has {} applications / {} forwards but the machine has {} cores",
                profiles.len(),
                forwards.len(),
                cfg.cores
            )));
        }
        let mut root = SimRng::seed_from(seed);
        let cores: Vec<Core<S>> = profiles
            .iter()
            .zip(forwards)
            .enumerate()
            .map(|(i, (profile, forward))| {
                let mut gen = TraceGenerator::new(profile.borrow(), root.fork(i as u64));
                gen.fast_forward(*forward);
                // Length was checked above, so the index form is in range.
                let id = CoreId::from_index(i as u8);
                Core::with_sink(id, cfg, gen, sink.clone())
            })
            .collect();
        let idle_wake = vec![0; cores.len()];
        let ts = TsAccum::for_cores(cores.len());
        let l3 = L3System::build_with_sink(org, cfg, sink.clone())?;
        Ok(Cmp {
            cores,
            l3,
            now: Cycle::ZERO,
            window_start: Cycle::ZERO,
            cycle_skip: true,
            idle_wake,
            time_sample: None,
            ts,
            sink,
        })
    }

    /// Enables or disables event-driven cycle skipping in
    /// [`run`](Self::run). Disabled, `run` steps every cycle — the
    /// reference semantics the skipping path is differentially tested
    /// against; results are bit-identical either way.
    pub fn set_cycle_skip(&mut self, enabled: bool) {
        self.cycle_skip = enabled;
    }

    /// Whether [`run`](Self::run) uses the event-driven fast path.
    pub fn cycle_skip(&self) -> bool {
        self.cycle_skip
    }

    /// Enables or disables the exact core-side hit fast path (fused
    /// TLB+L1 probe, memo-served lookups, slab-decoded traces, issue-scan
    /// hint) on every core. Results are bit-identical either way; this is
    /// the `--no-fast-path` escape hatch the differential CI job flips.
    pub fn set_fast_path(&mut self, enabled: bool) {
        for core in &mut self.cores {
            core.set_fast_path(enabled);
        }
    }

    /// Chip-wide fast-path effectiveness counters (perf attribution side
    /// channel; never part of results, traces or snapshots).
    pub fn fast_path_stats(&self) -> cpusim::FastPathStats {
        let mut total = cpusim::FastPathStats::default();
        for core in &self.cores {
            total.absorb(core.fast_path_stats());
        }
        total
    }

    /// Configures SMARTS-style time sampling: [`run`](Self::run)
    /// alternates `detail` cycle-accurate cycles with `gap` functionally
    /// warmed cycles. A zero `gap` turns sampling off — the run is then
    /// byte-identical to an unconfigured chip, and
    /// [`snapshot`](Self::snapshot) carries no
    /// [`TimeSamplingReport`]. Callers validate `detail > 0`; a zero
    /// detail with a nonzero gap would measure nothing.
    pub fn set_time_sample(&mut self, detail: u64, gap: u64) {
        debug_assert!(gap == 0 || detail > 0, "time sampling needs detail > 0");
        self.time_sample = if gap == 0 { None } else { Some((detail, gap)) };
    }

    /// The active `(detail, gap)` time-sampling configuration, if any.
    pub fn time_sample(&self) -> Option<(u64, u64)> {
        self.time_sample
    }

    /// The current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The last-level system (for organization-specific inspection).
    pub fn l3(&self) -> &L3System<S> {
        &self.l3
    }

    /// Advances the whole chip by one cycle.
    pub fn step(&mut self) {
        for core in &mut self.cores {
            core.step(self.now, &mut self.l3);
        }
        self.now += 1;
    }

    /// Runs for `cycles` cycles.
    ///
    /// With cycle skipping enabled (the default), the loop is
    /// event-driven: whenever every core proves its next step a no-op
    /// (see [`Core::idle_until`]), the clock jumps straight to the
    /// earliest pending event — an MSHR/memory-fill completion, an issued
    /// ROB head finishing, a dependency becoming ready, or fetch
    /// resuming — instead of stepping the stalled window one cycle at a
    /// time. Only the clock moves across a skipped window; no state
    /// changes and no telemetry is emitted, so statistics (which derive
    /// from `now` and committed counts), 2000-miss re-evaluation
    /// boundaries (miss-driven, and misses only happen on stepped
    /// cycles) and traces are identical to the stepping loop.
    /// With time sampling configured (see
    /// [`set_time_sample`](Self::set_time_sample)), the run instead
    /// alternates detailed windows — this same event-driven path — with
    /// functional-warming gaps, estimating IPC from the detailed windows
    /// only. The window schedule restarts at every `run` call.
    pub fn run(&mut self, cycles: u64) {
        match self.time_sample {
            Some((detail, gap)) => self.run_time_sampled(cycles, detail, gap),
            None => self.run_detailed(cycles),
        }
    }

    /// The cycle-accurate run loop (see [`run`](Self::run) for the
    /// event-skip semantics).
    fn run_detailed(&mut self, cycles: u64) {
        let target = self.now + cycles;
        if !self.cycle_skip {
            while self.now < target {
                self.step();
            }
            return;
        }
        // State mutations outside `run` (warming, stat resets) are not
        // tracked by the memo, so start from a clean slate.
        self.idle_wake.fill(0);
        while self.now < target {
            match self.idle_horizon() {
                // Every wake candidate is strictly after `now`, so the
                // jump always makes progress; an empty horizon
                // (`u64::MAX`, a fully drained chip) clamps to `target`
                // exactly like the stepping loop's no-op spin.
                Some(wake) => self.now = wake.min(target),
                None => self.step(),
            }
        }
    }

    /// The SMARTS window scheduler: run `detail` cycles in full detail,
    /// measure the window, functionally retire whatever is still in
    /// flight, warm `gap` cycles with retirement credit-paced at each
    /// core's just-measured window IPC, repeat. Pacing the gap at the
    /// detailed model's own instruction density — rather than a flat
    /// one instruction per core per cycle like [`warm`](Self::warm) —
    /// keeps functional time honest (a stall-heavy core's stream does
    /// not race ahead of where detailed simulation would have taken it)
    /// and keeps a gap cycle cheaper than the detailed cycle it
    /// replaces. Cache, TLB, predictor, shadow-tag and quota state stay
    /// warm through the gaps — Algorithm 1 keeps re-evaluating on the
    /// real miss stream (adaptation is *not* frozen, unlike
    /// [`warm`](Self::warm)) — while IPC is estimated from the detailed
    /// windows alone.
    fn run_time_sampled(&mut self, cycles: u64, detail: u64, gap: u64) {
        let target = self.now + cycles;
        while self.now < target {
            let span = detail.min(target.since(self.now));
            for (base, core) in self.ts.window_base.iter_mut().zip(&self.cores) {
                *base = core.committed();
            }
            self.run_detailed(span);
            self.note_detailed_window(span, span == detail);
            if self.now >= target {
                break;
            }
            self.emit_window_boundary(true);
            self.drain_pipelines();
            let g = gap.min(target.since(self.now));
            self.run_functional_paced(g);
            self.ts.functional_cycles += g;
            self.emit_window_boundary(false);
        }
    }

    /// Folds one finished detailed window into the sampling accumulators.
    /// Partial (tail) windows feed the pooled IPC estimate; only
    /// full-length windows enter the paired-measurement error bound.
    fn note_detailed_window(&mut self, span: u64, full: bool) {
        self.ts.detailed_cycles += span;
        for (i, core) in self.cores.iter().enumerate() {
            let delta = core.committed() - self.ts.window_base[i];
            self.ts.core_committed[i] += delta;
            self.ts.window_ipc[i] = if span == 0 {
                0.0
            } else {
                delta as f64 / span as f64
            };
        }
        if span > 0 {
            // Re-arm gap pacing from this window: `max(delta, 1)`
            // instructions per `span` cycles per core (the floor keeps a
            // fully stalled window from freezing the stream entirely).
            for (i, core) in self.cores.iter().enumerate() {
                let delta = core.committed() - self.ts.window_base[i];
                self.ts.pace_num[i] = delta.max(1);
            }
            self.ts.pace_den = span;
        }
        if full && span > 0 {
            let h = harmonic_mean(&self.ts.window_ipc);
            self.ts.windows += 1;
            self.ts.sum += h;
            self.ts.sumsq += h * h;
        }
    }

    /// Functionally retires all in-flight pipeline state on every core at
    /// a window boundary (see [`Core::drain_pipeline`]); afterwards the
    /// whole chip is quiescent.
    fn drain_pipelines(&mut self) {
        for i in 0..self.cores.len() {
            self.cores[i].drain_pipeline(self.now, &mut self.l3);
        }
        debug_assert!(self.cores.iter().all(cpusim::core::Core::is_quiescent));
    }

    fn emit_window_boundary(&mut self, functional: bool) {
        if S::ENABLED {
            self.sink
                .emit(self.now, Event::TimeSampleWindow { functional });
        }
    }

    /// The chip-level event horizon: `Some(wake)` when **all** cores are
    /// provably idle at `self.now` (with `wake` the earliest cycle any of
    /// them can act), `None` when at least one core may do work this
    /// cycle. Cores only interact through the last-level cache and the
    /// memory bus, and both are passive (their state changes only on
    /// core-initiated accesses), so per-core idleness composes to
    /// chip-level idleness.
    ///
    /// Idleness proofs are memoized in `idle_wake`: a stalled core is
    /// re-proved once per stall window, not once per cycle, because a
    /// still-valid proof (`idle_wake[i] > now`) cannot be invalidated by
    /// anything but that core's own non-idle step.
    fn idle_horizon(&mut self) -> Option<Cycle> {
        let now = self.now.raw();
        let mut wake = u64::MAX;
        for (core, memo) in self.cores.iter().zip(&mut self.idle_wake) {
            let w = if *memo > now {
                *memo
            } else {
                match core.idle_until(self.now) {
                    Some(t) => {
                        *memo = t.raw();
                        t.raw()
                    }
                    None => {
                        *memo = 0;
                        return None;
                    }
                }
            };
            wake = wake.min(w);
        }
        Some(Cycle::new(wake))
    }

    /// Audits the last-level structure right now (see
    /// [`simcore::invariant::Invariant`]); empty means consistent.
    pub fn audit(&self) -> Vec<Violation> {
        self.l3.audit()
    }

    /// Runs for `cycles` cycles, auditing the last-level structure after
    /// every step and stopping at the first inconsistency.
    ///
    /// This is the engine behind `nuca-sim --paranoid`: per-step auditing
    /// is orders of magnitude slower than [`run`](Self::run), but it
    /// pinpoints the exact cycle at which a structural invariant broke.
    ///
    /// # Errors
    ///
    /// Returns the cycle of the first failing step together with the
    /// violations found there.
    pub fn run_paranoid(
        &mut self,
        cycles: u64,
    ) -> std::result::Result<(), (Cycle, Vec<Violation>)> {
        for _ in 0..cycles {
            self.step();
            let violations = self.l3.audit();
            if !violations.is_empty() {
                return Err((self.now, violations));
            }
        }
        Ok(())
    }

    /// Warms the chip *functionally*: each core executes
    /// `instructions_per_core` instructions with full cache/TLB/predictor
    /// state updates but no pipeline timing (one instruction per core per
    /// cycle of pacing, so the shared bus sees a realistic request
    /// spacing). Mirrors the paper's long fast-forward before measuring.
    ///
    /// Each core's L3-bound requests are collected into an [`L3Batch`]
    /// and drained through the organization in one pass per pacing
    /// iteration instead of interleaving organization calls with
    /// private-hierarchy work. The drain is bit-identical to the
    /// one-at-a-time loop kept as [`warm_reference`](Self::warm_reference)
    /// because (a) the warm path discards L3 timing — only the outcome
    /// *source* feeds per-core counters — so deferring an access never
    /// changes the issuing core's subsequent behavior (L1/L2/TLB state is
    /// core-private and independent of L3 outcomes); (b) the batch is
    /// drained in exact push order — core-major, each access followed by
    /// its dependent writeback — which is the order the reference loop
    /// issues them, so the organization and memory channel see the same
    /// request sequence; and (c) every request in one batch carries the
    /// same `now`. Same-set conflicts therefore cannot be reordered: two
    /// requests to one set drain in the same relative order the reference
    /// path would have issued them.
    pub fn warm(&mut self, instructions_per_core: u64) {
        // Equal instruction pacing distorts the per-wall-clock estimator
        // counters, so quota adaptation pauses during functional warm-up;
        // the timed phase adapts from the initial 75 %/25 % partitioning
        // exactly as the paper's runs do.
        self.l3.set_adaptation_frozen(true);
        self.run_functional(instructions_per_core);
        self.l3.set_adaptation_frozen(false);
    }

    /// The functional-warming engine shared by [`warm`](Self::warm) and
    /// the time-sampling gaps: every core retires one instruction per
    /// cycle through the batched warm path (full cache/TLB/predictor/L3
    /// state updates, no pipeline timing), and the memory channel is
    /// quiesced at the end so a following detailed window starts on an
    /// uncongested bus. Unlike [`warm`](Self::warm) this does *not*
    /// freeze quota adaptation — time-sampling gaps keep Algorithm 1
    /// firing on the live miss stream.
    pub fn run_functional(&mut self, cycles: u64) {
        let mut batch = L3Batch::new();
        for _ in 0..cycles {
            for i in 0..self.cores.len() {
                if batch.remaining() < OPS_PER_WARM_OP {
                    self.drain_warm_batch(&mut batch);
                }
                self.cores[i].warm_op_batched(self.now, &mut batch);
            }
            self.drain_warm_batch(&mut batch);
            self.now += 1;
        }
        self.l3.quiesce(self.now);
    }

    /// The time-sampling gap engine: [`run_functional`](Self::run_functional)
    /// with retirement credit-paced at the last detailed window's
    /// measured per-core IPC (`TsAccum::pace_num / pace_den`, exact
    /// integers via Bresenham accumulation). Each cycle, core `i` earns
    /// `pace_num[i]` credits and retires one instruction per `pace_den`
    /// accumulated — so over the whole gap its stream advances by
    /// `gap × window_ipc` instructions, the count the detailed model
    /// would have consumed in that time, instead of the flat one per
    /// cycle the instruction-budgeted warm phase uses. Deterministic:
    /// the pace is a pure function of the preceding window, and the
    /// credit carry lives in the stats window (`reset_stats` clears it).
    fn run_functional_paced(&mut self, cycles: u64) {
        debug_assert!(self.ts.pace_den > 0, "gap must follow a detailed window");
        let den = self.ts.pace_den.max(1);
        let mut batch = L3Batch::new();
        for _ in 0..cycles {
            for i in 0..self.cores.len() {
                self.ts.pace_acc[i] += self.ts.pace_num[i];
                while self.ts.pace_acc[i] >= den {
                    self.ts.pace_acc[i] -= den;
                    if batch.remaining() < OPS_PER_WARM_OP {
                        self.drain_warm_batch(&mut batch);
                    }
                    self.cores[i].warm_op_batched(self.now, &mut batch);
                }
            }
            self.drain_warm_batch(&mut batch);
            self.now += 1;
        }
        self.l3.quiesce(self.now);
    }

    /// The one-at-a-time reference warm loop the batched
    /// [`warm`](Self::warm) is differentially tested (and benchmarked)
    /// against. Bit-identical results by construction — see `warm` for
    /// the argument.
    pub fn warm_reference(&mut self, instructions_per_core: u64) {
        self.l3.set_adaptation_frozen(true);
        for _ in 0..instructions_per_core {
            for core in &mut self.cores {
                core.warm_op(self.now, &mut self.l3);
            }
            self.now += 1;
        }
        self.l3.quiesce(self.now);
        self.l3.set_adaptation_frozen(false);
    }

    /// Walks the queued warm requests through the organization in push
    /// order and routes each access outcome back to its issuing core.
    fn drain_warm_batch(&mut self, batch: &mut L3Batch) {
        for op in batch.ops() {
            match *op {
                L3Op::Access { core, addr, write } => {
                    let out = self.l3.access(core, addr, write, self.now);
                    self.cores[core.index()].note_l3_outcome(out.source);
                }
                L3Op::Writeback { core, addr } => {
                    self.l3.writeback(core, addr, self.now);
                }
            }
        }
        batch.clear();
    }

    /// Marks the warm-up boundary: all statistics restart here while
    /// architectural state (cache contents, quotas, predictors) carries
    /// over.
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.reset_stats(self.now);
        }
        self.l3.reset_stats();
        self.window_start = self.now;
        self.ts.reset();
    }

    /// Serializes the whole chip's warm state — clock, every core's
    /// learned state and the last-level organization — into a versioned,
    /// checksummed snapshot (see [`simcore::snapshot`]). Valid only at a
    /// quiescent point (right after [`warm`](Self::warm)): core pipeline
    /// structures are empty there and are not encoded.
    ///
    /// Restoring with [`load_chip_state`](Self::load_chip_state) into a
    /// freshly built chip of the same structural configuration and then
    /// running is bit-identical to running the original chip — the
    /// campaign engine's snapshot/fork layer is built on this guarantee.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when any core has
    /// in-flight pipeline state.
    pub fn save_chip_state(
        &self,
    ) -> std::result::Result<Vec<u8>, simcore::snapshot::SnapshotError> {
        let mut w = simcore::snapshot::SnapshotWriter::new();
        w.put_usize(self.cores.len());
        w.put_cycle(self.now);
        w.put_cycle(self.window_start);
        for core in &self.cores {
            core.save_state(&mut w)?;
        }
        self.l3.save_state(&mut w);
        Ok(w.finish())
    }

    /// Restores a snapshot written by
    /// [`save_chip_state`](Self::save_chip_state) into this freshly built
    /// chip. The chip must share the snapshot's *structural*
    /// configuration (cores, cache geometries, organization variant,
    /// workload); latencies may differ — they are reconstructed from this
    /// chip's own configuration, which is what lets one warm snapshot
    /// fork across the latency axes of a sweep.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError`] on checksum/version failure,
    /// structural mismatch, or trailing bytes.
    pub fn load_chip_state(
        &mut self,
        bytes: &[u8],
    ) -> std::result::Result<(), simcore::snapshot::SnapshotError> {
        let mut r = simcore::snapshot::SnapshotReader::open(bytes)?;
        if r.get_usize()? != self.cores.len() {
            return Err(simcore::snapshot::SnapshotError::Mismatch("core count"));
        }
        self.now = r.get_cycle()?;
        self.window_start = r.get_cycle()?;
        for core in &mut self.cores {
            core.load_state(&mut r)?;
        }
        self.l3.load_state(&mut r)?;
        r.finish()
    }

    /// Snapshot of the current measurement window.
    ///
    /// On a time-sampled run, the `ipc`/`hmean_ipc`/`amean_ipc` estimates
    /// come from the detailed windows only (the SMARTS estimator); the
    /// raw `per_core` counters stay exact over the whole window,
    /// functional retires included.
    pub fn snapshot(&self) -> CmpResult {
        let per_core: Vec<(&'static str, CoreStats)> = self
            .cores
            .iter()
            .map(|c| (c.app_name(), c.stats(self.now)))
            .collect();
        let mut ipc: Vec<f64> = per_core.iter().map(|(_, s)| s.ipc()).collect();
        if self.time_sample.is_some() && self.ts.detailed_cycles > 0 {
            for (v, &committed) in ipc.iter_mut().zip(&self.ts.core_committed) {
                *v = committed as f64 / self.ts.detailed_cycles as f64;
            }
        }
        CmpResult {
            hmean_ipc: harmonic_mean(&ipc),
            amean_ipc: arithmetic_mean(&ipc),
            memory: self.l3.memory_stats(),
            quotas: self.l3.as_adaptive().map(|a| a.quotas()),
            sampling: self.l3.sampling_report(),
            time_sampling: self.time_sampling_report(),
            per_core,
            ipc,
        }
    }

    /// The SMARTS accuracy summary of the current window, when time
    /// sampling is configured.
    pub fn time_sampling_report(&self) -> Option<TimeSamplingReport> {
        let (detail, gap) = self.time_sample?;
        let n = self.ts.windows;
        let mean = if n > 0 { self.ts.sum / n as f64 } else { 0.0 };
        let se = if n > 1 {
            let nf = n as f64;
            let var = ((self.ts.sumsq - self.ts.sum * self.ts.sum / nf) / (nf - 1.0)).max(0.0);
            (var / nf).sqrt()
        } else {
            0.0
        };
        Some(TimeSamplingReport {
            detail,
            gap,
            windows: n,
            detailed_cycles: self.ts.detailed_cycles,
            functional_cycles: self.ts.functional_cycles,
            mean_window_hmean_ipc: mean,
            hmean_ipc_std_error: se,
            relative_ci95: if mean > 0.0 { 1.96 * se / mean } else { 0.0 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::spec::SpecApp;
    use tracegen::workload::WorkloadPool;

    fn quick_mix() -> Mix {
        Mix {
            apps: vec![SpecApp::Gzip, SpecApp::Mcf, SpecApp::Crafty, SpecApp::Eon],
            forwards: vec![600_000_000; 4],
        }
    }

    #[test]
    fn four_cores_all_make_progress() {
        let cfg = MachineConfig::baseline();
        let mut cmp = Cmp::new(&cfg, Organization::Private, &quick_mix(), 1).unwrap();
        cmp.run(30_000);
        let r = cmp.snapshot();
        assert_eq!(r.per_core.len(), 4);
        for (app, s) in &r.per_core {
            assert!(s.committed > 0, "{app} committed nothing");
        }
        assert!(r.hmean_ipc > 0.0 && r.hmean_ipc <= r.amean_ipc + 1e-9);
    }

    #[test]
    fn mix_size_is_validated() {
        let cfg = MachineConfig::baseline();
        let bad = Mix {
            apps: vec![SpecApp::Gzip],
            forwards: vec![1],
        };
        assert!(Cmp::new(&cfg, Organization::Private, &bad, 1).is_err());
    }

    #[test]
    fn warmup_reset_starts_clean_window() {
        let cfg = MachineConfig::baseline();
        let mut cmp = Cmp::new(&cfg, Organization::Shared, &quick_mix(), 2).unwrap();
        cmp.run(20_000);
        cmp.reset_stats();
        let r0 = cmp.snapshot();
        assert_eq!(r0.per_core[0].1.committed, 0);
        cmp.run(10_000);
        let r = cmp.snapshot();
        assert_eq!(r.per_core[0].1.cycles, 10_000);
        assert!(r.per_core[0].1.committed > 0);
    }

    #[test]
    fn adaptive_snapshot_exposes_quotas() {
        let cfg = MachineConfig::baseline();
        let mut cmp = Cmp::new(&cfg, Organization::adaptive(), &quick_mix(), 3).unwrap();
        cmp.run(5_000);
        let r = cmp.snapshot();
        let quotas = r.quotas.expect("adaptive orgs expose quotas");
        assert_eq!(quotas.iter().sum::<u32>(), 16);
    }

    #[test]
    fn paranoid_run_reports_no_violations() {
        let cfg = MachineConfig::baseline();
        for org in [
            Organization::Private,
            Organization::Shared,
            Organization::adaptive(),
            Organization::Cooperative { seed: 7 },
        ] {
            let mut cmp = Cmp::new(&cfg, org, &quick_mix(), 4).unwrap();
            cmp.run_paranoid(2_000)
                .unwrap_or_else(|(cycle, vs)| panic!("violations at cycle {cycle:?}: {vs:?}"));
            assert!(cmp.audit().is_empty());
        }
    }

    #[test]
    fn deterministic_across_reruns() {
        let cfg = MachineConfig::baseline();
        let run = || {
            let mix = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), 4, 1, 9)
                .pop()
                .unwrap();
            let mut cmp = Cmp::new(&cfg, Organization::adaptive(), &mix, 9).unwrap();
            cmp.run(15_000);
            cmp.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a.per_core, b.per_core);
    }

    #[test]
    fn batched_warm_matches_one_at_a_time() {
        // The batched warm drain must evolve core counters, organization
        // state and the memory channel bit-identically to the reference
        // one-at-a-time loop, for every organization.
        let cfg = MachineConfig::baseline();
        for org in [
            Organization::Private,
            Organization::Shared,
            Organization::adaptive(),
            Organization::Cooperative { seed: 7 },
        ] {
            let run = |batched: bool| {
                let mut cmp = Cmp::new(&cfg, org, &quick_mix(), 13).unwrap();
                if batched {
                    cmp.warm(8_000);
                } else {
                    cmp.warm_reference(8_000);
                }
                // Run a timed window on top so divergence in warmed
                // architectural state (not just counters) is caught too.
                cmp.run(6_000);
                cmp.snapshot()
            };
            let batched = run(true);
            let reference = run(false);
            assert_eq!(batched, reference, "warm diverged under {}", org.label());
        }
    }

    #[test]
    fn cycle_skip_matches_stepping_loop_exactly() {
        // The event-driven fast path must be *bit-identical* to the
        // reference stepping loop: same committed counts, same hit/miss
        // stats, same quotas, for every organization.
        let cfg = MachineConfig::baseline();
        for org in [
            Organization::Private,
            Organization::Shared,
            Organization::adaptive(),
            Organization::Cooperative { seed: 7 },
        ] {
            let run = |skip: bool| {
                let mut cmp = Cmp::new(&cfg, org, &quick_mix(), 11).unwrap();
                cmp.set_cycle_skip(skip);
                cmp.warm(5_000);
                cmp.run(8_000);
                cmp.reset_stats();
                cmp.run(12_000);
                cmp.snapshot()
            };
            let fast = run(true);
            let reference = run(false);
            assert_eq!(fast, reference, "skip diverged under {}", org.label());
        }
    }

    #[test]
    fn hit_fast_path_matches_reference_walk_exactly() {
        // The core-side hit fast path (fused TLB+L1 probe, memos, slab
        // decode, issue hint) must be bit-identical to the reference
        // walks across warm + detailed + reset + detailed, for every
        // organization, including the chip snapshot encoding.
        let cfg = MachineConfig::baseline();
        for org in [
            Organization::Private,
            Organization::Shared,
            Organization::adaptive(),
            Organization::Cooperative { seed: 7 },
        ] {
            let run = |fast: bool| {
                let mut cmp = Cmp::new(&cfg, org, &quick_mix(), 19).unwrap();
                cmp.set_fast_path(fast);
                cmp.warm(5_000);
                cmp.run(8_000);
                cmp.reset_stats();
                cmp.run(12_000);
                (cmp.snapshot(), cmp.fast_path_stats())
            };
            let (fast, counters) = run(true);
            let (reference, off_counters) = run(false);
            assert_eq!(fast, reference, "fast path diverged under {}", org.label());
            assert!(
                counters.data_fast_hits > 0,
                "fast path never fired under {}",
                org.label()
            );
            assert_eq!(
                off_counters.data_fast_hits + off_counters.inst_fast_hits,
                0,
                "disabled fast path fired under {}",
                org.label()
            );
        }
    }

    #[test]
    fn snapshot_restore_run_matches_run_through() {
        // The campaign engine's core guarantee: warm, snapshot, restore
        // into a fresh chip, run — bit-identical to warming and running
        // straight through, for every organization (and the sampled
        // wrapper).
        let mut sampled_cfg = MachineConfig::baseline();
        sampled_cfg.l3.sample_shift = Some(2);
        let cases = [
            (MachineConfig::baseline(), Organization::Private),
            (MachineConfig::baseline(), Organization::Shared),
            (MachineConfig::baseline(), Organization::adaptive()),
            (
                MachineConfig::baseline(),
                Organization::Cooperative { seed: 7 },
            ),
            (sampled_cfg, Organization::adaptive()),
        ];
        for (cfg, org) in cases {
            let mix = quick_mix();
            let mut original = Cmp::new(&cfg, org, &mix, 21).unwrap();
            original.warm(6_000);
            let bytes = original.save_chip_state().expect("quiescent after warm");

            let mut restored = Cmp::new(&cfg, org, &mix, 21).unwrap();
            restored.load_chip_state(&bytes).expect("restore");

            let finish = |cmp: &mut Cmp| {
                cmp.run(4_000);
                cmp.reset_stats();
                cmp.run(8_000);
                cmp.snapshot()
            };
            let through = finish(&mut original);
            let forked = finish(&mut restored);
            assert_eq!(through, forked, "fork diverged under {}", org.label());
        }
    }

    #[test]
    fn snapshot_is_latency_independent() {
        // Functional warm-up discards timing, so a snapshot taken under
        // one set of latencies restores into a machine with different
        // ones and runs bit-identically to warming that machine directly
        // — the property that lets one warm snapshot fork across a
        // sweep's latency axes. Every latency axis the campaign spec
        // exposes is varied at once: memory first-chunk, L3 hit (both
        // organizations' banks and the neighbor hop) and L2 hit.
        let base = MachineConfig::baseline();
        let mut slow = MachineConfig::baseline();
        slow.memory.first_chunk_private = 330;
        slow.memory.first_chunk_shared = 338;
        slow.l2 = slow.l2.with_latency(11);
        slow.l3.private = slow.l3.private.with_latency(16);
        slow.l3.shared = slow.l3.shared.with_latency(24);
        slow.l3.neighbor_latency = 24;
        let mix = quick_mix();
        for org in [Organization::Shared, Organization::adaptive()] {
            let mut warm_base = Cmp::new(&base, org, &mix, 23).unwrap();
            warm_base.warm(6_000);
            let bytes = warm_base.save_chip_state().unwrap();

            let mut warm_slow = Cmp::new(&slow, org, &mix, 23).unwrap();
            warm_slow.warm(6_000);

            let mut forked = Cmp::new(&slow, org, &mix, 23).unwrap();
            forked.load_chip_state(&bytes).unwrap();

            let finish = |cmp: &mut Cmp| {
                cmp.run(4_000);
                cmp.reset_stats();
                cmp.run(8_000);
                cmp.snapshot()
            };
            assert_eq!(
                finish(&mut warm_slow),
                finish(&mut forked),
                "latency fork diverged under {}",
                org.label()
            );
        }
    }

    #[test]
    fn snapshot_rejects_wrong_organization_and_corruption() {
        let cfg = MachineConfig::baseline();
        let mix = quick_mix();
        let mut cmp = Cmp::new(&cfg, Organization::Shared, &mix, 5).unwrap();
        cmp.warm(1_000);
        let bytes = cmp.save_chip_state().unwrap();

        let mut wrong = Cmp::new(&cfg, Organization::Private, &mix, 5).unwrap();
        assert!(matches!(
            wrong.load_chip_state(&bytes),
            Err(simcore::snapshot::SnapshotError::Mismatch(_))
        ));

        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        let mut fresh = Cmp::new(&cfg, Organization::Shared, &mix, 5).unwrap();
        assert!(matches!(
            fresh.load_chip_state(&corrupt),
            Err(simcore::snapshot::SnapshotError::BadChecksum { .. })
        ));
    }

    #[test]
    fn snapshot_requires_quiescence() {
        let cfg = MachineConfig::baseline();
        let mut cmp = Cmp::new(&cfg, Organization::Shared, &quick_mix(), 5).unwrap();
        cmp.run(2_000); // timed run leaves in-flight pipeline state
        assert!(matches!(
            cmp.save_chip_state(),
            Err(simcore::snapshot::SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn zero_gap_time_sampling_is_identical_to_detailed() {
        // `--time-sample d:0` must be byte-identical to an unsampled run:
        // the scheduler is bypassed entirely and no report is attached.
        let cfg = MachineConfig::baseline();
        for org in [
            Organization::Private,
            Organization::Shared,
            Organization::adaptive(),
            Organization::Cooperative { seed: 7 },
        ] {
            let run = |sampled: bool| {
                let mut cmp = Cmp::new(&cfg, org, &quick_mix(), 31).unwrap();
                if sampled {
                    cmp.set_time_sample(5_000, 0);
                }
                cmp.warm(5_000);
                cmp.run(8_000);
                cmp.reset_stats();
                cmp.run(12_000);
                cmp.snapshot()
            };
            let sampled = run(true);
            let plain = run(false);
            assert_eq!(sampled, plain, "0-gap diverged under {}", org.label());
            assert!(sampled.time_sampling.is_none());
        }
    }

    #[test]
    fn time_sampled_run_reports_confidence_bounds() {
        let cfg = MachineConfig::baseline();
        let mut cmp = Cmp::new(&cfg, Organization::adaptive(), &quick_mix(), 33).unwrap();
        cmp.set_time_sample(2_000, 6_000);
        cmp.warm(20_000);
        cmp.run(16_000);
        cmp.reset_stats();
        cmp.run(40_000);
        let r = cmp.snapshot();
        let ts = r.time_sampling.expect("sampled run carries a report");
        assert_eq!(ts.detail, 2_000);
        assert_eq!(ts.gap, 6_000);
        // 40_000 cycles = 5 full detailed windows (one per 8_000-cycle
        // period) and their gaps.
        assert_eq!(ts.windows, 5);
        assert_eq!(ts.detailed_cycles + ts.functional_cycles, 40_000);
        assert_eq!(ts.detailed_cycles, 5 * 2_000);
        assert!(ts.mean_window_hmean_ipc > 0.0);
        assert!(ts.hmean_ipc_std_error.is_finite());
        assert!(ts.relative_ci95 >= 0.0);
        // The headline estimate comes from detailed cycles only and must
        // be a plausible IPC.
        assert!(r.hmean_ipc > 0.0 && r.hmean_ipc <= 4.0);
        // Raw counters keep counting functional retires: committed over
        // the whole window exceeds what the detailed windows alone saw.
        let committed: u64 = r.per_core.iter().map(|(_, s)| s.committed).sum();
        assert!(committed as f64 > r.hmean_ipc * ts.detailed_cycles as f64);
    }

    #[test]
    fn time_sampled_gaps_keep_quotas_adapting_and_audit_clean() {
        // Unlike warm-up, the functional gaps do NOT freeze Algorithm 1:
        // re-evaluation epochs keep closing on the gap miss stream, and
        // the structure stays consistent across window boundaries. The
        // control run spends only the schedule's detailed-cycle budget
        // (no gaps), so any extra epochs in the sampled run were closed
        // by misses the credit-paced gaps fed to the sharing engine.
        let cfg = MachineConfig::baseline();
        let run = |cycles: u64, ts: Option<(u64, u64)>| {
            let mut cmp = Cmp::new(&cfg, Organization::adaptive(), &quick_mix(), 35).unwrap();
            if let Some((d, g)) = ts {
                cmp.set_time_sample(d, g);
            }
            cmp.warm(10_000);
            cmp.run(cycles);
            assert!(cmp.audit().is_empty());
            let epochs = cmp
                .l3()
                .as_adaptive()
                .expect("adaptive org")
                .engine()
                .epochs();
            (cmp.snapshot(), epochs)
        };
        // 300_000 cycles on a 2_000:8_000 schedule = 60_000 detailed.
        let (sampled, sampled_epochs) = run(300_000, Some((2_000, 8_000)));
        let (budget, budget_epochs) = run(60_000, None);
        assert_eq!(
            sampled.quotas.expect("adaptive org").iter().sum::<u32>(),
            16
        );
        assert!(
            sampled_epochs > budget_epochs,
            "gap misses must keep closing re-evaluation epochs \
             (sampled {sampled_epochs} vs detailed-budget-only {budget_epochs})"
        );
        assert!(budget.hmean_ipc > 0.0);
    }

    #[test]
    fn time_sampled_run_is_deterministic() {
        let cfg = MachineConfig::baseline();
        let run = || {
            let mut cmp = Cmp::new(&cfg, Organization::adaptive(), &quick_mix(), 37).unwrap();
            cmp.set_time_sample(1_500, 4_500);
            cmp.warm(8_000);
            cmp.run(10_000);
            cmp.reset_stats();
            cmp.run(30_000);
            cmp.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn functional_gap_engine_matches_warm_modulo_adaptation_freeze() {
        // For organizations with no adaptation (freeze is a no-op),
        // `run_functional` IS the warm engine: identical chip state,
        // pinned bit-for-bit through the snapshot encoding.
        let cfg = MachineConfig::baseline();
        for org in [Organization::Private, Organization::Shared] {
            let mix = quick_mix();
            let mut warmed = Cmp::new(&cfg, org, &mix, 39).unwrap();
            warmed.warm(12_000);
            let mut functional = Cmp::new(&cfg, org, &mix, 39).unwrap();
            functional.run_functional(12_000);
            assert_eq!(
                warmed.save_chip_state().unwrap(),
                functional.save_chip_state().unwrap(),
                "gap engine diverged from warm under {}",
                org.label()
            );
        }
    }

    #[test]
    fn different_organizations_share_the_same_traces() {
        // Committed-instruction counts differ, but the applications and
        // their address streams are identical across organizations (same
        // seed), so the comparison is apples-to-apples.
        let cfg = MachineConfig::baseline();
        let mix = quick_mix();
        let mut a = Cmp::new(&cfg, Organization::Private, &mix, 5).unwrap();
        let mut b = Cmp::new(&cfg, Organization::Shared, &mix, 5).unwrap();
        a.run(10_000);
        b.run(10_000);
        let ra = a.snapshot();
        let rb = b.snapshot();
        for i in 0..4 {
            assert_eq!(ra.per_core[i].0, rb.per_core[i].0);
        }
    }
}
