//! The four-core chip multiprocessor: cores, last-level organization and
//! the shared memory channel bound together.
//!
//! Mirrors the simulated architecture of Figure 1: four independent
//! out-of-order cores with private L1/L2 hierarchies, a last-level cache
//! managed by one of the [`Organization`]s, and a shared off-chip bus
//! with congestion. The methodology of Section 3 (random fast-forward,
//! warm-up, fixed measured cycles) is driven through
//! [`Cmp::run`]/[`Cmp::reset_stats`].

use std::borrow::Borrow;

use cpusim::core::{Core, CoreStats};
use cpusim::l3iface::{L3Batch, L3Op, LastLevel, OPS_PER_WARM_OP};
use memsim::MemoryStats;
use simcore::config::MachineConfig;
use simcore::error::{ConfigError, Result};
use simcore::invariant::{Invariant, Violation};
use simcore::rng::SimRng;
use simcore::stats::{arithmetic_mean, harmonic_mean};
use simcore::types::{CoreId, Cycle};
use telemetry::{NullSink, Sink};
use tracegen::workload::Mix;
use tracegen::TraceGenerator;

use crate::l3::{L3System, Organization, SamplingReport};

/// Results of one measurement window on a [`Cmp`].
#[derive(Debug, Clone, PartialEq)]
pub struct CmpResult {
    /// Per-core `(application name, statistics)`, in core order.
    pub per_core: Vec<(&'static str, CoreStats)>,
    /// Per-core IPC, in core order.
    pub ipc: Vec<f64>,
    /// Harmonic mean of per-core IPC — the paper's headline metric.
    pub hmean_ipc: f64,
    /// Arithmetic mean of per-core IPC.
    pub amean_ipc: f64,
    /// Memory-channel statistics for the window.
    pub memory: MemoryStats,
    /// Adaptive quota snapshot, when the organization is adaptive.
    pub quotas: Option<Vec<u32>>,
    /// Set-sampling accuracy summary, when the run was set-sampled.
    pub sampling: Option<SamplingReport>,
}

impl CmpResult {
    /// Total last-level misses across cores.
    pub fn total_l3_misses(&self) -> u64 {
        self.per_core.iter().map(|(_, s)| s.l3_misses).sum()
    }

    /// Total last-level accesses across cores.
    pub fn total_l3_accesses(&self) -> u64 {
        self.per_core.iter().map(|(_, s)| s.l3_accesses).sum()
    }
}

/// The simulated chip multiprocessor.
///
/// The `S` parameter selects the telemetry sink shared by the cores and
/// the last-level organization; the default [`NullSink`] compiles all
/// emission sites away.
#[derive(Debug)]
pub struct Cmp<S: Sink = NullSink> {
    cores: Vec<Core<S>>,
    l3: L3System<S>,
    now: Cycle,
    window_start: Cycle,
    /// Whether [`Cmp::run`] may jump over provably-idle windows (the
    /// event-driven fast path). The `--no-skip` escape hatch clears it.
    cycle_skip: bool,
    /// Per-core memo of the last [`Core::idle_until`] answer: while
    /// `idle_wake[i] > now`, core `i` is known idle until that cycle and
    /// need not be re-proved. Sound because idleness depends only on
    /// core-local state and an idle core's step is a no-op, so the proof
    /// survives other cores' activity; cleared whenever a core goes
    /// active (0 is always stale) and at the top of [`Cmp::run`].
    idle_wake: Vec<u64>,
}

impl Cmp {
    /// Builds an untraced chip running `mix` under the given last-level
    /// organization. Each core's trace generator is seeded independently
    /// from `seed` and fast-forwarded per the mix (Section 3).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the mix does not match the machine's
    /// core count or the organization cannot be built.
    pub fn new(cfg: &MachineConfig, org: Organization, mix: &Mix, seed: u64) -> Result<Self> {
        Cmp::new_with_sink(cfg, org, mix, seed, NullSink)
    }

    /// Builds an untraced chip running arbitrary application profiles —
    /// used for parallel (read-shared) workloads and custom studies that
    /// go beyond the 24 SPEC2000-like presets.
    ///
    /// Accepts anything that borrows as a profile (`AppProfile`,
    /// `Arc<AppProfile>`, `&AppProfile`), so replicated workloads can
    /// share one profile allocation across cores.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the profile count does not match the
    /// machine's core count or the organization cannot be built.
    pub fn with_profiles<P: Borrow<tracegen::AppProfile>>(
        cfg: &MachineConfig,
        org: Organization,
        profiles: &[P],
        forwards: &[u64],
        seed: u64,
    ) -> Result<Self> {
        Cmp::with_profiles_and_sink(cfg, org, profiles, forwards, seed, NullSink)
    }
}

impl<S: Sink> Cmp<S> {
    /// Builds a chip running `mix`, cloning `sink` into every core and
    /// the last-level organization so one recorder observes the whole
    /// chip.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the mix does not match the machine's
    /// core count or the organization cannot be built.
    pub fn new_with_sink(
        cfg: &MachineConfig,
        org: Organization,
        mix: &Mix,
        seed: u64,
        sink: S,
    ) -> Result<Self> {
        let profiles: Vec<tracegen::AppProfile> =
            mix.apps.iter().map(|a| a.profile().clone()).collect();
        Cmp::with_profiles_and_sink(cfg, org, &profiles, &mix.forwards, seed, sink)
    }

    /// Builds a chip from arbitrary profiles with a telemetry sink (see
    /// [`Cmp::with_profiles`] for the workload semantics).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the profile count does not match the
    /// machine's core count or the organization cannot be built.
    pub fn with_profiles_and_sink<P: Borrow<tracegen::AppProfile>>(
        cfg: &MachineConfig,
        org: Organization,
        profiles: &[P],
        forwards: &[u64],
        seed: u64,
        sink: S,
    ) -> Result<Self> {
        if profiles.len() != cfg.cores || forwards.len() != cfg.cores {
            return Err(ConfigError::new(format!(
                "workload has {} applications / {} forwards but the machine has {} cores",
                profiles.len(),
                forwards.len(),
                cfg.cores
            )));
        }
        let mut root = SimRng::seed_from(seed);
        let cores: Vec<Core<S>> = profiles
            .iter()
            .zip(forwards)
            .enumerate()
            .map(|(i, (profile, forward))| {
                let mut gen = TraceGenerator::new(profile.borrow(), root.fork(i as u64));
                gen.fast_forward(*forward);
                // Length was checked above, so the index form is in range.
                let id = CoreId::from_index(i as u8);
                Core::with_sink(id, cfg, gen, sink.clone())
            })
            .collect();
        let idle_wake = vec![0; cores.len()];
        Ok(Cmp {
            cores,
            l3: L3System::build_with_sink(org, cfg, sink)?,
            now: Cycle::ZERO,
            window_start: Cycle::ZERO,
            cycle_skip: true,
            idle_wake,
        })
    }

    /// Enables or disables event-driven cycle skipping in
    /// [`run`](Self::run). Disabled, `run` steps every cycle — the
    /// reference semantics the skipping path is differentially tested
    /// against; results are bit-identical either way.
    pub fn set_cycle_skip(&mut self, enabled: bool) {
        self.cycle_skip = enabled;
    }

    /// Whether [`run`](Self::run) uses the event-driven fast path.
    pub fn cycle_skip(&self) -> bool {
        self.cycle_skip
    }

    /// The current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The last-level system (for organization-specific inspection).
    pub fn l3(&self) -> &L3System<S> {
        &self.l3
    }

    /// Advances the whole chip by one cycle.
    pub fn step(&mut self) {
        for core in &mut self.cores {
            core.step(self.now, &mut self.l3);
        }
        self.now += 1;
    }

    /// Runs for `cycles` cycles.
    ///
    /// With cycle skipping enabled (the default), the loop is
    /// event-driven: whenever every core proves its next step a no-op
    /// (see [`Core::idle_until`]), the clock jumps straight to the
    /// earliest pending event — an MSHR/memory-fill completion, an issued
    /// ROB head finishing, a dependency becoming ready, or fetch
    /// resuming — instead of stepping the stalled window one cycle at a
    /// time. Only the clock moves across a skipped window; no state
    /// changes and no telemetry is emitted, so statistics (which derive
    /// from `now` and committed counts), 2000-miss re-evaluation
    /// boundaries (miss-driven, and misses only happen on stepped
    /// cycles) and traces are identical to the stepping loop.
    pub fn run(&mut self, cycles: u64) {
        let target = self.now + cycles;
        if !self.cycle_skip {
            while self.now < target {
                self.step();
            }
            return;
        }
        // State mutations outside `run` (warming, stat resets) are not
        // tracked by the memo, so start from a clean slate.
        self.idle_wake.fill(0);
        while self.now < target {
            match self.idle_horizon() {
                // Every wake candidate is strictly after `now`, so the
                // jump always makes progress; an empty horizon
                // (`u64::MAX`, a fully drained chip) clamps to `target`
                // exactly like the stepping loop's no-op spin.
                Some(wake) => self.now = wake.min(target),
                None => self.step(),
            }
        }
    }

    /// The chip-level event horizon: `Some(wake)` when **all** cores are
    /// provably idle at `self.now` (with `wake` the earliest cycle any of
    /// them can act), `None` when at least one core may do work this
    /// cycle. Cores only interact through the last-level cache and the
    /// memory bus, and both are passive (their state changes only on
    /// core-initiated accesses), so per-core idleness composes to
    /// chip-level idleness.
    ///
    /// Idleness proofs are memoized in `idle_wake`: a stalled core is
    /// re-proved once per stall window, not once per cycle, because a
    /// still-valid proof (`idle_wake[i] > now`) cannot be invalidated by
    /// anything but that core's own non-idle step.
    fn idle_horizon(&mut self) -> Option<Cycle> {
        let now = self.now.raw();
        let mut wake = u64::MAX;
        for (core, memo) in self.cores.iter().zip(&mut self.idle_wake) {
            let w = if *memo > now {
                *memo
            } else {
                match core.idle_until(self.now) {
                    Some(t) => {
                        *memo = t.raw();
                        t.raw()
                    }
                    None => {
                        *memo = 0;
                        return None;
                    }
                }
            };
            wake = wake.min(w);
        }
        Some(Cycle::new(wake))
    }

    /// Audits the last-level structure right now (see
    /// [`simcore::invariant::Invariant`]); empty means consistent.
    pub fn audit(&self) -> Vec<Violation> {
        self.l3.audit()
    }

    /// Runs for `cycles` cycles, auditing the last-level structure after
    /// every step and stopping at the first inconsistency.
    ///
    /// This is the engine behind `nuca-sim --paranoid`: per-step auditing
    /// is orders of magnitude slower than [`run`](Self::run), but it
    /// pinpoints the exact cycle at which a structural invariant broke.
    ///
    /// # Errors
    ///
    /// Returns the cycle of the first failing step together with the
    /// violations found there.
    pub fn run_paranoid(
        &mut self,
        cycles: u64,
    ) -> std::result::Result<(), (Cycle, Vec<Violation>)> {
        for _ in 0..cycles {
            self.step();
            let violations = self.l3.audit();
            if !violations.is_empty() {
                return Err((self.now, violations));
            }
        }
        Ok(())
    }

    /// Warms the chip *functionally*: each core executes
    /// `instructions_per_core` instructions with full cache/TLB/predictor
    /// state updates but no pipeline timing (one instruction per core per
    /// cycle of pacing, so the shared bus sees a realistic request
    /// spacing). Mirrors the paper's long fast-forward before measuring.
    ///
    /// Each core's L3-bound requests are collected into an [`L3Batch`]
    /// and drained through the organization in one pass per pacing
    /// iteration instead of interleaving organization calls with
    /// private-hierarchy work. The drain is bit-identical to the
    /// one-at-a-time loop kept as [`warm_reference`](Self::warm_reference)
    /// because (a) the warm path discards L3 timing — only the outcome
    /// *source* feeds per-core counters — so deferring an access never
    /// changes the issuing core's subsequent behavior (L1/L2/TLB state is
    /// core-private and independent of L3 outcomes); (b) the batch is
    /// drained in exact push order — core-major, each access followed by
    /// its dependent writeback — which is the order the reference loop
    /// issues them, so the organization and memory channel see the same
    /// request sequence; and (c) every request in one batch carries the
    /// same `now`. Same-set conflicts therefore cannot be reordered: two
    /// requests to one set drain in the same relative order the reference
    /// path would have issued them.
    pub fn warm(&mut self, instructions_per_core: u64) {
        // Equal instruction pacing distorts the per-wall-clock estimator
        // counters, so quota adaptation pauses during functional warm-up;
        // the timed phase adapts from the initial 75 %/25 % partitioning
        // exactly as the paper's runs do.
        self.l3.set_adaptation_frozen(true);
        let mut batch = L3Batch::new();
        for _ in 0..instructions_per_core {
            for i in 0..self.cores.len() {
                if batch.remaining() < OPS_PER_WARM_OP {
                    self.drain_warm_batch(&mut batch);
                }
                self.cores[i].warm_op_batched(self.now, &mut batch);
            }
            self.drain_warm_batch(&mut batch);
            self.now += 1;
        }
        self.l3.quiesce(self.now);
        self.l3.set_adaptation_frozen(false);
    }

    /// The one-at-a-time reference warm loop the batched
    /// [`warm`](Self::warm) is differentially tested (and benchmarked)
    /// against. Bit-identical results by construction — see `warm` for
    /// the argument.
    pub fn warm_reference(&mut self, instructions_per_core: u64) {
        self.l3.set_adaptation_frozen(true);
        for _ in 0..instructions_per_core {
            for core in &mut self.cores {
                core.warm_op(self.now, &mut self.l3);
            }
            self.now += 1;
        }
        self.l3.quiesce(self.now);
        self.l3.set_adaptation_frozen(false);
    }

    /// Walks the queued warm requests through the organization in push
    /// order and routes each access outcome back to its issuing core.
    fn drain_warm_batch(&mut self, batch: &mut L3Batch) {
        for op in batch.ops() {
            match *op {
                L3Op::Access { core, addr, write } => {
                    let out = self.l3.access(core, addr, write, self.now);
                    self.cores[core.index()].note_l3_outcome(out.source);
                }
                L3Op::Writeback { core, addr } => {
                    self.l3.writeback(core, addr, self.now);
                }
            }
        }
        batch.clear();
    }

    /// Marks the warm-up boundary: all statistics restart here while
    /// architectural state (cache contents, quotas, predictors) carries
    /// over.
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.reset_stats(self.now);
        }
        self.l3.reset_stats();
        self.window_start = self.now;
    }

    /// Serializes the whole chip's warm state — clock, every core's
    /// learned state and the last-level organization — into a versioned,
    /// checksummed snapshot (see [`simcore::snapshot`]). Valid only at a
    /// quiescent point (right after [`warm`](Self::warm)): core pipeline
    /// structures are empty there and are not encoded.
    ///
    /// Restoring with [`load_chip_state`](Self::load_chip_state) into a
    /// freshly built chip of the same structural configuration and then
    /// running is bit-identical to running the original chip — the
    /// campaign engine's snapshot/fork layer is built on this guarantee.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when any core has
    /// in-flight pipeline state.
    pub fn save_chip_state(
        &self,
    ) -> std::result::Result<Vec<u8>, simcore::snapshot::SnapshotError> {
        let mut w = simcore::snapshot::SnapshotWriter::new();
        w.put_usize(self.cores.len());
        w.put_cycle(self.now);
        w.put_cycle(self.window_start);
        for core in &self.cores {
            core.save_state(&mut w)?;
        }
        self.l3.save_state(&mut w);
        Ok(w.finish())
    }

    /// Restores a snapshot written by
    /// [`save_chip_state`](Self::save_chip_state) into this freshly built
    /// chip. The chip must share the snapshot's *structural*
    /// configuration (cores, cache geometries, organization variant,
    /// workload); latencies may differ — they are reconstructed from this
    /// chip's own configuration, which is what lets one warm snapshot
    /// fork across the latency axes of a sweep.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError`] on checksum/version failure,
    /// structural mismatch, or trailing bytes.
    pub fn load_chip_state(
        &mut self,
        bytes: &[u8],
    ) -> std::result::Result<(), simcore::snapshot::SnapshotError> {
        let mut r = simcore::snapshot::SnapshotReader::open(bytes)?;
        if r.get_usize()? != self.cores.len() {
            return Err(simcore::snapshot::SnapshotError::Mismatch("core count"));
        }
        self.now = r.get_cycle()?;
        self.window_start = r.get_cycle()?;
        for core in &mut self.cores {
            core.load_state(&mut r)?;
        }
        self.l3.load_state(&mut r)?;
        r.finish()
    }

    /// Snapshot of the current measurement window.
    pub fn snapshot(&self) -> CmpResult {
        let per_core: Vec<(&'static str, CoreStats)> = self
            .cores
            .iter()
            .map(|c| (c.app_name(), c.stats(self.now)))
            .collect();
        let ipc: Vec<f64> = per_core.iter().map(|(_, s)| s.ipc()).collect();
        CmpResult {
            hmean_ipc: harmonic_mean(&ipc),
            amean_ipc: arithmetic_mean(&ipc),
            memory: self.l3.memory_stats(),
            quotas: self.l3.as_adaptive().map(|a| a.quotas()),
            sampling: self.l3.sampling_report(),
            per_core,
            ipc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::spec::SpecApp;
    use tracegen::workload::WorkloadPool;

    fn quick_mix() -> Mix {
        Mix {
            apps: vec![SpecApp::Gzip, SpecApp::Mcf, SpecApp::Crafty, SpecApp::Eon],
            forwards: vec![600_000_000; 4],
        }
    }

    #[test]
    fn four_cores_all_make_progress() {
        let cfg = MachineConfig::baseline();
        let mut cmp = Cmp::new(&cfg, Organization::Private, &quick_mix(), 1).unwrap();
        cmp.run(30_000);
        let r = cmp.snapshot();
        assert_eq!(r.per_core.len(), 4);
        for (app, s) in &r.per_core {
            assert!(s.committed > 0, "{app} committed nothing");
        }
        assert!(r.hmean_ipc > 0.0 && r.hmean_ipc <= r.amean_ipc + 1e-9);
    }

    #[test]
    fn mix_size_is_validated() {
        let cfg = MachineConfig::baseline();
        let bad = Mix {
            apps: vec![SpecApp::Gzip],
            forwards: vec![1],
        };
        assert!(Cmp::new(&cfg, Organization::Private, &bad, 1).is_err());
    }

    #[test]
    fn warmup_reset_starts_clean_window() {
        let cfg = MachineConfig::baseline();
        let mut cmp = Cmp::new(&cfg, Organization::Shared, &quick_mix(), 2).unwrap();
        cmp.run(20_000);
        cmp.reset_stats();
        let r0 = cmp.snapshot();
        assert_eq!(r0.per_core[0].1.committed, 0);
        cmp.run(10_000);
        let r = cmp.snapshot();
        assert_eq!(r.per_core[0].1.cycles, 10_000);
        assert!(r.per_core[0].1.committed > 0);
    }

    #[test]
    fn adaptive_snapshot_exposes_quotas() {
        let cfg = MachineConfig::baseline();
        let mut cmp = Cmp::new(&cfg, Organization::adaptive(), &quick_mix(), 3).unwrap();
        cmp.run(5_000);
        let r = cmp.snapshot();
        let quotas = r.quotas.expect("adaptive orgs expose quotas");
        assert_eq!(quotas.iter().sum::<u32>(), 16);
    }

    #[test]
    fn paranoid_run_reports_no_violations() {
        let cfg = MachineConfig::baseline();
        for org in [
            Organization::Private,
            Organization::Shared,
            Organization::adaptive(),
            Organization::Cooperative { seed: 7 },
        ] {
            let mut cmp = Cmp::new(&cfg, org, &quick_mix(), 4).unwrap();
            cmp.run_paranoid(2_000)
                .unwrap_or_else(|(cycle, vs)| panic!("violations at cycle {cycle:?}: {vs:?}"));
            assert!(cmp.audit().is_empty());
        }
    }

    #[test]
    fn deterministic_across_reruns() {
        let cfg = MachineConfig::baseline();
        let run = || {
            let mix = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), 4, 1, 9)
                .pop()
                .unwrap();
            let mut cmp = Cmp::new(&cfg, Organization::adaptive(), &mix, 9).unwrap();
            cmp.run(15_000);
            cmp.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a.per_core, b.per_core);
    }

    #[test]
    fn batched_warm_matches_one_at_a_time() {
        // The batched warm drain must evolve core counters, organization
        // state and the memory channel bit-identically to the reference
        // one-at-a-time loop, for every organization.
        let cfg = MachineConfig::baseline();
        for org in [
            Organization::Private,
            Organization::Shared,
            Organization::adaptive(),
            Organization::Cooperative { seed: 7 },
        ] {
            let run = |batched: bool| {
                let mut cmp = Cmp::new(&cfg, org, &quick_mix(), 13).unwrap();
                if batched {
                    cmp.warm(8_000);
                } else {
                    cmp.warm_reference(8_000);
                }
                // Run a timed window on top so divergence in warmed
                // architectural state (not just counters) is caught too.
                cmp.run(6_000);
                cmp.snapshot()
            };
            let batched = run(true);
            let reference = run(false);
            assert_eq!(batched, reference, "warm diverged under {}", org.label());
        }
    }

    #[test]
    fn cycle_skip_matches_stepping_loop_exactly() {
        // The event-driven fast path must be *bit-identical* to the
        // reference stepping loop: same committed counts, same hit/miss
        // stats, same quotas, for every organization.
        let cfg = MachineConfig::baseline();
        for org in [
            Organization::Private,
            Organization::Shared,
            Organization::adaptive(),
            Organization::Cooperative { seed: 7 },
        ] {
            let run = |skip: bool| {
                let mut cmp = Cmp::new(&cfg, org, &quick_mix(), 11).unwrap();
                cmp.set_cycle_skip(skip);
                cmp.warm(5_000);
                cmp.run(8_000);
                cmp.reset_stats();
                cmp.run(12_000);
                cmp.snapshot()
            };
            let fast = run(true);
            let reference = run(false);
            assert_eq!(fast, reference, "skip diverged under {}", org.label());
        }
    }

    #[test]
    fn snapshot_restore_run_matches_run_through() {
        // The campaign engine's core guarantee: warm, snapshot, restore
        // into a fresh chip, run — bit-identical to warming and running
        // straight through, for every organization (and the sampled
        // wrapper).
        let mut sampled_cfg = MachineConfig::baseline();
        sampled_cfg.l3.sample_shift = Some(2);
        let cases = [
            (MachineConfig::baseline(), Organization::Private),
            (MachineConfig::baseline(), Organization::Shared),
            (MachineConfig::baseline(), Organization::adaptive()),
            (
                MachineConfig::baseline(),
                Organization::Cooperative { seed: 7 },
            ),
            (sampled_cfg, Organization::adaptive()),
        ];
        for (cfg, org) in cases {
            let mix = quick_mix();
            let mut original = Cmp::new(&cfg, org, &mix, 21).unwrap();
            original.warm(6_000);
            let bytes = original.save_chip_state().expect("quiescent after warm");

            let mut restored = Cmp::new(&cfg, org, &mix, 21).unwrap();
            restored.load_chip_state(&bytes).expect("restore");

            let finish = |cmp: &mut Cmp| {
                cmp.run(4_000);
                cmp.reset_stats();
                cmp.run(8_000);
                cmp.snapshot()
            };
            let through = finish(&mut original);
            let forked = finish(&mut restored);
            assert_eq!(through, forked, "fork diverged under {}", org.label());
        }
    }

    #[test]
    fn snapshot_is_latency_independent() {
        // Functional warm-up discards timing, so a snapshot taken under
        // one set of latencies restores into a machine with different
        // ones and runs bit-identically to warming that machine directly
        // — the property that lets one warm snapshot fork across a
        // sweep's latency axes. Every latency axis the campaign spec
        // exposes is varied at once: memory first-chunk, L3 hit (both
        // organizations' banks and the neighbor hop) and L2 hit.
        let base = MachineConfig::baseline();
        let mut slow = MachineConfig::baseline();
        slow.memory.first_chunk_private = 330;
        slow.memory.first_chunk_shared = 338;
        slow.l2 = slow.l2.with_latency(11);
        slow.l3.private = slow.l3.private.with_latency(16);
        slow.l3.shared = slow.l3.shared.with_latency(24);
        slow.l3.neighbor_latency = 24;
        let mix = quick_mix();
        for org in [Organization::Shared, Organization::adaptive()] {
            let mut warm_base = Cmp::new(&base, org, &mix, 23).unwrap();
            warm_base.warm(6_000);
            let bytes = warm_base.save_chip_state().unwrap();

            let mut warm_slow = Cmp::new(&slow, org, &mix, 23).unwrap();
            warm_slow.warm(6_000);

            let mut forked = Cmp::new(&slow, org, &mix, 23).unwrap();
            forked.load_chip_state(&bytes).unwrap();

            let finish = |cmp: &mut Cmp| {
                cmp.run(4_000);
                cmp.reset_stats();
                cmp.run(8_000);
                cmp.snapshot()
            };
            assert_eq!(
                finish(&mut warm_slow),
                finish(&mut forked),
                "latency fork diverged under {}",
                org.label()
            );
        }
    }

    #[test]
    fn snapshot_rejects_wrong_organization_and_corruption() {
        let cfg = MachineConfig::baseline();
        let mix = quick_mix();
        let mut cmp = Cmp::new(&cfg, Organization::Shared, &mix, 5).unwrap();
        cmp.warm(1_000);
        let bytes = cmp.save_chip_state().unwrap();

        let mut wrong = Cmp::new(&cfg, Organization::Private, &mix, 5).unwrap();
        assert!(matches!(
            wrong.load_chip_state(&bytes),
            Err(simcore::snapshot::SnapshotError::Mismatch(_))
        ));

        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        let mut fresh = Cmp::new(&cfg, Organization::Shared, &mix, 5).unwrap();
        assert!(matches!(
            fresh.load_chip_state(&corrupt),
            Err(simcore::snapshot::SnapshotError::BadChecksum { .. })
        ));
    }

    #[test]
    fn snapshot_requires_quiescence() {
        let cfg = MachineConfig::baseline();
        let mut cmp = Cmp::new(&cfg, Organization::Shared, &quick_mix(), 5).unwrap();
        cmp.run(2_000); // timed run leaves in-flight pipeline state
        assert!(matches!(
            cmp.save_chip_state(),
            Err(simcore::snapshot::SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn different_organizations_share_the_same_traces() {
        // Committed-instruction counts differ, but the applications and
        // their address streams are identical across organizations (same
        // seed), so the comparison is apples-to-apples.
        let cfg = MachineConfig::baseline();
        let mix = quick_mix();
        let mut a = Cmp::new(&cfg, Organization::Private, &mix, 5).unwrap();
        let mut b = Cmp::new(&cfg, Organization::Shared, &mix, 5).unwrap();
        a.run(10_000);
        b.run(10_000);
        let ra = a.snapshot();
        let rb = b.snapshot();
        for i in 0..4 {
            assert_eq!(ra.per_core[i].0, rb.per_core[i].0);
        }
    }
}
