//! The evaluation harness: runs the paper's experiments end to end.
//!
//! Section 3's methodology — four randomly picked applications, random
//! fast-forward, warm-up, a fixed measured window — is captured by
//! [`ExperimentConfig`] and [`run_mix`]. On top of that sit the
//! per-figure drivers: [`classify`] (Figure 5), [`sensitivity_sweep`]
//! (Figure 3) and [`compare_schemes`] (Figures 6–12 share it).

use simcore::config::{CacheGeometry, MachineConfig, MachineConfigBuilder};
use simcore::error::Result;
use simcore::types::CoreId;
use telemetry::{collector, NullSink, Recorder, Sink, Trace, TraceMeta};
use tracegen::spec::SpecApp;
use tracegen::workload::{Mix, WorkloadPool};

use crate::cmp::{Cmp, CmpResult};
use crate::l3::Organization;

/// How long to warm up and measure each experiment.
///
/// The paper fast-forwards 0.5–1.5 G instructions and measures 200 M
/// cycles on a simulation farm; the defaults here are scaled down to
/// laptop time while keeping the relative orderings stable. Both knobs
/// are public so benches can sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Instructions per core warmed *functionally* (state updates without
    /// pipeline timing) before the timed phase — the cheap equivalent of
    /// the paper's fast-forward, enough to populate megabyte working
    /// sets.
    pub warm_instructions: u64,
    /// Timed cycles simulated before statistics reset (settles the
    /// pipeline, bus and MSHR state).
    pub warmup_cycles: u64,
    /// Cycles measured after warm-up.
    pub measure_cycles: u64,
    /// Master seed (workload construction and per-core streams).
    pub seed: u64,
    /// Worker threads for independent simulation cells (see
    /// [`run_cells`]). `1` runs everything serially; results are
    /// bit-identical for every value because each cell is
    /// self-contained. This is an execution policy, not part of the
    /// experiment's identity.
    pub jobs: usize,
    /// Whether [`Cmp::run`] may use the event-driven cycle-skipping fast
    /// path. Like `jobs`, an execution policy: results are bit-identical
    /// either way (enforced by the differential tests and the CI
    /// skip-equivalence job); `false` is the `--no-skip` escape hatch
    /// that keeps the reference stepping loop alive.
    pub cycle_skip: bool,
    /// Whether cores may use the exact hit fast path (fused TLB+L1
    /// probe, memo-served lookups, slab-decoded traces, issue-scan
    /// hint). Another execution policy: results are bit-identical
    /// either way (enforced by the differential tests and the CI
    /// fast-path-differential job); `false` is the `--no-fast-path`
    /// escape hatch that keeps the reference walks alive.
    pub fast_path: bool,
    /// Set-sampled simulation: `Some(k)` simulates `1/2^k` of the
    /// last-level sets in full detail and charges the rest a calibrated
    /// latency estimate (see [`crate::l3::SampledL3`]). Unlike `jobs`
    /// and `cycle_skip` this *is* part of the experiment's identity —
    /// results are estimates with the confidence bounds carried in
    /// [`CmpResult::sampling`]. `None` simulates every set.
    pub sample_shift: Option<u32>,
    /// Time-sampled simulation: `Some((detail, gap))` alternates
    /// `detail` detailed cycles with `gap` functionally warmed cycles
    /// (see [`Cmp::set_time_sample`]). Part of the experiment's identity
    /// like `sample_shift`; the accuracy summary lands in
    /// [`CmpResult::time_sampling`]. `None` (or a zero gap) simulates
    /// every cycle in detail.
    pub time_sample: Option<(u64, u64)>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            warm_instructions: 3_000_000,
            warmup_cycles: 1_000_000,
            measure_cycles: 1_500_000,
            seed: 2007,
            jobs: 1,
            cycle_skip: true,
            fast_path: true,
            sample_shift: None,
            time_sample: None,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            warm_instructions: 400_000,
            warmup_cycles: 20_000,
            measure_cycles: 150_000,
            seed: 2007,
            jobs: 1,
            cycle_skip: true,
            fast_path: true,
            sample_shift: None,
            time_sample: None,
        }
    }

    /// Scales every phase by `num/den` (used by benches to trade
    /// precision for wall-clock time via the command line).
    #[must_use]
    pub fn scaled(&self, num: u64, den: u64) -> Self {
        ExperimentConfig {
            warm_instructions: (self.warm_instructions * num / den).max(1),
            warmup_cycles: (self.warmup_cycles * num / den).max(1),
            measure_cycles: (self.measure_cycles * num / den).max(1),
            ..*self
        }
    }

    /// Same experiment with only the functional fast-forward scaled by
    /// `num/den` (floored at one instruction, timed phases untouched).
    /// The time-sampled perf pass runs with a reduced warm budget:
    /// functional gaps keep warming cache state all the way through a
    /// sampled run, so part of the up-front warm budget is redundant
    /// there — and charging it anyway would hide exactly the wall-clock
    /// the method exists to save. Any residual cold-state bias shows up
    /// in the measured (and gated) hmean-IPC error.
    #[must_use]
    pub fn scaled_warm(&self, num: u64, den: u64) -> Self {
        ExperimentConfig {
            warm_instructions: (self.warm_instructions * num / den.max(1)).max(1),
            ..*self
        }
    }

    /// Same experiment, executed on `jobs` worker threads (`0` = one
    /// per available core).
    #[must_use]
    pub fn with_jobs(&self, jobs: usize) -> Self {
        ExperimentConfig {
            jobs: simcore::parallel::resolve_jobs(jobs),
            ..*self
        }
    }

    /// Same experiment with the event-driven cycle-skipping fast path
    /// enabled or disabled.
    #[must_use]
    pub fn with_cycle_skip(&self, enabled: bool) -> Self {
        ExperimentConfig {
            cycle_skip: enabled,
            ..*self
        }
    }

    /// Same experiment with the exact core-side hit fast path enabled or
    /// disabled.
    #[must_use]
    pub fn with_fast_path(&self, enabled: bool) -> Self {
        ExperimentConfig {
            fast_path: enabled,
            ..*self
        }
    }

    /// Same experiment with set-sampled simulation: only `1/2^shift` of
    /// the last-level sets are simulated in full detail (`None` turns
    /// sampling off).
    #[must_use]
    pub fn with_sample_sets(&self, shift: Option<u32>) -> Self {
        ExperimentConfig {
            sample_shift: shift,
            ..*self
        }
    }

    /// Same experiment with time-sampled simulation: alternate `detail`
    /// detailed cycles with `gap` functionally warmed cycles (`None`
    /// turns time sampling off).
    #[must_use]
    pub fn with_time_sample(&self, pair: Option<(u64, u64)>) -> Self {
        ExperimentConfig {
            time_sample: pair,
            ..*self
        }
    }
}

/// Result of running one mix under one organization.
#[derive(Debug, Clone, PartialEq)]
pub struct MixResult {
    /// Which applications ran.
    pub mix: Mix,
    /// Organization label.
    pub organization: &'static str,
    /// The measured window.
    pub result: CmpResult,
    /// The recorded event trace, when a [`collector`] was active (or the
    /// cell ran through [`run_mix_traced`]); `None` on untraced runs.
    pub trace: Option<Trace>,
}

/// Section 3's run protocol with an arbitrary sink: warm-up, reset,
/// measure.
fn drive<S: Sink>(
    machine: &MachineConfig,
    org: Organization,
    mix: &Mix,
    exp: &ExperimentConfig,
    sink: S,
) -> Result<MixResult> {
    // Sampling is requested per experiment but built per machine: copy
    // the machine and set the L3 sampling knob so `L3System::build` adds
    // the estimator wrapper.
    let mut machine = *machine;
    if exp.sample_shift.is_some() {
        machine.l3.sample_shift = exp.sample_shift;
    }
    let machine = &machine;
    let mut cmp = Cmp::new_with_sink(machine, org, mix, exp.seed, sink)?;
    cmp.set_cycle_skip(exp.cycle_skip);
    cmp.set_fast_path(exp.fast_path);
    if let Some((detail, gap)) = exp.time_sample {
        cmp.set_time_sample(detail, gap);
    }
    cmp.warm(exp.warm_instructions);
    cmp.run(exp.warmup_cycles);
    cmp.reset_stats();
    cmp.run(exp.measure_cycles);
    Ok(MixResult {
        mix: mix.clone(),
        organization: org.label(),
        result: cmp.snapshot(),
        trace: None,
    })
}

/// The quota vector an adaptive organization starts from (empty for
/// non-adaptive organizations): `local_assoc` blocks per set per core
/// (the paper's 75 % private + guaranteed shared block split).
pub fn initial_quotas(machine: &MachineConfig, org: Organization) -> Vec<u32> {
    match org {
        Organization::Adaptive(_) => {
            vec![machine.l3.private.total_ways(); machine.cores]
        }
        _ => Vec::new(),
    }
}

/// Runs one mix under one organization: warm-up, reset, measure. When a
/// [`collector`] is installed the run records telemetry into a ring of
/// the collector's capacity and carries the finished [`Trace`] in
/// [`MixResult::trace`]; otherwise the untraced ([`NullSink`]) build
/// runs.
///
/// # Errors
///
/// Propagates configuration errors from [`Cmp::new`].
pub fn run_mix(
    machine: &MachineConfig,
    org: Organization,
    mix: &Mix,
    exp: &ExperimentConfig,
) -> Result<MixResult> {
    match collector::capacity() {
        Some(capacity) => {
            let (mut result, trace) = run_mix_traced(machine, org, mix, exp, capacity)?;
            result.trace = Some(trace);
            Ok(result)
        }
        None => drive(machine, org, mix, exp, NullSink),
    }
}

/// Runs one mix with a recording sink of ring capacity `capacity`,
/// independent of any process-wide collector, and returns the plain-data
/// trace alongside the result. This is the entry point tests and the
/// CLI use; [`run_mix`] routes through it when a collector is active.
///
/// # Errors
///
/// Propagates configuration errors from [`Cmp::new`].
pub fn run_mix_traced(
    machine: &MachineConfig,
    org: Organization,
    mix: &Mix,
    exp: &ExperimentConfig,
    capacity: usize,
) -> Result<(MixResult, Trace)> {
    let recorder = Recorder::with_capacity(capacity);
    let result = drive(machine, org, mix, exp, recorder.clone())?;
    let meta = TraceMeta {
        org: org.label().to_string(),
        cores: machine.cores,
        ring_capacity: capacity,
        initial_quotas: initial_quotas(machine, org),
    };
    let final_quotas = result.result.quotas.clone().unwrap_or_default();
    let trace = recorder.finish(meta, final_quotas);
    Ok((result, trace))
}

/// Like [`run_mix`] (untraced), additionally returning the chip's
/// fast-path effectiveness counters for the measured window. The
/// counters are a perf-attribution side channel: the [`MixResult`] is
/// bit-identical to [`run_mix`]'s for the same experiment, fast path on
/// or off (off, the fast-hit counters are zero and everything lands in
/// the slow buckets).
///
/// # Errors
///
/// Propagates configuration errors from [`Cmp::new`].
pub fn run_mix_instrumented(
    machine: &MachineConfig,
    org: Organization,
    mix: &Mix,
    exp: &ExperimentConfig,
) -> Result<(MixResult, cpusim::FastPathStats)> {
    let mut machine = *machine;
    if exp.sample_shift.is_some() {
        machine.l3.sample_shift = exp.sample_shift;
    }
    let mut cmp = Cmp::new(&machine, org, mix, exp.seed)?;
    cmp.set_cycle_skip(exp.cycle_skip);
    cmp.set_fast_path(exp.fast_path);
    if let Some((detail, gap)) = exp.time_sample {
        cmp.set_time_sample(detail, gap);
    }
    cmp.warm(exp.warm_instructions);
    cmp.run(exp.warmup_cycles);
    cmp.reset_stats();
    cmp.run(exp.measure_cycles);
    Ok((
        MixResult {
            mix: mix.clone(),
            organization: org.label(),
            result: cmp.snapshot(),
            trace: None,
        },
        cmp.fast_path_stats(),
    ))
}

/// One independent cell of an experiment grid: a machine, an
/// organization and a mix. Cells share nothing mutable, which is what
/// makes [`run_cells`] deterministic under any thread count.
#[derive(Debug, Clone, Copy)]
pub struct SimCell<'a> {
    /// Machine to simulate (cells may use different machines, e.g. the
    /// base and technology-scaled configurations of Figure 10).
    pub machine: &'a MachineConfig,
    /// Last-level organization.
    pub org: Organization,
    /// Workload mix.
    pub mix: &'a Mix,
}

/// Runs every cell of a grid — on `exp.jobs` worker threads via
/// [`simcore::parallel::run_indexed`] — and returns the results in cell
/// order. Output is bit-identical for every `jobs` value.
///
/// # Errors
///
/// Propagates the first (in cell order) configuration error from
/// [`Cmp::new`].
pub fn run_cells(cells: &[SimCell<'_>], exp: &ExperimentConfig) -> Result<Vec<MixResult>> {
    let results: Result<Vec<MixResult>> =
        simcore::parallel::map_slice(exp.jobs, cells, |c| run_mix(c.machine, c.org, c.mix, exp))
            .into_iter()
            .collect();
    let mut results = results?;
    // Hand traces to the collector *after* the parallel map joined, in
    // cell order, so the collected stream is identical for every `jobs`
    // value.
    for r in &mut results {
        if let Some(trace) = r.trace.take() {
            collector::submit(trace);
        }
    }
    Ok(results)
}

/// Runs the same mix under several organizations (the Figure 6–12
/// pattern). Results are in the same order as `orgs`.
///
/// # Errors
///
/// Propagates configuration errors from [`Cmp::new`].
pub fn compare_schemes(
    machine: &MachineConfig,
    orgs: &[Organization],
    mix: &Mix,
    exp: &ExperimentConfig,
) -> Result<Vec<MixResult>> {
    let cells: Vec<SimCell<'_>> = orgs
        .iter()
        .map(|&org| SimCell { machine, org, mix })
        .collect();
    run_cells(&cells, exp)
}

/// One row of the Figure 5 classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// The application.
    pub app: SpecApp,
    /// Measured last-level accesses per thousand cycles.
    pub accesses_per_kilocycle: f64,
    /// Measured IPC (private organization).
    pub ipc: f64,
    /// Whether it crosses the paper's nine-per-thousand threshold.
    pub intensive: bool,
}

/// Figure 5: classifies every application by last-level intensity,
/// running each alone (replicated on all cores) over private slices.
///
/// # Errors
///
/// Propagates configuration errors from [`Cmp::new`].
/// Derives a single-core machine with one private slice of the original
/// machine's per-core L3 — the paper characterizes applications
/// individually (Figures 3 and 5), without neighbors contending for the
/// off-chip bus.
fn characterization_machine(machine: &MachineConfig) -> Result<MachineConfig> {
    MachineConfigBuilder::new()
        .cores(1)
        .pipeline(machine.pipeline)
        .branch(machine.branch)
        .tlb(machine.tlb)
        .memory(machine.memory)
        .l2_size(machine.l2.size_bytes())
        .l3_capacity(machine.l3.private.size_bytes())
        .l3_private_latency(machine.l3.private.latency())
        .l3_shared_latency(machine.l3.shared.latency())
        .l3_neighbor_latency(machine.l3.neighbor_latency)
        .build()
}

pub fn classify(machine: &MachineConfig, exp: &ExperimentConfig) -> Result<Vec<Classification>> {
    let single = characterization_machine(machine)?;
    let mixes: Vec<Mix> = SpecApp::ALL
        .into_iter()
        .map(|app| WorkloadPool::homogeneous(app, single.cores, exp.seed))
        .collect();
    let cells: Vec<SimCell<'_>> = mixes
        .iter()
        .map(|mix| SimCell {
            machine: &single,
            org: Organization::Private,
            mix,
        })
        .collect();
    let results = run_cells(&cells, exp)?;
    Ok(SpecApp::ALL
        .into_iter()
        .zip(&results)
        .map(|(app, r)| {
            let stats = r.result.per_core[0].1;
            let apkc = stats.l3_accesses_per_kilocycle();
            Classification {
                app,
                accesses_per_kilocycle: apkc,
                ipc: stats.ipc(),
                intensive: apkc > 9.0,
            }
        })
        .collect())
}

/// One point of the Figure 3 sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// Blocks per set (associativity with the set count fixed).
    pub blocks_per_set: u32,
    /// Last-level misses observed in the measured window (core 0).
    pub misses: u64,
    /// Last-level accesses in the window (core 0).
    pub accesses: u64,
}

/// Figure 3: misses as a function of blocks per set, with the set count
/// fixed at the baseline's 4096. Each point runs `app` alone over private
/// slices of the requested associativity.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn sensitivity_sweep(
    machine: &MachineConfig,
    app: SpecApp,
    ways: &[u32],
    exp: &ExperimentConfig,
) -> Result<Vec<SensitivityPoint>> {
    let mut rows = sensitivity_grid(machine, &[app], ways, exp)?;
    Ok(rows.pop().unwrap_or_default())
}

/// The full Figure 3 grid — every `(app, ways)` pair is one independent
/// cell, so the whole figure parallelizes as a single flat work list
/// instead of one serial sweep per application. Returns one row of
/// points per app, in `apps` order.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn sensitivity_grid(
    machine: &MachineConfig,
    apps: &[SpecApp],
    ways: &[u32],
    exp: &ExperimentConfig,
) -> Result<Vec<Vec<SensitivityPoint>>> {
    let single = characterization_machine(machine)?;
    let sets = machine.l3.private.sets();
    let block = machine.l3.private.block_bytes();
    let latency = machine.l3.private.latency();
    let orgs: Vec<Organization> = ways
        .iter()
        .map(|&w| {
            let geometry = CacheGeometry::new(sets * w as u64 * block as u64, w, block, latency)?;
            Ok(Organization::PrivateCustom { geometry })
        })
        .collect::<Result<_>>()?;
    let mixes: Vec<Mix> = apps
        .iter()
        .map(|&app| WorkloadPool::homogeneous(app, single.cores, exp.seed))
        .collect();
    let cells: Vec<SimCell<'_>> = mixes
        .iter()
        .flat_map(|mix| {
            orgs.iter().map(|&org| SimCell {
                machine: &single,
                org,
                mix,
            })
        })
        .collect();
    let results = run_cells(&cells, exp)?;
    Ok(results
        .chunks(ways.len().max(1))
        .map(|row| {
            row.iter()
                .zip(ways)
                .map(|(r, &w)| {
                    let stats = r.result.per_core[0].1;
                    SensitivityPoint {
                        blocks_per_set: w,
                        misses: stats.l3_misses,
                        accesses: stats.l3_accesses,
                    }
                })
                .collect()
        })
        .collect())
}

/// Per-application speedup aggregation used by Figures 7, 8, 9 and 10:
/// for every application, the mean over all its appearances of
/// (its IPC under `new`) / (its IPC under `baseline`).
pub fn per_app_speedup(
    new: &[MixResult],
    baseline: &[MixResult],
) -> Vec<(&'static str, f64, usize)> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<&'static str, (f64, usize)> = BTreeMap::new();
    for (n, b) in new.iter().zip(baseline) {
        debug_assert_eq!(n.mix.apps, b.mix.apps, "mixes must align");
        for i in 0..n.result.per_core.len() {
            let app = n.result.per_core[i].0;
            let s_new = n.result.ipc[i];
            let s_base = b.result.ipc[i];
            if s_base > 0.0 {
                let e = acc.entry(app).or_insert((0.0, 0));
                e.0 += s_new / s_base;
                e.1 += 1;
            }
        }
    }
    acc.into_iter()
        .map(|(app, (sum, n))| (app, sum / n as f64, n))
        .collect()
}

/// Convenience: which core ran which app in a result (used by reports).
pub fn core_apps(result: &MixResult) -> Vec<(CoreId, &'static str)> {
    result
        .result
        .per_core
        .iter()
        .enumerate()
        .map(|(i, (app, _))| (CoreId::from_index(i as u8), *app))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_mix_measures_requested_window() {
        let machine = MachineConfig::baseline();
        let exp = ExperimentConfig::quick();
        let mix = WorkloadPool::homogeneous(SpecApp::Gzip, 4, 1);
        let r = run_mix(&machine, Organization::Private, &mix, &exp).unwrap();
        assert_eq!(r.result.per_core[0].1.cycles, exp.measure_cycles);
        assert_eq!(r.organization, "private");
    }

    #[test]
    fn compare_schemes_aligns_mixes() {
        let machine = MachineConfig::baseline();
        let exp = ExperimentConfig::quick();
        let mix = WorkloadPool::homogeneous(SpecApp::Parser, 4, 2);
        let rs = compare_schemes(
            &machine,
            &[Organization::Private, Organization::Shared],
            &mix,
            &exp,
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].mix, rs[1].mix);
    }

    #[test]
    fn per_app_speedup_averages_appearances() {
        let machine = MachineConfig::baseline();
        let exp = ExperimentConfig::quick();
        let mix = WorkloadPool::homogeneous(SpecApp::Gzip, 4, 3);
        let a = vec![run_mix(&machine, Organization::Private, &mix, &exp).unwrap()];
        let b = a.clone();
        let speedups = per_app_speedup(&a, &b);
        assert_eq!(speedups.len(), 1);
        let (app, s, n) = speedups[0];
        assert_eq!(app, "gzip");
        assert!((s - 1.0).abs() < 1e-12, "self-speedup is 1.0");
        assert_eq!(n, 4);
    }

    #[test]
    fn instrumented_run_matches_run_mix_in_both_modes() {
        // The counters are a pure side channel: the MixResult must be
        // bit-identical to run_mix's with the fast path on AND off, and
        // the counters must reflect the requested mode.
        let machine = MachineConfig::baseline();
        let exp = ExperimentConfig::quick();
        let mix = WorkloadPool::homogeneous(SpecApp::Gzip, 4, 1);
        let plain = run_mix(&machine, Organization::Private, &mix, &exp).unwrap();
        let (on, fast) = run_mix_instrumented(&machine, Organization::Private, &mix, &exp).unwrap();
        assert_eq!(plain, on);
        assert!(fast.data_fast_hits > 0, "fast path fired: {fast:?}");
        let off_exp = exp.with_fast_path(false);
        let (off, off_fast) =
            run_mix_instrumented(&machine, Organization::Private, &mix, &off_exp).unwrap();
        assert_eq!(plain, off, "--no-fast-path changed the result");
        assert_eq!(off_fast.data_fast_hits + off_fast.inst_fast_hits, 0);
        assert!(off_fast.data_slow > 0);
    }

    #[test]
    fn sensitivity_sweep_is_monotone_enough() {
        // More blocks per set can only help (within noise): the last
        // point must not have more misses than the first.
        let machine = MachineConfig::baseline();
        let exp = ExperimentConfig::quick();
        let points = sensitivity_sweep(&machine, SpecApp::Gzip, &[1, 4, 8], &exp).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[2].misses <= points[0].misses);
    }
}
