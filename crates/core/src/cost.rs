//! The implementation-cost model of Section 2.7.
//!
//! The extra storage of the adaptive scheme is
//! `0.06 * s * p * t  +  log2(p) * b  +  p * 3 * w` bits, where `s` is the
//! number of sets, `p` the number of cores, `t` the tag width, `b` the
//! number of cache blocks and `w` the width of the counters/registers.
//! For the baseline (4-MByte, 4096-set, 16-way L3, four cores, 24-bit
//! tags, shadow tags in 1/16 of the sets, 16-bit counters) the paper
//! reports 152 Kbits — 16 % shadow tags, 84 % core IDs — an overhead of
//! about 0.5 % of the cache's storage.

use simcore::config::MachineConfig;

use crate::l3::Organization;

/// Storage-cost model for the adaptive scheme's extra state.
///
/// # Example
///
/// ```
/// use nuca_core::cost::CostModel;
/// use simcore::config::MachineConfig;
///
/// let cost = CostModel::for_machine(&MachineConfig::baseline());
/// assert_eq!(cost.total_kbits().round() as u64, 152);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Number of last-level sets (`s`).
    pub sets: u64,
    /// Number of cores (`p`).
    pub cores: u64,
    /// Tag width in bits (`t`).
    pub tag_bits: u64,
    /// Number of cache blocks (`b`).
    pub blocks: u64,
    /// Counter/register width in bits (`w`).
    pub counter_bits: u64,
    /// Shadow tags monitor `sets >> shadow_shift` sets (4 = the paper's
    /// 1/16 ≈ 6 %).
    pub shadow_shift: u32,
}

impl CostModel {
    /// The cost model for a machine, with the paper's 24-bit tags,
    /// 16-bit counters and 1/16 shadow-tag sampling.
    pub fn for_machine(cfg: &MachineConfig) -> Self {
        let geom = cfg.l3.shared;
        CostModel {
            sets: geom.sets(),
            cores: cfg.cores as u64,
            tag_bits: 24,
            blocks: geom.size_bytes() / geom.block_bytes() as u64,
            counter_bits: 16,
            shadow_shift: 4,
        }
    }

    /// Shadow-tag storage: one `t`-bit register per monitored set per
    /// core.
    pub fn shadow_tag_bits(&self) -> u64 {
        (self.sets >> self.shadow_shift) * self.cores * self.tag_bits
    }

    /// Core-ID storage: `log2(p)` bits per cache block (Figure 4a).
    pub fn core_id_bits(&self) -> u64 {
        (self.cores.max(2)).ilog2() as u64 * self.blocks
    }

    /// The two counters and one quota register per core (Figures 4c, 4d).
    pub fn counter_total_bits(&self) -> u64 {
        self.cores * 3 * self.counter_bits
    }

    /// Total extra storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.shadow_tag_bits() + self.core_id_bits() + self.counter_total_bits()
    }

    /// Total in Kbits (1 Kbit = 1024 bits).
    pub fn total_kbits(&self) -> f64 {
        self.total_bits() as f64 / 1024.0
    }

    /// Fraction of the L3's data+nothing storage this overhead adds,
    /// for a cache of `cache_bytes` bytes.
    pub fn overhead_fraction(&self, cache_bytes: u64) -> f64 {
        self.total_bits() as f64 / (cache_bytes as f64 * 8.0)
    }

    /// Fraction of the overhead spent on shadow tags.
    pub fn shadow_fraction(&self) -> f64 {
        self.shadow_tag_bits() as f64 / self.total_bits() as f64
    }

    /// Fraction of the overhead spent on per-block core IDs.
    pub fn core_id_fraction(&self) -> f64 {
        self.core_id_bits() as f64 / self.total_bits() as f64
    }
}

/// An analytical price tag for one sweep cell, in the style of Yavits
/// et al.'s closed-form NUCA screening models: total storage spent and
/// a first-order estimate of the average L2-miss service latency. The
/// campaign engine prunes cells dominated on *both* numbers before
/// spending simulation time on them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreeningEstimate {
    /// Storage the configuration commits: the L3 data array plus the
    /// adaptive scheme's bookkeeping overhead ([`CostModel`]).
    pub storage_bits: u64,
    /// Modeled average service latency of an L2 miss, in cycles.
    pub modeled_latency: f64,
}

impl ScreeningEstimate {
    /// Whether this estimate dominates `other`: no worse on both
    /// dimensions and strictly better on at least one. Ties on both
    /// dimensions dominate nothing, so equal cells all survive
    /// screening.
    pub fn dominates(&self, other: &ScreeningEstimate) -> bool {
        self.storage_bits <= other.storage_bits
            && self.modeled_latency <= other.modeled_latency
            && (self.storage_bits < other.storage_bits
                || self.modeled_latency < other.modeled_latency)
    }
}

/// Miss ratio assumed at [`REFERENCE_CAPACITY`] bytes of effective
/// capacity per core; capacities scale it by the square-root law.
const BASE_MISS_RATIO: f64 = 0.30;

/// Effective per-core capacity at which the model's miss ratio equals
/// [`BASE_MISS_RATIO`] (the Table 1 private slice).
const REFERENCE_CAPACITY: f64 = 1024.0 * 1024.0;

/// Prices one `(machine, organization)` point analytically.
///
/// The latency model is deliberately first-order — hit latency plus a
/// miss ratio following the √-capacity rule (miss rate ∝ 1/√capacity,
/// the classic cache power law) times the memory first-chunk latency —
/// because its only job is Pareto *screening*: a cell that has both
/// more storage and a worse modeled latency than some other cell on
/// the same workload is not worth simulating. The adaptive scheme is
/// priced at full shared capacity, a 75 %/25 % private/shared hit-
/// latency blend (its initial partition), and its Section 2.7 storage
/// overhead on top of the data array.
pub fn screening_estimate(machine: &MachineConfig, org: &Organization) -> ScreeningEstimate {
    let shared = machine.l3.shared;
    let private = machine.l3.private;
    let (capacity, hit_latency, miss_penalty, storage_bits) = match org {
        Organization::Private => (
            private.size_bytes() as f64,
            private.latency() as f64,
            machine.memory.first_chunk_private as f64,
            shared.size_bytes() * 8,
        ),
        Organization::PrivateScaled { factor } => (
            (private.size_bytes() * factor) as f64,
            private.latency() as f64,
            machine.memory.first_chunk_private as f64,
            shared.size_bytes() * 8 * factor,
        ),
        Organization::PrivateCustom { geometry } => (
            geometry.size_bytes() as f64,
            geometry.latency() as f64,
            machine.memory.first_chunk_private as f64,
            geometry.size_bytes() * 8 * machine.cores as u64,
        ),
        Organization::Shared | Organization::Cooperative { .. } => (
            shared.size_bytes() as f64,
            shared.latency() as f64,
            machine.memory.first_chunk_shared as f64,
            shared.size_bytes() * 8,
        ),
        Organization::Adaptive(_) => (
            shared.size_bytes() as f64,
            0.75 * private.latency() as f64 + 0.25 * shared.latency() as f64,
            machine.memory.first_chunk_shared as f64,
            shared.size_bytes() * 8 + CostModel::for_machine(machine).total_bits(),
        ),
    };
    // Shared organizations pool capacity across cores; what matters for
    // the miss ratio is the share one core can expect.
    let per_core = match org {
        Organization::Shared | Organization::Cooperative { .. } | Organization::Adaptive(_) => {
            capacity / machine.cores as f64
        }
        _ => capacity,
    };
    let miss_ratio = (BASE_MISS_RATIO * (REFERENCE_CAPACITY / per_core).sqrt()).min(1.0);
    ScreeningEstimate {
        storage_bits,
        modeled_latency: machine.l2.latency() as f64 + hit_latency + miss_ratio * miss_penalty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> CostModel {
        CostModel::for_machine(&MachineConfig::baseline())
    }

    #[test]
    fn baseline_matches_papers_152_kbits() {
        let c = baseline();
        // 256 sets x 4 cores x 24 bits + 2 bits x 65536 blocks + 192.
        assert_eq!(c.shadow_tag_bits(), 24_576);
        assert_eq!(c.core_id_bits(), 131_072);
        assert_eq!(c.counter_total_bits(), 192);
        assert_eq!(c.total_bits(), 155_840);
        assert_eq!(c.total_kbits().round() as u64, 152);
    }

    #[test]
    fn split_is_16_percent_shadow_84_percent_core_ids() {
        let c = baseline();
        assert!((c.shadow_fraction() - 0.16).abs() < 0.01);
        assert!((c.core_id_fraction() - 0.84).abs() < 0.01);
    }

    #[test]
    fn overhead_is_about_half_a_percent() {
        let c = baseline();
        let frac = c.overhead_fraction(4 * 1024 * 1024);
        assert!((0.004..0.006).contains(&frac), "overhead {frac}");
    }

    #[test]
    fn monitoring_all_sets_costs_16x_more_shadow() {
        let mut c = baseline();
        c.shadow_shift = 0;
        assert_eq!(c.shadow_tag_bits(), 24_576 * 16);
    }

    #[test]
    fn screening_prices_the_organizations_sensibly() {
        let m = MachineConfig::baseline();
        let private = screening_estimate(&m, &Organization::Private);
        let scaled = screening_estimate(&m, &Organization::PrivateScaled { factor: 4 });
        let shared = screening_estimate(&m, &Organization::Shared);
        let adaptive = screening_estimate(&m, &Organization::adaptive());
        let coop = screening_estimate(&m, &Organization::Cooperative { seed: 1 });
        // 4x private spends 4x the storage for a better latency: neither
        // dominates the other.
        assert_eq!(scaled.storage_bits, private.storage_bits * 4);
        assert!(scaled.modeled_latency < private.modeled_latency);
        assert!(!scaled.dominates(&private) && !private.dominates(&scaled));
        // The adaptive scheme pays its Section 2.7 overhead on top of
        // the shared data array.
        assert_eq!(
            adaptive.storage_bits,
            shared.storage_bits + baseline().total_bits()
        );
        // Shared and cooperative price identically (same capacity and
        // hit path in this first-order model) — ties survive screening.
        assert_eq!(shared, coop);
        assert!(!shared.dominates(&coop) && !coop.dominates(&shared));
    }

    #[test]
    fn screening_dominance_catches_strictly_worse_latency_points() {
        let base = MachineConfig::baseline();
        let scaled = base.technology_scaled();
        let fast = screening_estimate(&base, &Organization::Shared);
        let slow = screening_estimate(&scaled, &Organization::Shared);
        // Same storage, strictly worse modeled latency: dominated.
        assert_eq!(fast.storage_bits, slow.storage_bits);
        assert!(fast.dominates(&slow));
        assert!(!slow.dominates(&fast));
    }
}
