//! The implementation-cost model of Section 2.7.
//!
//! The extra storage of the adaptive scheme is
//! `0.06 * s * p * t  +  log2(p) * b  +  p * 3 * w` bits, where `s` is the
//! number of sets, `p` the number of cores, `t` the tag width, `b` the
//! number of cache blocks and `w` the width of the counters/registers.
//! For the baseline (4-MByte, 4096-set, 16-way L3, four cores, 24-bit
//! tags, shadow tags in 1/16 of the sets, 16-bit counters) the paper
//! reports 152 Kbits — 16 % shadow tags, 84 % core IDs — an overhead of
//! about 0.5 % of the cache's storage.

use simcore::config::MachineConfig;

/// Storage-cost model for the adaptive scheme's extra state.
///
/// # Example
///
/// ```
/// use nuca_core::cost::CostModel;
/// use simcore::config::MachineConfig;
///
/// let cost = CostModel::for_machine(&MachineConfig::baseline());
/// assert_eq!(cost.total_kbits().round() as u64, 152);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Number of last-level sets (`s`).
    pub sets: u64,
    /// Number of cores (`p`).
    pub cores: u64,
    /// Tag width in bits (`t`).
    pub tag_bits: u64,
    /// Number of cache blocks (`b`).
    pub blocks: u64,
    /// Counter/register width in bits (`w`).
    pub counter_bits: u64,
    /// Shadow tags monitor `sets >> shadow_shift` sets (4 = the paper's
    /// 1/16 ≈ 6 %).
    pub shadow_shift: u32,
}

impl CostModel {
    /// The cost model for a machine, with the paper's 24-bit tags,
    /// 16-bit counters and 1/16 shadow-tag sampling.
    pub fn for_machine(cfg: &MachineConfig) -> Self {
        let geom = cfg.l3.shared;
        CostModel {
            sets: geom.sets(),
            cores: cfg.cores as u64,
            tag_bits: 24,
            blocks: geom.size_bytes() / geom.block_bytes() as u64,
            counter_bits: 16,
            shadow_shift: 4,
        }
    }

    /// Shadow-tag storage: one `t`-bit register per monitored set per
    /// core.
    pub fn shadow_tag_bits(&self) -> u64 {
        (self.sets >> self.shadow_shift) * self.cores * self.tag_bits
    }

    /// Core-ID storage: `log2(p)` bits per cache block (Figure 4a).
    pub fn core_id_bits(&self) -> u64 {
        (self.cores.max(2)).ilog2() as u64 * self.blocks
    }

    /// The two counters and one quota register per core (Figures 4c, 4d).
    pub fn counter_total_bits(&self) -> u64 {
        self.cores * 3 * self.counter_bits
    }

    /// Total extra storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.shadow_tag_bits() + self.core_id_bits() + self.counter_total_bits()
    }

    /// Total in Kbits (1 Kbit = 1024 bits).
    pub fn total_kbits(&self) -> f64 {
        self.total_bits() as f64 / 1024.0
    }

    /// Fraction of the L3's data+nothing storage this overhead adds,
    /// for a cache of `cache_bytes` bytes.
    pub fn overhead_fraction(&self, cache_bytes: u64) -> f64 {
        self.total_bits() as f64 / (cache_bytes as f64 * 8.0)
    }

    /// Fraction of the overhead spent on shadow tags.
    pub fn shadow_fraction(&self) -> f64 {
        self.shadow_tag_bits() as f64 / self.total_bits() as f64
    }

    /// Fraction of the overhead spent on per-block core IDs.
    pub fn core_id_fraction(&self) -> f64 {
        self.core_id_bits() as f64 / self.total_bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> CostModel {
        CostModel::for_machine(&MachineConfig::baseline())
    }

    #[test]
    fn baseline_matches_papers_152_kbits() {
        let c = baseline();
        // 256 sets x 4 cores x 24 bits + 2 bits x 65536 blocks + 192.
        assert_eq!(c.shadow_tag_bits(), 24_576);
        assert_eq!(c.core_id_bits(), 131_072);
        assert_eq!(c.counter_total_bits(), 192);
        assert_eq!(c.total_bits(), 155_840);
        assert_eq!(c.total_kbits().round() as u64, 152);
    }

    #[test]
    fn split_is_16_percent_shadow_84_percent_core_ids() {
        let c = baseline();
        assert!((c.shadow_fraction() - 0.16).abs() < 0.01);
        assert!((c.core_id_fraction() - 0.84).abs() < 0.01);
    }

    #[test]
    fn overhead_is_about_half_a_percent() {
        let c = baseline();
        let frac = c.overhead_fraction(4 * 1024 * 1024);
        assert!((0.004..0.006).contains(&frac), "overhead {frac}");
    }

    #[test]
    fn monitoring_all_sets_costs_16x_more_shadow() {
        let mut c = baseline();
        c.shadow_shift = 0;
        assert_eq!(c.shadow_tag_bits(), 24_576 * 16);
    }
}
