//! The sharing engine (Section 2.1): gain/loss estimation and periodic
//! re-evaluation of the per-core partition quotas.
//!
//! The engine owns the structures of Figure 4:
//!
//! - (b) the shadow-tag table — one evicted-tag register per (set, core),
//!   optionally sampled over the lowest-index sets (§4.6);
//! - (c) the two global counters per core — *hits in the LRU blocks*
//!   (the cost of shrinking by one block/set, after Suh et al.) and
//!   *hits in the shadow tags* (the benefit of growing by one block/set);
//! - (d) the partition parameters — *max. no. of blocks in set* per core.
//!
//! Every `reeval_period` last-level misses (2000 in the paper) the core
//! with the highest gain is compared against the core with the lowest
//! loss; if the gain is higher, one block per set moves from the loser's
//! quota to the gainer's. Counters are reset each period.

use cachesim::percore::PerCore;
use cachesim::shadow::{SetSampling, ShadowTags};
use simcore::invariant::{Invariant, Violation};
use simcore::types::{BlockAddr, CoreId};

/// Tunables of the adaptive scheme; defaults are the paper's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveParams {
    /// Last-level misses between quota re-evaluations (paper: 2000).
    pub reeval_period: u64,
    /// Which sets carry shadow-tag registers (§4.6). The default
    /// monitors every set; the paper's production configuration is
    /// `SetSampling::LowestIndex { shift: 4 }` (1/16 of the sets), and
    /// random / prime-stride subsets are available for the §4.6
    /// strategy comparison.
    pub shadow_sampling: SetSampling,
    /// Use Algorithm 1 (evict over-quota owners first) for the shared
    /// partition. `false` degrades to plain global LRU — an ablation.
    pub use_algorithm1: bool,
    /// How many of a core's quota blocks are contributed to the shared
    /// partition rather than held privately. The paper's initial
    /// partitioning is 75 % private / 25 % shared, i.e. a reserve of 1 on
    /// a 4-way slice; 0 starts fully private, larger values start more
    /// shared. The paper guarantees at least one shared block per core.
    pub shared_reserve: u32,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            reeval_period: 2000,
            shadow_sampling: SetSampling::ALL,
            use_algorithm1: true,
            shared_reserve: 1,
        }
    }
}

/// The outcome of one re-evaluation period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repartition {
    /// Core whose quota grew by one block per set.
    pub gainer: CoreId,
    /// Core whose quota shrank by one block per set.
    pub loser: CoreId,
    /// Normalized shadow-tag hits of the gainer this period.
    pub gain: u64,
    /// LRU-block hits of the loser this period.
    pub loss: u64,
}

/// What [`SharingEngine::observe_miss`] learned from one miss — the
/// telemetry layer turns these into `ShadowHit`, `Epoch` and
/// `Repartition` events without probing engine internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissObservation {
    /// The miss hit the requester's shadow tag (a would-have-hit with
    /// one more block of quota — the gain estimator ticked).
    pub shadow_hit: bool,
    /// This miss closed a re-evaluation period while adaptation was
    /// live (unfrozen), whether or not any quota moved.
    pub epoch_ended: bool,
    /// The quota transfer, if this period's re-evaluation made one.
    pub repartition: Option<Repartition>,
}

/// The sharing engine: quota state plus gain/loss estimators.
///
/// # Example
///
/// ```
/// use nuca_core::engine::{AdaptiveParams, SharingEngine};
/// use simcore::types::{BlockAddr, CoreId};
///
/// let mut eng = SharingEngine::new(64, 4, 16, 4, AdaptiveParams::default());
/// let c0 = CoreId::from_index(0);
/// assert_eq!(eng.quota(c0), 4);            // 75% private start: 3 + 1 shared
/// assert_eq!(eng.private_capacity(c0), 3);
/// eng.record_eviction(0, c0, BlockAddr::new(0xabc));
/// eng.observe_miss(0, c0, BlockAddr::new(0xabc));
/// assert_eq!(eng.shadow_hits(c0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SharingEngine {
    params: AdaptiveParams,
    cores: usize,
    total_ways: u32,
    local_assoc: u32,
    quotas: PerCore<u32>,
    lru_hits: PerCore<u64>,
    shadow: ShadowTags,
    misses_since_reeval: u64,
    repartitions: Vec<Repartition>,
    epochs: u64,
    frozen: bool,
}

impl SharingEngine {
    /// Creates an engine for a cache of `sets` sets and `total_ways` ways
    /// shared by `cores` cores whose local slices are `local_assoc`-way.
    ///
    /// The initial partitioning is the paper's 75 %/25 % split: every
    /// core's quota starts at `local_assoc` blocks per set, of which
    /// `local_assoc - 1` are private and one is its guaranteed share of
    /// the shared partition.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent
    /// (`cores * local_assoc != total_ways`) or any dimension is zero.
    pub fn new(
        sets: usize,
        cores: usize,
        total_ways: u32,
        local_assoc: u32,
        params: AdaptiveParams,
    ) -> Self {
        assert!(
            cores > 0 && total_ways > 0 && local_assoc > 0,
            "geometry must be nonzero"
        );
        assert_eq!(
            cores as u32 * local_assoc,
            total_ways,
            "local slices must tile the aggregate ways"
        );
        SharingEngine {
            params,
            cores,
            total_ways,
            local_assoc,
            quotas: PerCore::filled(cores, local_assoc),
            lru_hits: PerCore::filled(cores, 0),
            shadow: ShadowTags::with_sampling(sets, cores, params.shadow_sampling),
            misses_since_reeval: 0,
            repartitions: Vec::new(),
            epochs: 0,
            frozen: false,
        }
    }

    /// Freezes or unfreezes quota re-evaluation. While frozen the
    /// estimator counters still accumulate but quotas never change —
    /// used so functional warm-up (which paces all cores equally and
    /// would therefore mis-weigh the per-wall-clock counters) leaves the
    /// measured phase to adapt from the paper's initial 75 %/25 %
    /// partitioning.
    pub fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    /// The engine's tunables.
    pub fn params(&self) -> &AdaptiveParams {
        &self.params
    }

    /// Current quota (max blocks per set, Figure 4d) for `core`.
    #[inline]
    pub fn quota(&self, core: CoreId) -> u32 {
        self.quotas[core]
    }

    /// All quotas in core order.
    pub fn quotas(&self) -> Vec<u32> {
        self.quotas.iter().copied().collect()
    }

    /// Capacity of `core`'s private partition in blocks per set: the
    /// quota minus the guaranteed shared block, capped by the local
    /// slice's associativity.
    #[inline]
    pub fn private_capacity(&self, core: CoreId) -> u32 {
        self.quotas[core]
            .saturating_sub(self.params.shared_reserve)
            .min(self.local_assoc)
    }

    /// Records a hit in `core`'s private-LRU block (the loss estimator).
    #[inline]
    pub fn record_lru_hit(&mut self, core: CoreId) {
        self.lru_hits[core] += 1;
    }

    /// Records the eviction of a block fetched by `owner` from `set`
    /// (stores the tag in the owner's shadow register).
    #[inline]
    pub fn record_eviction(&mut self, set: usize, owner: CoreId, addr: BlockAddr) {
        self.shadow.record_eviction(set, owner, addr);
    }

    /// Observes a last-level miss: checks the requester's shadow tag (the
    /// gain estimator) and advances the re-evaluation period, possibly
    /// repartitioning. The returned [`MissObservation`] reports the
    /// shadow-tag outcome, whether a live epoch just closed, and the
    /// repartition if one happened.
    pub fn observe_miss(
        &mut self,
        set: usize,
        requester: CoreId,
        addr: BlockAddr,
    ) -> MissObservation {
        let before = self.shadow.hits(requester);
        self.shadow.check_miss(set, requester, addr);
        let shadow_hit = self.shadow.hits(requester) > before;
        self.misses_since_reeval += 1;
        let mut obs = MissObservation {
            shadow_hit,
            epoch_ended: false,
            repartition: None,
        };
        if self.misses_since_reeval >= self.params.reeval_period {
            self.misses_since_reeval = 0;
            if self.frozen {
                // Discard the distorted warm-phase estimates.
                self.shadow.reset_counters();
                for h in self.lru_hits.iter_mut() {
                    *h = 0;
                }
                return obs;
            }
            self.epochs += 1;
            obs.epoch_ended = true;
            obs.repartition = self.reevaluate();
        }
        obs
    }

    /// Number of completed (unfrozen) re-evaluation periods so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Raw shadow-tag hits this period for `core`.
    pub fn shadow_hits(&self, core: CoreId) -> u64 {
        self.shadow.hits(core)
    }

    /// LRU-block hits this period for `core`.
    pub fn lru_hits(&self, core: CoreId) -> u64 {
        self.lru_hits[core]
    }

    /// Whether `set` is monitored by shadow tags.
    pub fn monitors_set(&self, set: usize) -> bool {
        self.shadow.monitors(set)
    }

    /// Whether Algorithm 1 victim search is enabled.
    #[inline]
    pub fn use_algorithm1(&self) -> bool {
        self.params.use_algorithm1
    }

    /// History of quota transfers so far.
    pub fn repartitions(&self) -> &[Repartition] {
        &self.repartitions
    }

    /// Upper quota bound: every other core keeps at least one block/set.
    fn max_quota(&self) -> u32 {
        self.total_ways - (self.cores as u32 - 1)
    }

    fn reevaluate(&mut self) -> Option<Repartition> {
        // Gainer: highest normalized shadow-tag hits among cores that can
        // still grow.
        let max_quota = self.max_quota();
        let gainer = CoreId::all(self.cores)
            .filter(|c| self.quotas[*c] < max_quota)
            .max_by_key(|c| {
                (
                    self.shadow.normalized_hits(*c),
                    std::cmp::Reverse(c.index()),
                )
            });
        // Loser: lowest LRU-block hits among the remaining cores that can
        // still shrink (quota > 1: one shared block is always guaranteed).
        let result = gainer.and_then(|g| {
            let loser = CoreId::all(self.cores)
                .filter(|c| *c != g && self.quotas[*c] > 1)
                .min_by_key(|c| (self.lru_hits[*c], c.index()))?;
            let gain = self.shadow.normalized_hits(g);
            let loss = self.lru_hits[loser];
            if gain > loss {
                self.quotas[g] += 1;
                self.quotas[loser] -= 1;
                let r = Repartition {
                    gainer: g,
                    loser,
                    gain,
                    loss,
                };
                self.repartitions.push(r);
                Some(r)
            } else {
                None
            }
        });
        // "The counters are reset after each re-evaluation period."
        self.shadow.reset_counters();
        for h in self.lru_hits.iter_mut() {
            *h = 0;
        }
        result
    }

    /// Checks the quota invariant: quotas sum to the total ways and each
    /// lies in `[1, total_ways - cores + 1]`. Bool wrapper over
    /// [`Invariant::audit`], kept for test ergonomics.
    pub fn check_invariants(&self) -> bool {
        self.is_consistent()
    }

    /// Writes the quotas, estimator counters, shadow tags and
    /// repartition history to a snapshot. Parameters and geometry are
    /// reconstructed from configuration and are not encoded.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        for &q in self.quotas.iter() {
            w.put_u32(q);
        }
        for &h in self.lru_hits.iter() {
            w.put_u64(h);
        }
        self.shadow.save_state(w);
        w.put_u64(self.misses_since_reeval);
        w.put_usize(self.repartitions.len());
        for r in &self.repartitions {
            w.put_u8(r.gainer.asid());
            w.put_u8(r.loser.asid());
            w.put_u64(r.gain);
            w.put_u64(r.loss);
        }
        w.put_u64(self.epochs);
        w.put_bool(self.frozen);
    }

    /// Restores state written by [`save_state`](Self::save_state) into an
    /// engine built with the same geometry.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError`] on geometry mismatch or
    /// decode failure.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        for q in self.quotas.iter_mut() {
            *q = r.get_u32()?;
        }
        for h in self.lru_hits.iter_mut() {
            *h = r.get_u64()?;
        }
        self.shadow.load_state(r)?;
        self.misses_since_reeval = r.get_u64()?;
        let n = r.checked_len(2 + 8 + 8)?;
        self.repartitions.clear();
        for _ in 0..n {
            let gainer = CoreId::from_index(r.get_u8()?);
            let loser = CoreId::from_index(r.get_u8()?);
            let gain = r.get_u64()?;
            let loss = r.get_u64()?;
            self.repartitions.push(Repartition {
                gainer,
                loser,
                gain,
                loss,
            });
        }
        self.epochs = r.get_u64()?;
        self.frozen = r.get_bool()?;
        Ok(())
    }
}

impl Invariant for SharingEngine {
    fn component(&self) -> &'static str {
        "sharing-engine"
    }

    fn audit(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let sum: u32 = self.quotas.iter().sum();
        if sum != self.total_ways {
            out.push(Violation::new(
                self.component(),
                format!(
                    "quotas sum to {sum}, expected total ways {}",
                    self.total_ways
                ),
            ));
        }
        let max_quota = self.max_quota();
        for (i, &q) in self.quotas.iter().enumerate() {
            if !(1..=max_quota).contains(&q) {
                out.push(
                    Violation::new(self.component(), format!("quota outside [1, {max_quota}]"))
                        .for_core(i)
                        .with_quota(q),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u8) -> CoreId {
        CoreId::from_index(i)
    }

    fn engine(period: u64) -> SharingEngine {
        SharingEngine::new(
            64,
            4,
            16,
            4,
            AdaptiveParams {
                reeval_period: period,
                ..AdaptiveParams::default()
            },
        )
    }

    #[test]
    fn initial_partitioning_is_75_percent_private() {
        let eng = engine(2000);
        for i in 0..4 {
            assert_eq!(eng.quota(c(i)), 4);
            assert_eq!(eng.private_capacity(c(i)), 3);
        }
        assert!(eng.check_invariants());
    }

    #[test]
    fn gain_exceeding_loss_transfers_one_block() {
        let mut eng = engine(4);
        // Core 0 would gain a lot: give it shadow hits.
        for i in 0..3u64 {
            eng.record_eviction(0, c(0), BlockAddr::new(i));
            eng.observe_miss(0, c(0), BlockAddr::new(i));
        }
        // Core 3 has no LRU hits -> cheapest loser.
        eng.record_lru_hit(c(1));
        eng.record_lru_hit(c(2));
        // Fourth miss triggers re-evaluation.
        let r = eng
            .observe_miss(1, c(1), BlockAddr::new(99))
            .repartition
            .expect("repartition");
        assert_eq!(r.gainer, c(0));
        assert_eq!(r.loser, c(3));
        assert_eq!(eng.quota(c(0)), 5);
        assert_eq!(eng.quota(c(3)), 3);
        assert!(eng.check_invariants());
    }

    #[test]
    fn no_transfer_when_loss_dominates() {
        let mut eng = engine(2);
        // Everyone has many LRU hits, nobody has shadow hits.
        for i in 0..4 {
            for _ in 0..10 {
                eng.record_lru_hit(c(i));
            }
        }
        assert!(eng
            .observe_miss(0, c(0), BlockAddr::new(1))
            .repartition
            .is_none());
        assert!(eng
            .observe_miss(0, c(0), BlockAddr::new(2))
            .repartition
            .is_none());
        assert_eq!(eng.quotas(), vec![4, 4, 4, 4]);
    }

    #[test]
    fn counters_reset_each_period() {
        let mut eng = engine(2);
        eng.record_lru_hit(c(0));
        eng.record_eviction(0, c(1), BlockAddr::new(5));
        eng.observe_miss(0, c(1), BlockAddr::new(5));
        assert_eq!(eng.shadow_hits(c(1)), 1);
        // Period boundary.
        eng.observe_miss(0, c(2), BlockAddr::new(77));
        assert_eq!(eng.shadow_hits(c(1)), 0);
        assert_eq!(eng.lru_hits(c(0)), 0);
    }

    #[test]
    fn quota_never_drops_below_one() {
        let mut eng = engine(1);
        // Persistently favor core 0: every miss hits core 0's shadow tag.
        for round in 0..100u64 {
            eng.record_eviction(0, c(0), BlockAddr::new(round));
            eng.observe_miss(0, c(0), BlockAddr::new(round));
        }
        assert!(eng.check_invariants());
        for i in 1..4 {
            assert!(eng.quota(c(i)) >= 1);
        }
        assert_eq!(eng.quota(c(0)), 13, "core 0 absorbs all slack");
    }

    #[test]
    fn private_capacity_caps_at_local_assoc() {
        let mut eng = engine(1);
        for round in 0..100u64 {
            eng.record_eviction(0, c(0), BlockAddr::new(round));
            eng.observe_miss(0, c(0), BlockAddr::new(round));
        }
        assert_eq!(eng.quota(c(0)), 13);
        assert_eq!(
            eng.private_capacity(c(0)),
            4,
            "private part never exceeds the local slice"
        );
        assert_eq!(eng.private_capacity(c(3)), 0, "quota 1 = shared-only");
    }

    #[test]
    fn sampling_shift_reduces_monitored_sets() {
        let eng = SharingEngine::new(
            64,
            4,
            16,
            4,
            AdaptiveParams {
                shadow_sampling: SetSampling::LowestIndex { shift: 2 },
                ..AdaptiveParams::default()
            },
        );
        assert!(eng.monitors_set(0));
        assert!(!eng.monitors_set(16));
    }

    #[test]
    fn repartition_history_is_recorded() {
        let mut eng = engine(1);
        eng.record_eviction(0, c(2), BlockAddr::new(9));
        eng.observe_miss(0, c(2), BlockAddr::new(9));
        assert_eq!(eng.repartitions().len(), 1);
        assert_eq!(eng.repartitions()[0].gainer, c(2));
    }

    #[test]
    fn observation_reports_shadow_hits_and_epochs() {
        let mut eng = engine(2);
        eng.record_eviction(0, c(0), BlockAddr::new(5));
        let first = eng.observe_miss(0, c(0), BlockAddr::new(5));
        assert!(first.shadow_hit, "miss matching shadow tag is a gain tick");
        assert!(!first.epoch_ended);
        assert_eq!(eng.epochs(), 0);
        let second = eng.observe_miss(0, c(1), BlockAddr::new(7));
        assert!(!second.shadow_hit);
        assert!(second.epoch_ended, "period boundary closes an epoch");
        assert_eq!(eng.epochs(), 1);
    }

    #[test]
    fn frozen_period_boundary_is_not_an_epoch() {
        let mut eng = engine(2);
        eng.set_frozen(true);
        let _ = eng.observe_miss(0, c(0), BlockAddr::new(1));
        let obs = eng.observe_miss(0, c(0), BlockAddr::new(2));
        assert!(!obs.epoch_ended, "frozen boundaries do not count as epochs");
        assert_eq!(eng.epochs(), 0);
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn inconsistent_geometry_panics() {
        let _ = SharingEngine::new(64, 4, 16, 3, AdaptiveParams::default());
    }
}
