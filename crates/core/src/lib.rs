//! # Adaptive shared/private NUCA cache partitioning
//!
//! A from-scratch reproduction of *"An Adaptive Shared/Private NUCA Cache
//! Partitioning Scheme for Chip Multiprocessors"* (Dybdahl & Stenström,
//! HPCA 2007).
//!
//! The paper proposes a last-level (L3) cache for chip multiprocessors in
//! which each core owns a local slice split into a **private** partition
//! (fast, 14 cycles, inaccessible to other cores) and a contribution to a
//! chip-wide **shared** partition (19 cycles). A *sharing engine*
//! continuously estimates, per core,
//!
//! - the **gain** of one more block per set — misses whose address matches
//!   the core's *shadow tag* (the most recently evicted tag, Figure 4b),
//!   and
//! - the **loss** of one fewer block per set — hits in the core's
//!   private-LRU block (after Suh et al.),
//!
//! and every 2000 L3 misses moves one block-per-set of quota from the core
//! with the smallest loss to the core with the largest gain, if the gain
//! exceeds the loss. Replacement follows Algorithm 1: fills go to the
//! requester's private partition; the demoted private-LRU block enters the
//! shared partition, whose victim is the LRU-most block of any
//! *over-quota* core (falling back to the global LRU block). Repartitioning
//! is lazy: quota changes only steer future replacements.
//!
//! ## Crate layout
//!
//! - [`l3`] — the four last-level organizations the paper evaluates:
//!   [`l3::AdaptiveL3`] (the contribution), [`l3::PrivateL3`],
//!   [`l3::SharedL3`], and [`l3::CooperativeL3`] (Chang & Sohi's scheme as
//!   described in §4.7, "random replacement").
//! - [`engine`] — the sharing engine: per-core counters, shadow-tag
//!   integration and the re-evaluation rule.
//! - [`cmp`] — the four-core chip: cores, organization and memory bound
//!   together behind one `step`/`run` interface.
//! - [`experiment`] — the evaluation harness (mix runner, Figure 5
//!   classifier, Figure 3 sensitivity sweep).
//! - [`cost`] — the §2.7 storage-cost model (152 Kbits for the baseline).
//!
//! ## Quick start
//!
//! ```
//! use nuca_core::cmp::Cmp;
//! use nuca_core::l3::Organization;
//! use simcore::config::MachineConfig;
//! use tracegen::spec::SpecApp;
//! use tracegen::workload::WorkloadPool;
//!
//! let machine = MachineConfig::baseline();
//! let mix = WorkloadPool::random_mixes(&SpecApp::intensive_pool(), 4, 1, 42)
//!     .pop()
//!     .unwrap();
//! let mut cmp = Cmp::new(&machine, Organization::adaptive(), &mix, 42).unwrap();
//! cmp.run(20_000);
//! let result = cmp.snapshot();
//! assert_eq!(result.per_core.len(), 4);
//! ```

pub mod cmp;
pub mod cost;
pub mod engine;
pub mod experiment;
pub mod l3;

pub use cmp::{Cmp, CmpResult};
pub use engine::{AdaptiveParams, SharingEngine};
pub use l3::{AdaptiveL3, CooperativeL3, L3System, Organization, PrivateL3, SharedL3};
