//! The shared last-level organization: one LRU cache for all cores.
//!
//! Flexible — any core may use the whole 4 MBytes — but every hit costs
//! the full 19 cycles and nothing protects a core's working set from
//! being displaced by its neighbors (the pollution the paper's adaptive
//! scheme controls).

use cachesim::cache::Cache;
use cpusim::l3iface::{L3Outcome, L3Source, LastLevel};
use memsim::{MainMemory, MemoryStats};
use simcore::config::MachineConfig;
use simcore::invariant::{Invariant, Violation};
use simcore::types::{Address, CoreId, Cycle};
use telemetry::{Event, NullSink, Sink};

/// A single shared, LRU-replaced last-level cache.
#[derive(Debug)]
pub struct SharedL3<S: Sink = NullSink> {
    cache: Cache,
    latency: u64,
    memory: MainMemory,
    sink: S,
}

impl SharedL3 {
    /// Creates the untraced shared organization from the machine's L3
    /// geometry.
    pub fn new(cfg: &MachineConfig) -> Self {
        SharedL3::with_sink(cfg, NullSink)
    }
}

impl<S: Sink> SharedL3<S> {
    /// Creates the shared organization emitting telemetry into `sink`.
    pub fn with_sink(cfg: &MachineConfig, sink: S) -> Self {
        SharedL3 {
            cache: Cache::new(cfg.l3.shared),
            latency: cfg.l3.shared.latency(),
            memory: MainMemory::new(cfg.memory, cfg.l3.shared.block_bytes()),
            sink,
        }
    }

    /// The underlying cache (for inspection in tests).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Declares the memory bus idle (warm/timed boundary).
    pub fn quiesce(&mut self, now: Cycle) {
        self.memory.quiesce(now);
    }

    /// Memory-channel statistics.
    pub fn memory_stats(&self) -> MemoryStats {
        self.memory.stats()
    }

    /// The memory channel itself — used by the set-sampling estimator to
    /// charge phantom line fills so bus congestion stays fully modeled.
    pub(crate) fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// Resets statistics at the warm-up boundary.
    pub fn reset_stats(&mut self) {
        self.memory.reset_stats();
        self.cache.reset_stats();
    }

    /// Writes the cache contents and memory-bus state to a snapshot.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.cache.save_state(w);
        self.memory.save_state(w);
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError`] on geometry mismatch or
    /// decode failure.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        self.cache.load_state(r)?;
        self.memory.load_state(r)
    }
}

impl<S: Sink> Invariant for SharedL3<S> {
    fn component(&self) -> &'static str {
        "shared-l3"
    }

    fn audit(&self) -> Vec<Violation> {
        self.cache.audit()
    }
}

impl<S: Sink> LastLevel for SharedL3<S> {
    fn access(&mut self, core: CoreId, addr: Address, write: bool, now: Cycle) -> L3Outcome {
        if self.cache.access(addr, write, core).is_hit() {
            return L3Outcome {
                data_ready: now + self.latency,
                source: L3Source::RemoteHit,
            };
        }
        let resp = self.memory.request(now, false);
        if S::ENABLED {
            self.sink.emit(
                now,
                Event::MemoryFill {
                    core,
                    queue_delay: resp.queue_delay,
                },
            );
        }
        if let Some(ev) = self.cache.fill(addr, write, core) {
            if S::ENABLED {
                self.sink.emit(now, Event::Eviction { owner: ev.owner });
            }
            if ev.dirty {
                self.memory.writeback(now);
            }
        }
        L3Outcome {
            data_ready: resp.data_ready,
            source: L3Source::Memory,
        }
    }

    fn writeback(&mut self, core: CoreId, addr: Address, now: Cycle) {
        if self.cache.probe(addr) {
            self.cache.fill(addr, true, core);
        } else {
            self.memory.writeback(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SharedL3 {
        SharedL3::new(&MachineConfig::baseline())
    }

    fn c(i: u8) -> CoreId {
        CoreId::from_index(i)
    }

    #[test]
    fn every_hit_costs_19_cycles() {
        let mut s = sys();
        let a = Address::new(0x2000);
        s.access(c(0), a, false, Cycle::new(0));
        let out = s.access(c(0), a, false, Cycle::new(400));
        assert_eq!(out.source, L3Source::RemoteHit);
        assert_eq!(out.data_ready.raw(), 419);
    }

    #[test]
    fn miss_uses_shared_first_chunk() {
        let mut s = sys();
        let out = s.access(c(0), Address::new(0x2000), false, Cycle::new(0));
        assert_eq!(out.data_ready.raw(), 260);
        assert_eq!(out.source, L3Source::Memory);
    }

    #[test]
    fn capacity_is_shared_between_cores() {
        let mut s = sys();
        let a = Address::new(0x2000);
        s.access(c(0), a, false, Cycle::new(0));
        // Core 1 hits the block core 0 fetched (same address space in
        // this raw test; the CMP layer would tag with ASIDs).
        let out = s.access(c(1), a, false, Cycle::new(100));
        assert_eq!(out.source, L3Source::RemoteHit);
    }

    #[test]
    fn pollution_is_possible() {
        // A neighbor streaming over a set evicts core 0's block: the
        // situation the adaptive scheme prevents.
        let cfg = MachineConfig::baseline();
        let mut s = SharedL3::new(&cfg);
        let sets = cfg.l3.shared.sets();
        let a = Address::new(0x0);
        s.access(c(0), a, false, Cycle::new(0));
        for i in 1..=16u64 {
            let conflicting = Address::new(i * sets * 64); // same set, new tags
            s.access(c(1), conflicting, false, Cycle::new(i));
        }
        let out = s.access(c(0), a, false, Cycle::new(10_000));
        assert_eq!(out.source, L3Source::Memory, "block was polluted away");
    }

    #[test]
    fn writeback_paths() {
        let mut s = sys();
        let a = Address::new(0x2000);
        s.access(c(0), a, false, Cycle::new(0));
        let busy = s.memory_stats().busy_cycles;
        s.writeback(c(0), a, Cycle::new(50));
        assert_eq!(s.memory_stats().busy_cycles, busy);
        s.writeback(c(0), Address::new(0xdead000), Cycle::new(60));
        assert_eq!(s.memory_stats().busy_cycles, busy + 32);
    }
}
