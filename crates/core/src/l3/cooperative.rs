//! Chang & Sohi's cooperative caching, as the paper implements it for
//! comparison ("random replacement", Section 4.7).
//!
//! Private per-core slices; when a core evicts a block it fetched itself
//! (and the eviction was caused by its own access), the block spills into
//! a *randomly chosen* neighbor slice as MRU. A block that was itself
//! spilled earlier is not re-spilled ("it must earlier have been evicted
//! from cache *b*, and therefore it is not allocated again"), and a spill
//! victim is never forwarded anywhere ("to avoid ripple effects"). On a
//! local miss all neighbor slices are checked in parallel (19 cycles); a
//! remote hit migrates the block back to the local slice.

use cachesim::cache::Cache;
use cachesim::percore::PerCore;
use cpusim::l3iface::{L3Outcome, L3Source, LastLevel};
use memsim::{MainMemory, MemoryStats};
use simcore::config::MachineConfig;
use simcore::invariant::{Invariant, Violation};
use simcore::rng::SimRng;
use simcore::types::{Address, CoreId, Cycle};
use telemetry::{Event, NullSink, Sink};

/// Statistics specific to the cooperative scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CooperativeStats {
    /// Blocks spilled into a neighbor slice.
    pub spills: u64,
    /// Spill victims silently dropped (the no-ripple rule).
    pub ripple_drops: u64,
    /// Remote hits migrated back to the requester's slice.
    pub migrations: u64,
    /// Once-spilled blocks dropped instead of re-spilled.
    pub respill_drops: u64,
}

/// Cooperative caching over private slices with random spilling.
#[derive(Debug)]
pub struct CooperativeL3<S: Sink = NullSink> {
    slices: PerCore<Cache>,
    rng: SimRng,
    memory: MainMemory,
    cores: usize,
    local_latency: u64,
    neighbor_latency: u64,
    stats: CooperativeStats,
    sink: S,
}

impl CooperativeL3 {
    /// Builds the untraced cooperative organization.
    pub fn new(cfg: &MachineConfig, seed: u64) -> Self {
        CooperativeL3::with_sink(cfg, seed, NullSink)
    }
}

impl<S: Sink> CooperativeL3<S> {
    /// Builds the cooperative organization emitting telemetry into
    /// `sink`.
    pub fn with_sink(cfg: &MachineConfig, seed: u64, sink: S) -> Self {
        CooperativeL3 {
            slices: PerCore::from_fn(cfg.cores, |_| Cache::new(cfg.l3.private)),
            rng: SimRng::seed_from(seed ^ 0xc0de_cafe),
            memory: MainMemory::new(cfg.memory, cfg.l3.private.block_bytes()),
            cores: cfg.cores,
            local_latency: cfg.l3.private.latency(),
            neighbor_latency: cfg.l3.neighbor_latency,
            stats: CooperativeStats::default(),
            sink,
        }
    }

    /// Scheme-specific statistics.
    pub fn stats(&self) -> CooperativeStats {
        self.stats
    }

    /// Declares the memory bus idle (warm/timed boundary).
    pub fn quiesce(&mut self, now: Cycle) {
        self.memory.quiesce(now);
    }

    /// Memory-channel statistics.
    pub fn memory_stats(&self) -> MemoryStats {
        self.memory.stats()
    }

    /// The memory channel itself — used by the set-sampling estimator to
    /// charge phantom line fills so bus congestion stays fully modeled.
    pub(crate) fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// Resets statistics at the warm-up boundary.
    pub fn reset_stats(&mut self) {
        self.stats = CooperativeStats::default();
        self.memory.reset_stats();
        for s in self.slices.iter_mut() {
            s.reset_stats();
        }
    }

    /// Writes the slice contents, spill RNG, memory-bus state and
    /// statistics to a snapshot.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        for slice in self.slices.iter() {
            slice.save_state(w);
        }
        self.rng.save_state(w);
        self.memory.save_state(w);
        w.put_u64(self.stats.spills);
        w.put_u64(self.stats.ripple_drops);
        w.put_u64(self.stats.migrations);
        w.put_u64(self.stats.respill_drops);
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError`] on geometry mismatch or
    /// decode failure.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        for slice in self.slices.iter_mut() {
            slice.load_state(r)?;
        }
        self.rng.load_state(r)?;
        self.memory.load_state(r)?;
        self.stats.spills = r.get_u64()?;
        self.stats.ripple_drops = r.get_u64()?;
        self.stats.migrations = r.get_u64()?;
        self.stats.respill_drops = r.get_u64()?;
        Ok(())
    }

    fn random_neighbor(&mut self, of: CoreId) -> CoreId {
        let pick = self.rng.below(self.cores as u64 - 1) as usize;
        let idx = if pick >= of.index() { pick + 1 } else { pick };
        CoreId::from_index(idx as u8)
    }

    /// Applies the spill rules to a block evicted from `core`'s slice by
    /// `core`'s own access.
    fn handle_eviction(&mut self, core: CoreId, ev: cachesim::cache::EvictedBlock, now: Cycle) {
        let offset_bits = self.slices[core].geometry().offset_bits();
        if ev.owner == core {
            // Loaded by this core: spill to a random neighbor as MRU.
            let neighbor = self.random_neighbor(core);
            let addr = ev.addr.first_byte(offset_bits);
            self.stats.spills += 1;
            if S::ENABLED {
                self.sink.emit(
                    now,
                    Event::Spill {
                        from: core,
                        to: neighbor,
                    },
                );
            }
            if let Some(victim) = self.slices[neighbor].fill(addr, ev.dirty, ev.owner) {
                // The neighbor's displaced block is dropped — no ripple.
                self.stats.ripple_drops += 1;
                if S::ENABLED {
                    self.sink.emit(
                        now,
                        Event::Eviction {
                            owner: victim.owner,
                        },
                    );
                }
                if victim.dirty {
                    self.memory.writeback(now);
                }
            }
        } else {
            // A once-spilled block is not allocated again.
            self.stats.respill_drops += 1;
            if S::ENABLED {
                self.sink.emit(now, Event::Eviction { owner: ev.owner });
            }
            if ev.dirty {
                self.memory.writeback(now);
            }
        }
    }
}

impl<S: Sink> Invariant for CooperativeL3<S> {
    fn component(&self) -> &'static str {
        "cooperative-l3"
    }

    fn audit(&self) -> Vec<Violation> {
        self.slices
            .iter()
            .enumerate()
            .flat_map(|(i, slice)| {
                slice.audit().into_iter().map(move |mut v| {
                    v.core.get_or_insert(i);
                    v
                })
            })
            .collect()
    }
}

impl<S: Sink> LastLevel for CooperativeL3<S> {
    fn access(&mut self, core: CoreId, addr: Address, write: bool, now: Cycle) -> L3Outcome {
        if self.slices[core].access(addr, write, core).is_hit() {
            return L3Outcome {
                data_ready: now + self.local_latency,
                source: L3Source::LocalHit,
            };
        }
        // Check all neighbors in parallel.
        for i in 0..self.cores {
            let neighbor = CoreId::from_index(i as u8);
            if neighbor == core {
                continue;
            }
            if self.slices[neighbor].probe(addr) {
                // The probe just found the block, so invalidate returns it;
                // skip the neighbor defensively if the slice disagrees.
                let Some(meta) = self.slices[neighbor].invalidate(addr) else {
                    continue;
                };
                self.stats.migrations += 1;
                // Migrate home: the requester becomes the owner again.
                if let Some(ev) = self.slices[core].fill(addr, meta.dirty || write, core) {
                    self.handle_eviction(core, ev, now);
                }
                return L3Outcome {
                    data_ready: now + self.neighbor_latency,
                    source: L3Source::RemoteHit,
                };
            }
        }
        // Miss: fetch from memory (260-cycle first chunk — the global
        // lookup precedes the memory access).
        let resp = self.memory.request(now, false);
        if S::ENABLED {
            self.sink.emit(
                now,
                Event::MemoryFill {
                    core,
                    queue_delay: resp.queue_delay,
                },
            );
        }
        if let Some(ev) = self.slices[core].fill(addr, write, core) {
            self.handle_eviction(core, ev, now);
        }
        L3Outcome {
            data_ready: resp.data_ready,
            source: L3Source::Memory,
        }
    }

    fn writeback(&mut self, core: CoreId, addr: Address, now: Cycle) {
        for i in 0..self.cores {
            let c = CoreId::from_index(i as u8);
            if self.slices[c].probe(addr) {
                if let Some(owner) = self.slices[c].owner_of(addr) {
                    self.slices[c].fill(addr, true, owner);
                    return;
                }
            }
        }
        let _ = core;
        self.memory.writeback(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::config::MachineConfigBuilder;

    /// Tiny slices: 4 sets x 4 ways each, 4 cores.
    fn tiny() -> CooperativeL3 {
        let cfg = MachineConfigBuilder::new()
            .l3_capacity(4 * 4 * 4 * 64)
            .build()
            .unwrap();
        CooperativeL3::new(&cfg, 7)
    }

    fn c(i: u8) -> CoreId {
        CoreId::from_index(i)
    }

    /// Address in set `set` with tag `tag` for the tiny slices (4 sets).
    fn addr(set: u64, tag: u64, asid: u8) -> Address {
        Address::new((tag * 4 + set) * 64).with_asid(asid)
    }

    #[test]
    fn local_hit_is_fast() {
        let mut l3 = tiny();
        let a = addr(0, 1, 0);
        l3.access(c(0), a, false, Cycle::new(0));
        let out = l3.access(c(0), a, false, Cycle::new(1000));
        assert_eq!(out.source, L3Source::LocalHit);
        assert_eq!(out.data_ready.raw(), 1014);
    }

    #[test]
    fn eviction_spills_to_neighbor_and_remote_hit_migrates_back() {
        let mut l3 = tiny();
        // Fill set 0 of core 0's slice (4 ways) plus one more: the LRU
        // block spills to some neighbor.
        for t in 0..5u64 {
            l3.access(c(0), addr(0, t, 0), false, Cycle::new(t * 1000));
        }
        assert_eq!(l3.stats().spills, 1);
        // Tag 0 was evicted and spilled: a new access hits remotely.
        let out = l3.access(c(0), addr(0, 0, 0), false, Cycle::new(100_000));
        assert_eq!(out.source, L3Source::RemoteHit);
        assert_eq!(l3.stats().migrations, 1);
        // And it is now local again.
        let out = l3.access(c(0), addr(0, 0, 0), false, Cycle::new(200_000));
        assert_eq!(out.source, L3Source::LocalHit);
    }

    #[test]
    fn spilled_blocks_are_not_respilled() {
        let mut l3 = tiny();
        // Core 0 streams enough tags through set 0 that spilled blocks in
        // neighbor slices get evicted by further spills; those victims
        // must be dropped, not forwarded.
        for t in 0..64u64 {
            l3.access(c(0), addr(0, t, 0), false, Cycle::new(t * 1000));
        }
        let s = l3.stats();
        assert!(s.spills > 10);
        // Spill victims displaced by later spills are dropped without
        // rippling (counted either as ripple drops at fill time or as
        // respill drops when the owner differs).
        assert!(s.ripple_drops + s.respill_drops > 0);
    }

    #[test]
    fn neighbor_blocks_evicted_by_spills_do_not_ripple() {
        let mut l3 = tiny();
        // Give each neighbor slice a full set 0 so spills displace.
        for i in 1..4u8 {
            for t in 0..4u64 {
                l3.access(c(i), addr(0, 100 + t, i), false, Cycle::new(t));
            }
        }
        let before = l3.stats().spills;
        for t in 0..12u64 {
            l3.access(c(0), addr(0, t, 0), false, Cycle::new(10_000 + t * 1000));
        }
        let s = l3.stats();
        assert!(s.spills > before);
        assert!(s.ripple_drops > 0, "displaced neighbor blocks were dropped");
    }

    #[test]
    fn miss_pays_shared_first_chunk() {
        let mut l3 = tiny();
        let out = l3.access(c(0), addr(0, 0, 0), false, Cycle::new(0));
        assert_eq!(out.data_ready.raw(), 260);
    }

    #[test]
    fn writeback_finds_block_wherever_it_lives() {
        let mut l3 = tiny();
        for t in 0..5u64 {
            l3.access(c(0), addr(0, t, 0), false, Cycle::new(t * 1000));
        }
        // Tag 0 lives in a neighbor slice now; a writeback must not go to
        // memory.
        let busy = l3.memory_stats().busy_cycles;
        l3.writeback(c(0), addr(0, 0, 0), Cycle::new(50_000));
        assert_eq!(l3.memory_stats().busy_cycles, busy);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut l3 = tiny();
            for t in 0..100u64 {
                l3.access(
                    c((t % 4) as u8),
                    addr(t % 4, t / 4, (t % 4) as u8),
                    false,
                    Cycle::new(t * 10),
                );
            }
            l3.stats()
        };
        assert_eq!(run(), run());
    }
}
