//! The last-level cache organizations evaluated by the paper.
//!
//! All four organizations manage the same silicon — per-core slices that
//! together form the aggregate L3 capacity of Table 1 — but differ in who
//! may use which blocks:
//!
//! - [`PrivateL3`]: each core owns its slice outright (14-cycle hits,
//!   258-cycle memory); no sharing, no pollution, no flexibility.
//! - [`SharedL3`]: one big LRU cache used by everyone (19-cycle hits);
//!   flexible but slower and unprotected against pollution.
//! - [`CooperativeL3`]: Chang & Sohi's scheme as described in §4.7 —
//!   private slices that spill evicted blocks into a random neighbor,
//!   with uncontrolled sharing ("random replacement").
//! - [`AdaptiveL3`]: the paper's contribution — private slices with a
//!   controlled shared partition, quota-driven replacement (Algorithm 1)
//!   and the sharing engine adjusting quotas online.
//!
//! [`Organization`] describes which to build; [`L3System`] is the built
//! instance that plugs into the cores via
//! [`cpusim::l3iface::LastLevel`].

mod adaptive;
mod cooperative;
mod private;
mod sampled;
mod shared;

pub use adaptive::{AdaptiveL3, AdaptiveStats, OccupancyRow};
pub use cooperative::{CooperativeL3, CooperativeStats};
pub use private::PrivateL3;
pub use sampled::{SampledL3, SamplingReport};
pub use shared::SharedL3;

use cpusim::l3iface::{L3Outcome, LastLevel};
use memsim::MemoryStats;
use simcore::config::{CacheGeometry, MachineConfig};
use simcore::error::Result;
use simcore::invariant::{Invariant, Violation};
use simcore::types::{Address, CoreId, Cycle};
use telemetry::{NullSink, Sink};

use crate::engine::AdaptiveParams;

/// Which last-level organization to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Organization {
    /// Per-core private slices (Table 1: 1 MByte 4-way, 14 cycles).
    Private,
    /// Private slices with `factor` times the capacity — the "4 x size
    /// private" yardstick of Figures 7–9 (same timing model).
    PrivateScaled {
        /// Capacity multiplier per slice.
        factor: u64,
    },
    /// Private slices with an explicit geometry (used by the Figure 3
    /// blocks-per-set sweep).
    PrivateCustom {
        /// Slice geometry.
        geometry: CacheGeometry,
    },
    /// One shared LRU cache (Table 1: 4 MByte 16-way, 19 cycles).
    Shared,
    /// The paper's adaptive shared/private NUCA scheme.
    Adaptive(AdaptiveParams),
    /// Chang & Sohi's cooperative caching ("random replacement", §4.7).
    Cooperative {
        /// Seed for the random neighbor choice.
        seed: u64,
    },
}

impl Organization {
    /// The adaptive scheme with the paper's default parameters.
    pub fn adaptive() -> Self {
        Organization::Adaptive(AdaptiveParams::default())
    }

    /// A short label for tables ("private", "shared", "adaptive", ...).
    pub fn label(&self) -> &'static str {
        match self {
            Organization::Private => "private",
            Organization::PrivateScaled { .. } => "private-scaled",
            Organization::PrivateCustom { .. } => "private-custom",
            Organization::Shared => "shared",
            Organization::Adaptive(_) => "adaptive",
            Organization::Cooperative { .. } => "cooperative",
        }
    }
}

/// A built last-level cache system: the organization plus the main-memory
/// channel behind it.
///
/// Exactly one `L3System` exists per simulated chip, so the size
/// difference between variants is irrelevant.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum L3System<S: Sink = NullSink> {
    /// Private slices.
    Private(PrivateL3<S>),
    /// One shared cache.
    Shared(SharedL3<S>),
    /// The adaptive scheme.
    Adaptive(AdaptiveL3<S>),
    /// Cooperative caching.
    Cooperative(CooperativeL3<S>),
    /// Any of the above behind the set-sampling estimator (built when
    /// [`simcore::config::L3Config::sample_shift`] is set).
    Sampled(SampledL3<S>),
}

impl L3System {
    /// Builds the untraced organization for the given machine.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if derived geometries are invalid
    /// (e.g. a scaled capacity that is not a power-of-two set count).
    pub fn build(org: Organization, cfg: &MachineConfig) -> Result<Self> {
        L3System::build_with_sink(org, cfg, NullSink)
    }
}

impl<S: Sink> L3System<S> {
    /// Builds the organization emitting telemetry into `sink`.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if derived geometries are invalid
    /// (e.g. a scaled capacity that is not a power-of-two set count).
    pub fn build_with_sink(org: Organization, cfg: &MachineConfig, sink: S) -> Result<Self> {
        let built = match org {
            Organization::Private => {
                L3System::Private(PrivateL3::with_sink(cfg, cfg.l3.private, sink))
            }
            Organization::PrivateScaled { factor } => {
                let geom = cfg.l3.private.scaled_capacity(factor)?;
                L3System::Private(PrivateL3::with_sink(cfg, geom, sink))
            }
            Organization::PrivateCustom { geometry } => {
                L3System::Private(PrivateL3::with_sink(cfg, geometry, sink))
            }
            Organization::Shared => L3System::Shared(SharedL3::with_sink(cfg, sink)),
            Organization::Adaptive(params) => {
                L3System::Adaptive(AdaptiveL3::with_sink(cfg, params, sink))
            }
            Organization::Cooperative { seed } => {
                L3System::Cooperative(CooperativeL3::with_sink(cfg, seed, sink))
            }
        };
        Ok(match cfg.l3.sample_shift {
            Some(shift) => L3System::Sampled(SampledL3::new(Box::new(built), cfg, shift)),
            None => built,
        })
    }

    /// The adaptive instance, when this system is adaptive (looking
    /// through the sampling wrapper if present).
    pub fn as_adaptive(&self) -> Option<&AdaptiveL3<S>> {
        match self {
            L3System::Adaptive(a) => Some(a),
            L3System::Sampled(s) => s.inner().as_adaptive(),
            _ => None,
        }
    }

    /// The cooperative instance, when this system is cooperative
    /// (looking through the sampling wrapper if present).
    pub fn as_cooperative(&self) -> Option<&CooperativeL3<S>> {
        match self {
            L3System::Cooperative(c) => Some(c),
            L3System::Sampled(s) => s.inner().as_cooperative(),
            _ => None,
        }
    }

    /// The set-sampling accuracy report, when sampling is active.
    pub fn sampling_report(&self) -> Option<SamplingReport> {
        match self {
            L3System::Sampled(s) => Some(s.report()),
            _ => None,
        }
    }

    /// Issues a real line fill on the organization's memory bus without
    /// touching any cache state, returning when the data would arrive.
    /// The set-sampling estimator charges one of these for every
    /// estimated access it attributes to memory, so bus occupancy and
    /// queueing stay fully modeled even though 15/16 of the sets are
    /// never simulated — without this, sampled runs of bus-bound mixes
    /// overestimate IPC by integer factors.
    pub(crate) fn phantom_memory_fill(&mut self, now: Cycle) -> Cycle {
        match self {
            L3System::Private(x) => x.memory_mut().request(now, true).data_ready,
            L3System::Shared(x) => x.memory_mut().request(now, false).data_ready,
            L3System::Adaptive(x) => x.memory_mut().request(now, false).data_ready,
            L3System::Cooperative(x) => x.memory_mut().request(now, false).data_ready,
            L3System::Sampled(x) => x.inner_mut().phantom_memory_fill(now),
        }
    }

    /// Memory-channel statistics.
    pub fn memory_stats(&self) -> MemoryStats {
        match self {
            L3System::Private(x) => x.memory_stats(),
            L3System::Shared(x) => x.memory_stats(),
            L3System::Adaptive(x) => x.memory_stats(),
            L3System::Cooperative(x) => x.memory_stats(),
            L3System::Sampled(x) => x.memory_stats(),
        }
    }

    /// Freezes or unfreezes adaptive-quota re-evaluation (no-op for
    /// non-adaptive organizations).
    pub fn set_adaptation_frozen(&mut self, frozen: bool) {
        match self {
            L3System::Adaptive(a) => a.set_adaptation_frozen(frozen),
            L3System::Sampled(s) => {
                // The warm phase's inflated queueing latencies must not
                // calibrate the estimator either.
                s.set_calibration_frozen(frozen);
                s.inner_mut().set_adaptation_frozen(frozen);
            }
            _ => {}
        }
    }

    /// Declares the memory bus idle as of `now` — call after functional
    /// warm-up so the timed phase starts uncongested.
    pub fn quiesce(&mut self, now: Cycle) {
        match self {
            L3System::Private(x) => x.quiesce(now),
            L3System::Shared(x) => x.quiesce(now),
            L3System::Adaptive(x) => x.quiesce(now),
            L3System::Cooperative(x) => x.quiesce(now),
            L3System::Sampled(x) => x.inner_mut().quiesce(now),
        }
    }

    /// Writes the organization's full state to a snapshot, prefixed by a
    /// variant discriminant so a restore into a different organization
    /// fails loudly instead of mis-decoding.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        match self {
            L3System::Private(x) => {
                w.put_u8(0);
                x.save_state(w);
            }
            L3System::Shared(x) => {
                w.put_u8(1);
                x.save_state(w);
            }
            L3System::Adaptive(x) => {
                w.put_u8(2);
                x.save_state(w);
            }
            L3System::Cooperative(x) => {
                w.put_u8(3);
                x.save_state(w);
            }
            L3System::Sampled(x) => {
                w.put_u8(4);
                x.save_state(w);
            }
        }
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// freshly built system of the same organization and geometry.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] when the snapshot
    /// was taken from a different organization variant or geometry;
    /// decode errors otherwise.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> std::result::Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::SnapshotError;
        let tag = r.get_u8()?;
        match (tag, self) {
            (0, L3System::Private(x)) => x.load_state(r),
            (1, L3System::Shared(x)) => x.load_state(r),
            (2, L3System::Adaptive(x)) => x.load_state(r),
            (3, L3System::Cooperative(x)) => x.load_state(r),
            (4, L3System::Sampled(x)) => x.load_state(r),
            (0..=4, _) => Err(SnapshotError::Mismatch("L3 organization variant")),
            _ => Err(SnapshotError::Corrupt("unknown L3 organization tag")),
        }
    }

    /// Resets memory statistics at the warm-up boundary.
    pub fn reset_stats(&mut self) {
        match self {
            L3System::Private(x) => x.reset_stats(),
            L3System::Shared(x) => x.reset_stats(),
            L3System::Adaptive(x) => x.reset_stats(),
            L3System::Cooperative(x) => x.reset_stats(),
            L3System::Sampled(x) => x.reset_stats(),
        }
    }
}

impl<S: Sink> Invariant for L3System<S> {
    fn component(&self) -> &'static str {
        match self {
            L3System::Private(x) => x.component(),
            L3System::Shared(x) => x.component(),
            L3System::Adaptive(x) => x.component(),
            L3System::Cooperative(x) => x.component(),
            L3System::Sampled(x) => x.component(),
        }
    }

    fn audit(&self) -> Vec<Violation> {
        match self {
            L3System::Private(x) => x.audit(),
            L3System::Shared(x) => x.audit(),
            L3System::Adaptive(x) => x.audit(),
            L3System::Cooperative(x) => x.audit(),
            L3System::Sampled(x) => x.audit(),
        }
    }
}

impl<S: Sink> LastLevel for L3System<S> {
    fn access(&mut self, core: CoreId, addr: Address, write: bool, now: Cycle) -> L3Outcome {
        match self {
            L3System::Private(x) => x.access(core, addr, write, now),
            L3System::Shared(x) => x.access(core, addr, write, now),
            L3System::Adaptive(x) => x.access(core, addr, write, now),
            L3System::Cooperative(x) => x.access(core, addr, write, now),
            L3System::Sampled(x) => x.access(core, addr, write, now),
        }
    }

    fn writeback(&mut self, core: CoreId, addr: Address, now: Cycle) {
        match self {
            L3System::Private(x) => x.writeback(core, addr, now),
            L3System::Shared(x) => x.writeback(core, addr, now),
            L3System::Adaptive(x) => x.writeback(core, addr, now),
            L3System::Cooperative(x) => x.writeback(core, addr, now),
            L3System::Sampled(x) => x.writeback(core, addr, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_every_organization() {
        let cfg = MachineConfig::baseline();
        for org in [
            Organization::Private,
            Organization::PrivateScaled { factor: 4 },
            Organization::Shared,
            Organization::adaptive(),
            Organization::Cooperative { seed: 1 },
        ] {
            let sys = L3System::build(org, &cfg).unwrap();
            // Smoke: one access works and reaches memory the first time.
            let mut sys = sys;
            let out = sys.access(
                CoreId::from_index(0),
                Address::new(0x40_0000),
                false,
                Cycle::new(0),
            );
            assert!(
                out.data_ready.raw() >= 258,
                "{}: cold miss goes to memory",
                org.label()
            );
            assert_eq!(sys.memory_stats().requests, 1);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Organization::Private.label(),
            Organization::Shared.label(),
            Organization::adaptive().label(),
            Organization::Cooperative { seed: 0 }.label(),
            Organization::PrivateScaled { factor: 4 }.label(),
        ];
        let mut uniq = labels.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), labels.len());
    }
}
