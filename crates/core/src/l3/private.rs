//! The private last-level organization: one isolated slice per core.
//!
//! The baseline the paper compares everything against: "the performance of
//! such an organization is quite predictable and well understood". Hits
//! cost 14 cycles; misses go straight to memory with the 258-cycle first
//! chunk (two cycles less than the shared organizations, which must
//! complete a global lookup first).

use cachesim::cache::Cache;
use cachesim::percore::PerCore;
use cpusim::l3iface::{L3Outcome, L3Source, LastLevel};
use memsim::{MainMemory, MemoryStats};
use simcore::config::{CacheGeometry, MachineConfig};
use simcore::invariant::{Invariant, Violation};
use simcore::types::{Address, CoreId, Cycle};
use telemetry::{Event, NullSink, Sink};

/// Per-core private last-level slices.
///
/// Also used (with a scaled or custom geometry) for the "4 x size private"
/// yardstick of Figures 7–9 and the Figure 3 blocks-per-set sweep.
#[derive(Debug)]
pub struct PrivateL3<S: Sink = NullSink> {
    slices: PerCore<Cache>,
    latency: u64,
    memory: MainMemory,
    sink: S,
}

impl PrivateL3 {
    /// Creates untraced private slices with the given per-slice geometry.
    pub fn new(cfg: &MachineConfig, slice_geometry: CacheGeometry) -> Self {
        PrivateL3::with_sink(cfg, slice_geometry, NullSink)
    }
}

impl<S: Sink> PrivateL3<S> {
    /// Creates private slices emitting telemetry into `sink`.
    pub fn with_sink(cfg: &MachineConfig, slice_geometry: CacheGeometry, sink: S) -> Self {
        PrivateL3 {
            slices: PerCore::from_fn(cfg.cores, |_| Cache::new(slice_geometry)),
            latency: slice_geometry.latency(),
            memory: MainMemory::new(cfg.memory, slice_geometry.block_bytes()),
            sink,
        }
    }

    /// The slice belonging to `core` (for inspection in tests).
    pub fn slice(&self, core: CoreId) -> &Cache {
        &self.slices[core]
    }

    /// Declares the memory bus idle (warm/timed boundary).
    pub fn quiesce(&mut self, now: Cycle) {
        self.memory.quiesce(now);
    }

    /// Memory-channel statistics.
    pub fn memory_stats(&self) -> MemoryStats {
        self.memory.stats()
    }

    /// The memory channel itself — used by the set-sampling estimator to
    /// charge phantom line fills so bus congestion stays fully modeled.
    pub(crate) fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// Resets statistics at the warm-up boundary.
    pub fn reset_stats(&mut self) {
        self.memory.reset_stats();
        for s in self.slices.iter_mut() {
            s.reset_stats();
        }
    }

    /// Writes the slice contents and memory-bus state to a snapshot.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        for slice in self.slices.iter() {
            slice.save_state(w);
        }
        self.memory.save_state(w);
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError`] on geometry mismatch or
    /// decode failure.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        for slice in self.slices.iter_mut() {
            slice.load_state(r)?;
        }
        self.memory.load_state(r)
    }
}

impl<S: Sink> Invariant for PrivateL3<S> {
    fn component(&self) -> &'static str {
        "private-l3"
    }

    fn audit(&self) -> Vec<Violation> {
        self.slices
            .iter()
            .enumerate()
            .flat_map(|(i, slice)| {
                slice.audit().into_iter().map(move |mut v| {
                    v.core.get_or_insert(i);
                    v
                })
            })
            .collect()
    }
}

impl<S: Sink> LastLevel for PrivateL3<S> {
    fn access(&mut self, core: CoreId, addr: Address, write: bool, now: Cycle) -> L3Outcome {
        let slice = &mut self.slices[core];
        if slice.access(addr, write, core).is_hit() {
            return L3Outcome {
                data_ready: now + self.latency,
                source: L3Source::LocalHit,
            };
        }
        let resp = self.memory.request(now, true);
        if S::ENABLED {
            self.sink.emit(
                now,
                Event::MemoryFill {
                    core,
                    queue_delay: resp.queue_delay,
                },
            );
        }
        if let Some(ev) = self.slices[core].fill(addr, write, core) {
            if S::ENABLED {
                self.sink.emit(now, Event::Eviction { owner: ev.owner });
            }
            if ev.dirty {
                self.memory.writeback(now);
            }
        }
        L3Outcome {
            data_ready: resp.data_ready,
            source: L3Source::Memory,
        }
    }

    fn writeback(&mut self, core: CoreId, addr: Address, now: Cycle) {
        let slice = &mut self.slices[core];
        if slice.probe(addr) {
            slice.fill(addr, true, core); // merge the dirty bit
        } else {
            self.memory.writeback(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> PrivateL3 {
        let cfg = MachineConfig::baseline();
        PrivateL3::new(&cfg, cfg.l3.private)
    }

    fn c(i: u8) -> CoreId {
        CoreId::from_index(i)
    }

    #[test]
    fn hit_costs_14_cycles() {
        let mut p = sys();
        let a = Address::new(0x1000);
        p.access(c(0), a, false, Cycle::new(0));
        let out = p.access(c(0), a, false, Cycle::new(500));
        assert_eq!(out.source, L3Source::LocalHit);
        assert_eq!(out.data_ready.raw(), 514);
    }

    #[test]
    fn miss_uses_private_first_chunk() {
        let mut p = sys();
        let out = p.access(c(0), Address::new(0x1000), false, Cycle::new(0));
        assert_eq!(out.source, L3Source::Memory);
        assert_eq!(out.data_ready.raw(), 258);
    }

    #[test]
    fn slices_are_isolated() {
        let mut p = sys();
        let a = Address::new(0x1000);
        p.access(c(0), a, false, Cycle::new(0));
        // Same address from core 1 misses: no sharing whatsoever.
        let out = p.access(c(1), a, false, Cycle::new(500));
        assert_eq!(out.source, L3Source::Memory);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = MachineConfig::baseline();
        // Tiny slice: 1 set x 2 ways.
        let geom = CacheGeometry::new(128, 2, 64, 14).unwrap();
        let mut p = PrivateL3::new(&cfg, geom);
        p.access(c(0), Address::new(0x000), true, Cycle::new(0));
        p.access(c(0), Address::new(0x040), false, Cycle::new(1000));
        let before = p.memory_stats().busy_cycles;
        p.access(c(0), Address::new(0x080), false, Cycle::new(2000)); // evicts dirty 0x000
        assert!(
            p.memory_stats().busy_cycles > before + 32,
            "writeback occupied the bus"
        );
    }

    #[test]
    fn l2_writeback_to_absent_block_goes_to_memory() {
        let mut p = sys();
        let before = p.memory_stats().busy_cycles;
        p.writeback(c(0), Address::new(0x9000), Cycle::new(0));
        assert_eq!(p.memory_stats().busy_cycles, before + 32);
    }

    #[test]
    fn l2_writeback_to_resident_block_stays_on_chip() {
        let mut p = sys();
        let a = Address::new(0x1000);
        p.access(c(0), a, false, Cycle::new(0));
        let busy = p.memory_stats().busy_cycles;
        p.writeback(c(0), a, Cycle::new(100));
        assert_eq!(p.memory_stats().busy_cycles, busy, "no bus traffic");
    }
}
