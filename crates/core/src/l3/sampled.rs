//! Set-sampled last-level simulation with SMARTS-style error bounds.
//!
//! [`SampledL3`] wraps any built [`L3System`] and simulates only a
//! `1/2^shift` subset of the last-level sets in full detail. Accesses to
//! sampled sets go straight through to the wrapped organization; accesses
//! to unsampled sets are charged a *calibrated estimate* instead of being
//! simulated:
//!
//! - **Source attribution** is proportional: the estimator tracks how
//!   many sampled accesses resolved locally / remotely / in memory and
//!   deals unsampled accesses to the three sources so the attributed
//!   distribution follows the sampled one (a deterministic
//!   largest-remainder draw — no randomness, so runs stay bit-identical
//!   across reruns and job counts).
//! - **Hit latency** is the running integer mean of sampled latencies
//!   for the attributed source (before any sampled hit has calibrated
//!   it, the fallback is the neighbor-partition latency).
//! - **Memory-attributed estimates charge the real bus**: they issue a
//!   phantom line fill on the wrapped organization's memory channel, so
//!   occupancy and queueing congestion — the dominant timing effect in
//!   memory-bound mixes — stay fully modeled; only the cache lookup
//!   itself is skipped.
//! - **Writebacks** to unsampled sets are dropped — the blocks they
//!   would dirty are never simulated.
//!
//! Set membership is decided in the *shared-geometry index frame*
//! (the aggregate L3's set bits) regardless of which organization is
//! wrapped, so every organization samples the same address sub-space and
//! cross-organization comparisons stay apples-to-apples.
//!
//! The error model follows SMARTS (Wunderlich et al., ISCA 2003):
//! sampled latencies are accumulated as integer sum and sum of squares,
//! and [`SamplingReport`] derives the standard error of the mean and a
//! 95 % confidence half-width at reporting time — the only place floats
//! appear. `shift = 0` yields full membership: every access is forwarded
//! and results are bit-identical to the unwrapped organization, which is
//! what the differential tests pin.

use cachesim::shadow::SetSampling;
use cpusim::l3iface::{L3Outcome, L3Source, LastLevel};
use memsim::MemoryStats;
use simcore::config::MachineConfig;
use simcore::invariant::{Invariant, Violation};
use simcore::types::{Address, CoreId, Cycle};
use telemetry::{NullSink, Sink};

use super::L3System;

/// `L3Source` as a dense index: local, remote, memory.
const SOURCES: [L3Source; 3] = [L3Source::LocalHit, L3Source::RemoteHit, L3Source::Memory];

const fn source_index(source: L3Source) -> usize {
    match source {
        L3Source::LocalHit => 0,
        L3Source::RemoteHit => 1,
        L3Source::Memory => 2,
    }
}

/// Accuracy summary of one set-sampled measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingReport {
    /// The configured shift: `1/2^shift` of the sets are simulated.
    pub shift: u32,
    /// Number of sets simulated in full detail.
    pub sampled_sets: u64,
    /// Total last-level sets in the shared-geometry frame.
    pub total_sets: u64,
    /// Accesses that hit a sampled set (simulated fully).
    pub sampled_accesses: u64,
    /// Accesses charged the calibrated estimate.
    pub estimated_accesses: u64,
    /// Mean simulated latency over the window's sampled accesses.
    pub mean_latency: f64,
    /// SMARTS standard error of that mean.
    pub std_error: f64,
    /// Relative 95 % confidence half-width: `1.96 * std_error /
    /// mean_latency` (0 when no sampled accesses were observed).
    pub relative_error: f64,
}

/// A set-sampling wrapper around a built last-level organization (see
/// the module docs for the estimation model).
#[derive(Debug)]
pub struct SampledL3<S: Sink = NullSink> {
    inner: Box<L3System<S>>,
    /// Shared-frame membership: `membership[set]` ⇔ simulate fully.
    membership: Vec<bool>,
    offset_bits: u32,
    index_mask: u64,
    shift: u32,
    sampled_sets: u64,
    /// Cold-start latency estimate: a memory round trip.
    cold_latency: u64,
    /// Cold-start estimate for an attributed hit before any sampled hit
    /// has calibrated the mean: the neighbor/shared-partition latency.
    hit_fallback: u64,
    /// While set (the functional warm phase), sampled latencies are NOT
    /// recorded into the calibration: warm-up paces one instruction per
    /// core per cycle, far above bus bandwidth, so its `data_ready`
    /// values carry an unbounded queueing backlog that the full
    /// simulation discards — calibrating on them would poison the timed
    /// phase's estimates.
    calibration_frozen: bool,
    /// Calibration accumulators, per source — cumulative across the
    /// whole run so estimates stay warm over the reset boundary.
    counts: [u64; 3],
    lat_sum: [u64; 3],
    /// How many estimates each source has absorbed (largest-remainder
    /// state).
    attributed: [u64; 3],
    /// Window counters, reset at the warm-up boundary.
    window_sampled: u64,
    window_estimated: u64,
    window_lat_sum: u64,
    window_lat_sq: u128,
}

impl<S: Sink> SampledL3<S> {
    /// Fixed seed for the membership draw: the sampled-set selection is
    /// part of the simulator's definition, not of any experiment, so it
    /// never varies with the experiment seed.
    const MEMBERSHIP_SEED: u64 = 0x54e7_5a3b;

    /// Wraps `inner`, sampling `1/2^shift` of the sets of `cfg`'s shared
    /// L3 geometry. Membership is a seeded uniform draw rather than a
    /// lowest-index prefix: trace address streams are structured, so a
    /// contiguous prefix of sets is *not* representative of the whole
    /// index space (its hit rate is biased), while a spread selection
    /// keeps the sampled miss rate tracking the true one.
    pub fn new(inner: Box<L3System<S>>, cfg: &MachineConfig, shift: u32) -> Self {
        let sets = cfg.l3.shared.sets() as usize;
        let membership = SetSampling::Random {
            shift,
            seed: Self::MEMBERSHIP_SEED,
        }
        .membership(sets);
        let sampled_sets = membership.iter().filter(|&&m| m).count() as u64;
        SampledL3 {
            inner,
            membership,
            offset_bits: cfg.l3.shared.offset_bits(),
            index_mask: (1u64 << cfg.l3.shared.index_bits()) - 1,
            shift,
            sampled_sets,
            cold_latency: cfg.memory.first_chunk_shared,
            hit_fallback: cfg.l3.neighbor_latency,
            calibration_frozen: false,
            counts: [0; 3],
            lat_sum: [0; 3],
            attributed: [0; 3],
            window_sampled: 0,
            window_estimated: 0,
            window_lat_sum: 0,
            window_lat_sq: 0,
        }
    }

    /// The wrapped organization.
    pub fn inner(&self) -> &L3System<S> {
        &self.inner
    }

    /// The wrapped organization, mutably.
    pub fn inner_mut(&mut self) -> &mut L3System<S> {
        &mut self.inner
    }

    /// The configured sampling shift.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Freezes or unfreezes latency calibration (see the field docs —
    /// driven by the chip's warm phase, in step with quota freezing).
    pub fn set_calibration_frozen(&mut self, frozen: bool) {
        self.calibration_frozen = frozen;
    }

    #[inline]
    fn sampled(&self, addr: Address) -> bool {
        let set = (addr.block(self.offset_bits).raw() & self.index_mask) as usize;
        self.membership[set]
    }

    /// Deterministic largest-remainder draw: attribute the next estimate
    /// to the source with the largest deficit between its sampled share
    /// and its attributed share (ties break toward the lower index, i.e.
    /// faster sources).
    fn pick_source(&self) -> usize {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return source_index(L3Source::Memory);
        }
        let drawn: u64 = self.attributed.iter().sum::<u64>() + 1;
        let mut best = 0usize;
        let mut best_deficit = i128::MIN;
        for s in 0..SOURCES.len() {
            // counts[s]/total - attributed[s]/drawn, scaled by total*drawn.
            let deficit = (self.counts[s] as i128) * (drawn as i128)
                - (self.attributed[s] as i128) * (total as i128);
            if deficit > best_deficit {
                best_deficit = deficit;
                best = s;
            }
        }
        best
    }

    /// Resets the window accuracy counters (calibration carries over).
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.window_sampled = 0;
        self.window_estimated = 0;
        self.window_lat_sum = 0;
        self.window_lat_sq = 0;
    }

    /// Memory-channel statistics of the wrapped organization.
    pub fn memory_stats(&self) -> MemoryStats {
        self.inner.memory_stats()
    }

    /// Writes the wrapped organization plus the estimator's calibration
    /// and window accumulators to a snapshot. Membership and the
    /// config-derived fallback latencies are reconstructed from
    /// configuration and are not encoded — restoring under different
    /// hit/memory latencies keeps the new configuration's fallbacks.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        self.inner.save_state(w);
        w.put_bool(self.calibration_frozen);
        for s in 0..SOURCES.len() {
            w.put_u64(self.counts[s]);
            w.put_u64(self.lat_sum[s]);
            w.put_u64(self.attributed[s]);
        }
        w.put_u64(self.window_sampled);
        w.put_u64(self.window_estimated);
        w.put_u64(self.window_lat_sum);
        w.put_u128(self.window_lat_sq);
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// wrapper built with the same shift over the same inner geometry.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError`] on organization or geometry
    /// mismatch, or decode failure.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        self.inner.load_state(r)?;
        self.calibration_frozen = r.get_bool()?;
        for s in 0..SOURCES.len() {
            self.counts[s] = r.get_u64()?;
            self.lat_sum[s] = r.get_u64()?;
            self.attributed[s] = r.get_u64()?;
        }
        self.window_sampled = r.get_u64()?;
        self.window_estimated = r.get_u64()?;
        self.window_lat_sum = r.get_u64()?;
        self.window_lat_sq = r.get_u128()?;
        Ok(())
    }

    /// Accuracy summary of the current window.
    pub fn report(&self) -> SamplingReport {
        let n = self.window_sampled;
        let mean = if n > 0 {
            self.window_lat_sum as f64 / n as f64
        } else {
            0.0
        };
        let std_error = if n > 1 {
            let sum = self.window_lat_sum as f64;
            let sq = self.window_lat_sq as f64;
            let var = ((sq - sum * sum / n as f64) / (n as f64 - 1.0)).max(0.0);
            (var / n as f64).sqrt()
        } else {
            0.0
        };
        let relative_error = if mean > 0.0 {
            1.96 * std_error / mean
        } else {
            0.0
        };
        SamplingReport {
            shift: self.shift,
            sampled_sets: self.sampled_sets,
            total_sets: self.membership.len() as u64,
            sampled_accesses: self.window_sampled,
            estimated_accesses: self.window_estimated,
            mean_latency: mean,
            std_error,
            relative_error,
        }
    }
}

impl<S: Sink> LastLevel for SampledL3<S> {
    fn access(&mut self, core: CoreId, addr: Address, write: bool, now: Cycle) -> L3Outcome {
        if self.sampled(addr) {
            let out = self.inner.access(core, addr, write, now);
            if !self.calibration_frozen {
                let lat = out.data_ready.since(now);
                let s = source_index(out.source);
                self.counts[s] += 1;
                self.lat_sum[s] += lat;
                self.window_sampled += 1;
                self.window_lat_sum += lat;
                self.window_lat_sq += (lat as u128) * (lat as u128);
            }
            out
        } else if self.calibration_frozen {
            // Warm phase: timing is discarded and the bus is quiesced at
            // the warm/timed boundary, so skip attribution and bus
            // charging and return the flat fallback.
            L3Outcome {
                data_ready: now + self.cold_latency,
                source: L3Source::Memory,
            }
        } else {
            let s = self.pick_source();
            self.attributed[s] += 1;
            self.window_estimated += 1;
            let source = SOURCES[s];
            let data_ready = if source == L3Source::Memory {
                // A real bus transaction: exact occupancy and queueing,
                // only the cache lookup itself is skipped.
                self.inner.phantom_memory_fill(now)
            } else {
                let lat = self.lat_sum[s]
                    .checked_div(self.counts[s])
                    .unwrap_or(self.hit_fallback);
                now + lat
            };
            L3Outcome { data_ready, source }
        }
    }

    fn writeback(&mut self, core: CoreId, addr: Address, now: Cycle) {
        if self.sampled(addr) {
            self.inner.writeback(core, addr, now);
        }
    }
}

impl<S: Sink> Invariant for SampledL3<S> {
    fn component(&self) -> &'static str {
        "sampled-l3"
    }

    fn audit(&self) -> Vec<Violation> {
        self.inner.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l3::Organization;
    use simcore::rng::SimRng;

    fn wrapped(shift: u32) -> SampledL3 {
        let cfg = MachineConfig::baseline();
        let inner = L3System::build(Organization::Shared, &cfg).unwrap();
        SampledL3::new(Box::new(inner), &cfg, shift)
    }

    #[test]
    fn shift_zero_forwards_everything() {
        let cfg = MachineConfig::baseline();
        let mut bare = L3System::build(Organization::Shared, &cfg).unwrap();
        let mut sampled = wrapped(0);
        let mut rng = SimRng::seed_from(42);
        for i in 0..5_000u64 {
            let addr = Address::new((rng.next_u64() % (1 << 24)) & !0x3f);
            let now = Cycle::new(i * 3);
            let a = bare.access(CoreId::from_index(0), addr, false, now);
            let b = sampled.access(CoreId::from_index(0), addr, false, now);
            assert_eq!(a, b, "shift 0 must be the identity wrapper");
        }
        let r = sampled.report();
        assert_eq!(r.estimated_accesses, 0);
        assert_eq!(r.sampled_sets, r.total_sets);
    }

    #[test]
    fn membership_fraction_matches_shift() {
        let s = wrapped(4);
        let r = s.report();
        assert_eq!(r.total_sets, 4096);
        assert_eq!(r.sampled_sets, 256);
    }

    #[test]
    fn unsampled_accesses_are_estimated_deterministically() {
        let run = || {
            let mut s = wrapped(2);
            let mut rng = SimRng::seed_from(7);
            let mut out = Vec::new();
            for i in 0..20_000u64 {
                let addr = Address::new((rng.next_u64() % (1 << 26)) & !0x3f);
                out.push(s.access(CoreId::from_index(0), addr, false, Cycle::new(i)));
            }
            (out, s.report())
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b, "estimation must be deterministic");
        assert_eq!(ra, rb);
        assert!(ra.sampled_accesses > 0 && ra.estimated_accesses > 0);
        // A quarter of the sets are sampled, so roughly a quarter of a
        // uniform stream should be simulated.
        let frac =
            ra.sampled_accesses as f64 / (ra.sampled_accesses + ra.estimated_accesses) as f64;
        assert!((0.15..0.35).contains(&frac), "sampled fraction {frac}");
    }

    #[test]
    fn attribution_tracks_sampled_distribution() {
        let mut s = wrapped(1);
        let mut rng = SimRng::seed_from(11);
        for i in 0..50_000u64 {
            let addr = Address::new((rng.next_u64() % (1 << 22)) & !0x3f);
            s.access(CoreId::from_index(0), addr, false, Cycle::new(i));
        }
        let total: u64 = s.counts.iter().sum();
        let drawn: u64 = s.attributed.iter().sum();
        assert!(total > 0 && drawn > 0);
        for src in 0..3 {
            let sampled_share = s.counts[src] as f64 / total as f64;
            let drawn_share = s.attributed[src] as f64 / drawn as f64;
            assert!(
                (sampled_share - drawn_share).abs() < 0.02,
                "source {src}: sampled {sampled_share:.3} vs attributed {drawn_share:.3}"
            );
        }
    }

    #[test]
    fn report_error_fields_are_finite_and_sane() {
        let mut s = wrapped(3);
        let mut rng = SimRng::seed_from(5);
        for i in 0..30_000u64 {
            let addr = Address::new((rng.next_u64() % (1 << 25)) & !0x3f);
            s.access(CoreId::from_index(0), addr, false, Cycle::new(i));
        }
        let r = s.report();
        assert!(r.mean_latency > 0.0);
        assert!(r.std_error.is_finite() && r.std_error >= 0.0);
        assert!(r.relative_error.is_finite() && r.relative_error >= 0.0);
        // With tens of thousands of samples the standard error of the
        // mean is far below the mean itself.
        assert!(
            r.relative_error < 0.5,
            "relative error {}",
            r.relative_error
        );
    }
}
