//! The paper's contribution: the adaptive shared/private NUCA last-level
//! cache (Section 2).
//!
//! Every set of the aggregate 16-way cache is divided into per-core
//! **private partitions** (each at most the 4 ways of the core's local
//! slice) and one **shared partition** holding everything else. The
//! division is *logical*: partitions are recency words over way
//! indices, and "moving" a block between partitions re-labels its way
//! rather than copying data — the paper's lazy repartitioning.
//!
//! Key events (Section 2.3):
//!
//! - **Private hit** (14 cycles): the block moves to the top of its
//!   private LRU stack. A hit in the LRU position feeds the loss
//!   estimator.
//! - **Shared/neighbor hit** (19 cycles): the block is swapped into the
//!   requester's private partition — the private-LRU block takes its
//!   place in the shared partition as shared-MRU.
//! - **Miss**: the line is fetched from memory and installed private-MRU.
//!   The private-LRU block is demoted to the shared partition; the shared
//!   victim is chosen by Algorithm 1 (first over-quota owner from the LRU
//!   end, else the global LRU block). The victim's tag is recorded in its
//!   owner's shadow register, feeding the gain estimator; every 2000
//!   misses the sharing engine re-evaluates the quotas.
//!
//! # Layout
//!
//! The cache state is struct-of-arrays, sized once at construction and
//! never reallocated: a flat set-major tag/owner stripe, `u32`
//! valid/dirty bitmasks per set, one [`Recency`] word per set for the
//! shared partition, and a core-major [`PerCoreTable`] holding each
//! core's private stacks and occupancy counters for every set as one
//! contiguous stripe. The per-access hot path (lookup, touch, victim
//! search, install) performs no heap allocation — enforced by lint rule
//! L7.

use cachesim::lru::Recency;
use cachesim::percore::{PerCore, PerCoreTable};
use cachesim::swar::{self, TagFilter};
use cpusim::l3iface::{L3Outcome, L3Source, LastLevel};
use memsim::{MainMemory, MemoryStats};
use simcore::config::MachineConfig;
use simcore::invariant::{Invariant, Violation};
use simcore::types::{Address, BlockAddr, CoreId, Cycle};
use telemetry::{CoreOccupancy, Event, NullSink, Sink};

use crate::engine::{AdaptiveParams, SharingEngine};

/// Aggregate statistics of the adaptive organization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Hits served from the requester's private partition (14 cycles).
    pub private_hits: u64,
    /// Hits served from the shared partition (19 cycles).
    pub shared_hits: u64,
    /// Misses served by main memory.
    pub misses: u64,
    /// Blocks evicted from the chip.
    pub evictions: u64,
    /// Evictions where Algorithm 1 found an over-quota victim (rather
    /// than falling back to the global LRU block).
    pub over_quota_evictions: u64,
    /// Private-to-shared demotions.
    pub demotions: u64,
    /// Quota transfers performed by the sharing engine.
    pub repartitions: u64,
}

/// Per-core residency measured by [`AdaptiveL3::occupancy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyRow {
    /// The owning core.
    pub core: CoreId,
    /// Blocks resident in the core's private partitions.
    pub private_blocks: u64,
    /// Blocks owned by the core resident in the shared partition.
    pub shared_blocks: u64,
}

impl OccupancyRow {
    /// Total blocks owned by the core.
    pub fn total(&self) -> u64 {
        self.private_blocks + self.shared_blocks
    }
}

/// The adaptive shared/private NUCA last-level cache.
///
/// # Example
///
/// ```
/// use nuca_core::engine::AdaptiveParams;
/// use nuca_core::l3::AdaptiveL3;
/// use cpusim::l3iface::LastLevel;
/// use simcore::config::MachineConfig;
/// use simcore::types::{Address, CoreId, Cycle};
///
/// let cfg = MachineConfig::baseline();
/// let mut l3 = AdaptiveL3::new(&cfg, AdaptiveParams::default());
/// let c0 = CoreId::from_index(0);
/// l3.access(c0, Address::new(0x1000), false, Cycle::new(0));   // miss
/// let out = l3.access(c0, Address::new(0x1000), false, Cycle::new(500));
/// assert_eq!(out.data_ready.raw(), 514);                        // private hit
/// ```
/// The `S` parameter selects the telemetry sink; the default
/// [`NullSink`] has `ENABLED == false`, so every emission site
/// monomorphizes to nothing and the traced and untraced organizations
/// share one source.
#[derive(Debug)]
pub struct AdaptiveL3<S: Sink = NullSink> {
    /// Associativity of the aggregate cache.
    ways: usize,
    /// Flat set-major block addresses: `tags[set * ways + way]`.
    /// Meaningful only where the set's valid bit is set.
    tags: Vec<BlockAddr>,
    /// Flat set-major fetching cores, parallel to `tags`. The owner
    /// never changes while a block is resident (hit-path swaps move
    /// ways between stacks but never re-label ownership).
    owners: Vec<CoreId>,
    /// One valid bit per way, per set.
    valid: Vec<u32>,
    /// One dirty bit per way, per set.
    dirty: Vec<u32>,
    /// Packed per-way tag digests: [`find`](Self::find) narrows the valid
    /// mask to SWAR digest candidates before touching the tag stripe.
    /// Maintained in [`install`](Self::install), the sole tag-write site.
    filter: TagFilter,
    /// The shared partition's recency word, per set.
    shared: Vec<Recency>,
    /// Core-major private-partition recency words: core `c`'s stack for
    /// set `s` is `private.get(c, s)`.
    private: PerCoreTable<Recency>,
    /// Core-major count of valid blocks owned per set, maintained
    /// incrementally in [`AdaptiveL3::install`] — the only place
    /// ownership or validity changes. Turns Algorithm 1's per-candidate
    /// quota check from an O(ways) rescan into an O(1) lookup;
    /// cross-checked against a full recount by [`Invariant::audit`].
    owned: PerCoreTable<u32>,
    engine: SharingEngine,
    memory: MainMemory,
    cores: usize,
    offset_bits: u32,
    /// Precomputed `sets - 1` mask — the set index is computed on every
    /// access, so the mask is hoisted out of the hot path instead of
    /// being rebuilt from the bit count each time.
    index_mask: u64,
    /// All ways valid: `(1 << ways) - 1`, the steady state after cold
    /// fill. Comparing the valid mask against this skips the free-way
    /// scan entirely.
    full_mask: u32,
    private_latency: u64,
    shared_latency: u64,
    stats: AdaptiveStats,
    victims_by_owner: PerCore<u64>,
    lru_fallback_victims_by_owner: PerCore<u64>,
    sink: S,
}

impl AdaptiveL3 {
    /// Builds the untraced adaptive organization for the given machine.
    pub fn new(cfg: &MachineConfig, params: AdaptiveParams) -> Self {
        AdaptiveL3::with_sink(cfg, params, NullSink)
    }
}

impl<S: Sink> AdaptiveL3<S> {
    /// Builds the adaptive organization emitting telemetry into `sink`.
    pub fn with_sink(cfg: &MachineConfig, params: AdaptiveParams, sink: S) -> Self {
        let geom = cfg.l3.shared;
        let sets = geom.sets() as usize;
        let ways = geom.total_ways() as usize;
        AdaptiveL3 {
            ways,
            tags: vec![BlockAddr::new(0); sets * ways], // lint:allow(L7): constructor
            owners: vec![CoreId::from_index(0); sets * ways], // lint:allow(L7): constructor
            valid: vec![0; sets],                       // lint:allow(L7): constructor
            dirty: vec![0; sets],                       // lint:allow(L7): constructor
            filter: TagFilter::new(sets, ways),
            shared: vec![Recency::for_ways(ways); sets], // lint:allow(L7): constructor
            private: PerCoreTable::filled(cfg.cores, sets, Recency::for_ways(ways)), // lint:allow(D4): constructor
            owned: PerCoreTable::filled(cfg.cores, sets, 0), // lint:allow(D4): constructor
            engine: SharingEngine::new(
                sets,
                cfg.cores,
                geom.total_ways(),
                cfg.l3.private.total_ways(),
                params,
            ),
            memory: MainMemory::new(cfg.memory, geom.block_bytes()),
            cores: cfg.cores,
            offset_bits: geom.offset_bits(),
            index_mask: (1u64 << geom.index_bits()) - 1,
            full_mask: ((1u64 << ways) - 1) as u32,
            private_latency: cfg.l3.private.latency(),
            shared_latency: cfg.l3.neighbor_latency,
            stats: AdaptiveStats::default(),
            victims_by_owner: PerCore::filled(cfg.cores, 0), // lint:allow(D4): constructor
            lru_fallback_victims_by_owner: PerCore::filled(cfg.cores, 0), // lint:allow(D4): constructor
            sink,
        }
    }

    /// How many blocks each core has had evicted from the shared
    /// partition (diagnostics), and how many of those came from the
    /// global-LRU fallback rather than the over-quota rule.
    pub fn eviction_breakdown(&self) -> (Vec<u64>, Vec<u64>) {
        (
            self.victims_by_owner.iter().copied().collect(),
            self.lru_fallback_victims_by_owner.iter().copied().collect(),
        )
    }

    /// Freezes or unfreezes quota adaptation (see
    /// [`SharingEngine::set_frozen`]).
    pub fn set_adaptation_frozen(&mut self, frozen: bool) {
        self.engine.set_frozen(frozen);
    }

    /// The sharing engine (quotas, counters, repartition history).
    pub fn engine(&self) -> &SharingEngine {
        &self.engine
    }

    /// Current per-core quotas (max blocks per set, Figure 4d).
    pub fn quotas(&self) -> Vec<u32> {
        self.engine.quotas()
    }

    /// Organization-level statistics.
    pub fn stats(&self) -> AdaptiveStats {
        let mut s = self.stats;
        s.repartitions = self.engine.repartitions().len() as u64;
        s
    }

    /// Declares the memory bus idle (warm/timed boundary).
    pub fn quiesce(&mut self, now: Cycle) {
        self.memory.quiesce(now);
    }

    /// Memory-channel statistics.
    pub fn memory_stats(&self) -> MemoryStats {
        self.memory.stats()
    }

    /// The memory channel itself — used by the set-sampling estimator to
    /// charge phantom line fills so bus congestion stays fully modeled.
    pub(crate) fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// Resets counters at the warm-up boundary (cache contents, quotas
    /// and learned state are kept).
    pub fn reset_stats(&mut self) {
        self.stats = AdaptiveStats::default();
        self.memory.reset_stats();
    }

    #[inline]
    fn set_index(&self, blk: BlockAddr) -> usize {
        (blk.raw() & self.index_mask) as usize
    }

    /// The way holding `blk` in `set_idx`, if resident: one SWAR probe
    /// compares all ways' packed digests against the broadcast digest of
    /// `blk` (see `cachesim::swar`), and only the surviving candidates are
    /// confirmed against the full tag stripe. Candidates are walked in the
    /// same low-to-high way order as the scalar loop this replaces, so the
    /// result is bit-identical.
    #[inline]
    fn find(&self, set_idx: usize, blk: BlockAddr) -> Option<usize> {
        let base = set_idx * self.ways;
        let mut m = self.valid[set_idx] & self.filter.candidates(set_idx, swar::digest(blk.raw()));
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            if self.tags[base + w] == blk {
                return Some(w);
            }
            m &= m - 1;
        }
        None
    }

    /// Demotes `core`'s private-LRU blocks to the shared partition until
    /// its private stack fits within `capacity`.
    fn trim_private(&mut self, set_idx: usize, core: CoreId, capacity: u32, now: Cycle) {
        let stack = self.private.get_mut(core, set_idx);
        let shared = &mut self.shared[set_idx];
        while stack.len() > capacity as usize {
            // The loop guard keeps the stack nonempty here.
            let Some(way) = stack.pop_lru() else {
                break;
            };
            shared.push_mru(way);
            self.stats.demotions += 1;
            if S::ENABLED {
                self.sink.emit(
                    now,
                    Event::Demotion {
                        core,
                        set: set_idx as u32,
                    },
                );
            }
        }
    }

    /// Algorithm 1: walk the shared partition from the LRU end and evict
    /// the first block whose owner is over quota; fall back to the global
    /// LRU block (step 8). The block being installed for `requester` is
    /// counted towards the requester's occupancy, so a core already at
    /// quota evicts its own LRU-most block rather than an innocent
    /// neighbor's.
    fn find_victim(&self, set_idx: usize, requester: CoreId) -> (usize, bool) {
        let base = set_idx * self.ways;
        let shared = &self.shared[set_idx];
        if self.engine.use_algorithm1() {
            for way in shared.iter_from_lru() {
                let owner = self.owners[base + way as usize];
                let incoming = u32::from(owner == requester);
                if self.owned.get(owner, set_idx) + incoming > self.engine.quota(owner) {
                    return (way as usize, true);
                }
            }
        }
        // `ensure_shared_nonempty` ran before this; way 0 is a defensive
        // fallback for a corrupted partition, caught by the Invariant audit.
        (shared.lru().map_or(0, usize::from), false)
    }

    /// Ensures the shared partition is nonempty by demoting from the most
    /// over-subscribed private partition. Needed only in the transient
    /// after quota shrinks (lazy repartitioning can leave every way
    /// privately labeled).
    fn ensure_shared_nonempty(&mut self, set_idx: usize, now: Cycle) {
        if !self.shared[set_idx].is_empty() {
            return;
        }
        let mut best: Option<(CoreId, i64)> = None;
        for i in 0..self.cores {
            let c = CoreId::from_index(i as u8);
            let over =
                self.private.get(c, set_idx).len() as i64 - self.engine.private_capacity(c) as i64;
            if best.is_none_or(|(_, b)| over > b) {
                best = Some((c, over));
            }
        }
        let Some((core, _)) = best else {
            return; // zero cores cannot occur; nothing to demote
        };
        if let Some(way) = self.private.get_mut(core, set_idx).pop_lru() {
            self.shared[set_idx].push_mru(way);
            self.stats.demotions += 1;
            if S::ENABLED {
                self.sink.emit(
                    now,
                    Event::Demotion {
                        core,
                        set: set_idx as u32,
                    },
                );
            }
        }
    }

    fn install(
        &mut self,
        set_idx: usize,
        way: usize,
        blk: BlockAddr,
        dirty: bool,
        core: CoreId,
        now: Cycle,
    ) {
        let capacity = self.engine.private_capacity(core);
        let base = set_idx * self.ways;
        let bit = 1u32 << way;
        // Sole ownership/validity mutation point: keep the incremental
        // per-core occupancy counters exact here and nowhere else.
        if self.valid[set_idx] & bit != 0 {
            let old_owner = self.owners[base + way];
            let n = self.owned.get_mut(old_owner, set_idx);
            *n = n.saturating_sub(1);
        } else {
            self.valid[set_idx] |= bit;
        }
        *self.owned.get_mut(core, set_idx) += 1;
        self.tags[base + way] = blk;
        self.filter.record(set_idx, way, swar::digest(blk.raw()));
        self.owners[base + way] = core;
        self.dirty[set_idx] = (self.dirty[set_idx] & !bit) | (u32::from(dirty) << way);
        if capacity == 0 {
            // Quota-1 cores live entirely in the shared partition but are
            // still guaranteed this one block (Section 2.4).
            self.shared[set_idx].push_mru(way as u8);
        } else {
            self.private.get_mut(core, set_idx).push_mru(way as u8);
            self.trim_private(set_idx, core, capacity, now);
        }
    }

    /// Measures how many blocks each core currently holds across the
    /// whole cache, split into private-partition and shared-partition
    /// residency — the physical realization of the quotas.
    pub fn occupancy(&self) -> Vec<OccupancyRow> {
        let mut rows: Vec<OccupancyRow> = (0..self.cores)
            .map(|i| OccupancyRow {
                core: CoreId::from_index(i as u8),
                private_blocks: 0,
                shared_blocks: 0,
            })
            .collect();
        for (c, row) in rows.iter_mut().enumerate() {
            row.private_blocks = self
                .private
                .row(CoreId::from_index(c as u8))
                .iter()
                .map(|s| s.len() as u64)
                .sum();
        }
        for (set_idx, shared) in self.shared.iter().enumerate() {
            let base = set_idx * self.ways;
            for way in shared.iter_from_mru() {
                let owner = self.owners[base + way as usize];
                rows[owner.index()].shared_blocks += 1;
            }
        }
        rows
    }

    /// Emits the structural events of one observed miss: the shadow-tag
    /// tick, the repartition (if any) and the per-epoch snapshot. Called
    /// only when `S::ENABLED`; the occupancy scan is O(sets × ways), so
    /// it must never run on the untraced path.
    fn emit_miss_observation(
        &mut self,
        obs: crate::engine::MissObservation,
        core: CoreId,
        set_idx: usize,
        now: Cycle,
    ) {
        if obs.shadow_hit {
            self.sink.emit(
                now,
                Event::ShadowHit {
                    core,
                    set: set_idx as u32,
                },
            );
        }
        if let Some(r) = obs.repartition {
            self.sink.emit(
                now,
                Event::Repartition {
                    epoch: self.engine.epochs(),
                    gainer: r.gainer,
                    loser: r.loser,
                    gain: r.gain,
                    loss: r.loss,
                    quotas: self.engine.quotas(),
                },
            );
        }
        if obs.epoch_ended {
            let occupancy = self
                .occupancy()
                .into_iter()
                .map(|row| CoreOccupancy {
                    core: row.core,
                    private_blocks: row.private_blocks,
                    shared_blocks: row.shared_blocks,
                })
                .collect();
            self.sink.emit(
                now,
                Event::Epoch {
                    index: self.engine.epochs(),
                    quotas: self.engine.quotas(),
                    occupancy,
                    private_hits: self.stats.private_hits,
                    shared_hits: self.stats.shared_hits,
                    misses: self.stats.misses,
                    demotions: self.stats.demotions,
                    evictions: self.stats.evictions,
                },
            );
        }
    }

    /// Checks structural invariants (every valid block in exactly one
    /// stack, no duplicate tags, quota consistency of the embedded
    /// engine). Bool wrapper over [`Invariant::audit`], kept for test
    /// ergonomics.
    pub fn check_invariants(&self) -> bool {
        self.is_consistent()
    }

    /// Writes the cache arrays, partition stacks, engine, memory bus and
    /// statistics to a snapshot. Geometry and latencies are
    /// reconstructed from configuration and are not encoded.
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_usize(self.tags.len());
        for &t in &self.tags {
            w.put_u64(t.raw());
        }
        w.put_usize(self.owners.len());
        for &o in &self.owners {
            w.put_u8(o.asid());
        }
        w.put_u32_slice(&self.valid);
        w.put_u32_slice(&self.dirty);
        self.filter.save_state(w);
        w.put_usize(self.shared.len());
        for rec in &self.shared {
            rec.save_state(w);
        }
        w.put_usize(self.cores);
        for core in CoreId::all(self.cores) {
            for rec in self.private.row(core) {
                rec.save_state(w);
            }
            for &n in self.owned.row(core) {
                w.put_u32(n);
            }
        }
        self.engine.save_state(w);
        self.memory.save_state(w);
        w.put_u64(self.stats.private_hits);
        w.put_u64(self.stats.shared_hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.evictions);
        w.put_u64(self.stats.over_quota_evictions);
        w.put_u64(self.stats.demotions);
        for core in CoreId::all(self.cores) {
            w.put_u64(self.victims_by_owner[core]);
            w.put_u64(self.lru_fallback_victims_by_owner[core]);
        }
    }

    /// Restores state written by [`save_state`](Self::save_state) into an
    /// organization built from the same machine configuration.
    ///
    /// # Errors
    ///
    /// [`simcore::snapshot::SnapshotError::Mismatch`] on geometry
    /// differences; decode errors otherwise.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        use simcore::snapshot::SnapshotError;
        if r.get_usize()? != self.tags.len() {
            return Err(SnapshotError::Mismatch("adaptive L3 tag array size"));
        }
        for t in &mut self.tags {
            *t = BlockAddr::new(r.get_u64()?);
        }
        if r.get_usize()? != self.owners.len() {
            return Err(SnapshotError::Mismatch("adaptive L3 owner array size"));
        }
        for o in &mut self.owners {
            *o = CoreId::from_index(r.get_u8()?);
        }
        let valid = r.get_u32_vec()?;
        if valid.len() != self.valid.len() {
            return Err(SnapshotError::Mismatch("adaptive L3 set count"));
        }
        self.valid = valid;
        let dirty = r.get_u32_vec()?;
        if dirty.len() != self.dirty.len() {
            return Err(SnapshotError::Mismatch("adaptive L3 set count"));
        }
        self.dirty = dirty;
        self.filter.load_state(r)?;
        if r.get_usize()? != self.shared.len() {
            return Err(SnapshotError::Mismatch("adaptive L3 recency array size"));
        }
        for rec in &mut self.shared {
            rec.load_state(r)?;
        }
        if r.get_usize()? != self.cores {
            return Err(SnapshotError::Mismatch("adaptive L3 core count"));
        }
        for core in CoreId::all(self.cores) {
            for set in 0..self.private.row_len() {
                self.private.get_mut(core, set).load_state(r)?;
            }
            for set in 0..self.owned.row_len() {
                *self.owned.get_mut(core, set) = r.get_u32()?;
            }
        }
        self.engine.load_state(r)?;
        self.memory.load_state(r)?;
        self.stats.private_hits = r.get_u64()?;
        self.stats.shared_hits = r.get_u64()?;
        self.stats.misses = r.get_u64()?;
        self.stats.evictions = r.get_u64()?;
        self.stats.over_quota_evictions = r.get_u64()?;
        self.stats.demotions = r.get_u64()?;
        for core in CoreId::all(self.cores) {
            self.victims_by_owner[core] = r.get_u64()?;
            self.lru_fallback_victims_by_owner[core] = r.get_u64()?;
        }
        Ok(())
    }
}

impl<S: Sink> Invariant for AdaptiveL3<S> {
    fn component(&self) -> &'static str {
        "adaptive-l3"
    }

    fn audit(&self) -> Vec<Violation> {
        let mut out = self.engine.audit();
        for (si, (&mask, shared)) in self.valid.iter().zip(&self.shared).enumerate() {
            let base = si * self.ways;
            let mut seen = vec![0u32; self.ways]; // lint:allow(L7): audit is --paranoid only
            for c in 0..self.cores {
                let core = CoreId::from_index(c as u8);
                for w in self.private.get(core, si).iter_from_mru() {
                    match seen.get_mut(w as usize) {
                        Some(count) => *count += 1,
                        None => out.push(
                            Violation::new(
                                self.component(),
                                format!("stack references way {w} beyond associativity"),
                            )
                            .at_set(si)
                            .at_way(usize::from(w))
                            .for_core(c),
                        ),
                    }
                }
            }
            for w in shared.iter_from_mru() {
                match seen.get_mut(w as usize) {
                    Some(count) => *count += 1,
                    None => out.push(
                        Violation::new(
                            self.component(),
                            format!("stack references way {w} beyond associativity"),
                        )
                        .at_set(si)
                        .at_way(usize::from(w)),
                    ),
                }
            }
            for (w, &count) in seen.iter().enumerate() {
                let valid = mask & (1 << w) != 0;
                let expected = u32::from(valid);
                if count != expected {
                    out.push(
                        Violation::new(
                            self.component(),
                            if valid {
                                format!("valid block appears in {count} stacks, expected exactly 1")
                            } else {
                                format!("invalid block appears in {count} stacks, expected 0")
                            },
                        )
                        .at_set(si)
                        .at_way(w)
                        .for_core(self.owners[base + w].index()),
                    );
                }
            }
            // Cross-check the incremental occupancy counters against a
            // full recount — the counters feed Algorithm 1's quota
            // comparison, so drift here would silently change victims.
            let mut recount = vec![0u32; self.cores]; // lint:allow(L7): audit is --paranoid only
            for w in 0..self.ways {
                if mask & (1 << w) != 0 {
                    if let Some(n) = recount.get_mut(self.owners[base + w].index()) {
                        *n += 1;
                    }
                }
            }
            for (ci, &rec) in recount.iter().enumerate() {
                let inc = *self.owned.get(CoreId::from_index(ci as u8), si);
                if inc != rec {
                    out.push(
                        Violation::new(
                            self.component(),
                            format!("incremental owned counter {inc} != {rec} blocks recounted"),
                        )
                        .at_set(si)
                        .for_core(ci),
                    );
                }
            }
            for w in 0..self.ways {
                if mask & (1 << w) == 0 {
                    continue;
                }
                let d = swar::digest(self.tags[base + w].raw());
                if self.filter.candidates(si, d) & (1u32 << w) == 0 {
                    out.push(
                        Violation::new(self.component(), "SWAR digest stale for valid way")
                            .at_set(si)
                            .at_way(w),
                    );
                }
            }
            for i in 0..self.ways {
                for j in (i + 1)..self.ways {
                    if mask & (1 << i) != 0
                        && mask & (1 << j) != 0
                        && self.tags[base + i] == self.tags[base + j]
                    {
                        out.push(
                            Violation::new(
                                self.component(),
                                format!(
                                    "duplicate tag {:#x} (also in way {i})",
                                    self.tags[base + j].raw()
                                ),
                            )
                            .at_set(si)
                            .at_way(j),
                        );
                    }
                }
            }
        }
        out
    }
}

impl<S: Sink> LastLevel for AdaptiveL3<S> {
    fn access(&mut self, core: CoreId, addr: Address, write: bool, now: Cycle) -> L3Outcome {
        let blk = addr.block(self.offset_bits);
        let set_idx = self.set_index(blk);

        if let Some(way) = self.find(set_idx, blk) {
            let way8 = way as u8;
            self.dirty[set_idx] |= u32::from(write) << way;
            let private = self.private.get_mut(core, set_idx);
            if private.contains(way8) {
                // Phase-1 tag match: fast private hit.
                if private.is_lru(way8) {
                    self.engine.record_lru_hit(core);
                    if S::ENABLED {
                        self.sink.emit(now, Event::LruHit { core });
                    }
                }
                self.private.get_mut(core, set_idx).touch(way8);
                self.stats.private_hits += 1;
                return L3Outcome {
                    data_ready: now + self.private_latency,
                    source: L3Source::LocalHit,
                };
            }
            // Phase-2 match: the block sits outside the requester's
            // private partition. With parallel (read-shared) workloads it
            // may live in *another core's* private partition — §2.3: "to
            // locate a block in the cache, the partitioning does not
            // matter" — in which case it is served at the neighbor
            // latency and left where it is (the owner keeps its
            // protection).
            if !self.shared[set_idx].contains(way8) {
                self.stats.shared_hits += 1;
                return L3Outcome {
                    data_ready: now + self.shared_latency,
                    source: L3Source::RemoteHit,
                };
            }
            // Otherwise it is in the shared partition (possibly
            // physically in a neighbor's slice): swap it into the
            // requester's private partition, demoting the private-LRU
            // block.
            let capacity = self.engine.private_capacity(core);
            if capacity > 0 {
                self.shared[set_idx].remove(way8);
                self.private.get_mut(core, set_idx).push_mru(way8);
                self.trim_private(set_idx, core, capacity, now);
            } else {
                self.shared[set_idx].touch(way8);
            }
            self.stats.shared_hits += 1;
            return L3Outcome {
                data_ready: now + self.shared_latency,
                source: L3Source::RemoteHit,
            };
        }

        // Miss: gain estimation, re-evaluation tick, fetch and install.
        let obs = self.engine.observe_miss(set_idx, core, blk);
        self.stats.misses += 1;
        let resp = self.memory.request(now, false);
        if S::ENABLED {
            self.emit_miss_observation(obs, core, set_idx, now);
            self.sink.emit(
                now,
                Event::MemoryFill {
                    core,
                    queue_delay: resp.queue_delay,
                },
            );
        }

        // The free-way pick only triggers during cold fill; a full valid
        // mask short-circuits it in the steady state.
        let free = !self.valid[set_idx] & self.full_mask;
        let victim_way = if free != 0 {
            free.trailing_zeros() as usize
        } else {
            self.ensure_shared_nonempty(set_idx, now);
            let (way, over_quota) = self.find_victim(set_idx, core);
            let base = set_idx * self.ways;
            let victim_owner = self.owners[base + way];
            let victim_dirty = self.dirty[set_idx] & (1 << way) != 0;
            self.engine
                .record_eviction(set_idx, victim_owner, self.tags[base + way]);
            if victim_dirty {
                self.memory.writeback(now);
            }
            self.shared[set_idx].remove(way as u8);
            self.stats.evictions += 1;
            self.victims_by_owner[victim_owner] += 1;
            if over_quota {
                self.stats.over_quota_evictions += 1;
            } else {
                self.lru_fallback_victims_by_owner[victim_owner] += 1;
            }
            if S::ENABLED {
                self.sink.emit(
                    now,
                    Event::SharedEviction {
                        set: set_idx as u32,
                        owner: victim_owner,
                        over_quota,
                    },
                );
            }
            way
        };

        self.install(set_idx, victim_way, blk, write, core, now);
        L3Outcome {
            data_ready: resp.data_ready,
            source: L3Source::Memory,
        }
    }

    fn writeback(&mut self, _core: CoreId, addr: Address, now: Cycle) {
        let blk = addr.block(self.offset_bits);
        let set_idx = self.set_index(blk);
        if let Some(way) = self.find(set_idx, blk) {
            self.dirty[set_idx] |= 1 << way;
        } else {
            self.memory.writeback(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::config::MachineConfigBuilder;

    fn machine() -> MachineConfig {
        MachineConfig::baseline()
    }

    /// A machine with a tiny L3 (16 sets) so sets overflow quickly.
    fn tiny_machine() -> MachineConfig {
        MachineConfigBuilder::new()
            .l3_capacity(16 * 16 * 64) // 16 sets x 16 ways x 64 B
            .build()
            .unwrap()
    }

    fn c(i: u8) -> CoreId {
        CoreId::from_index(i)
    }

    /// Address mapping to `set` with tag `tag` for the tiny machine.
    fn addr(set: u64, tag: u64) -> Address {
        Address::new((tag * 16 + set) * 64)
    }

    #[test]
    fn miss_then_private_hit() {
        let mut l3 = AdaptiveL3::new(&machine(), AdaptiveParams::default());
        let a = Address::new(0x8000);
        let out = l3.access(c(0), a, false, Cycle::new(0));
        assert_eq!(out.source, L3Source::Memory);
        assert_eq!(out.data_ready.raw(), 260);
        let out = l3.access(c(0), a, false, Cycle::new(1000));
        assert_eq!(out.source, L3Source::LocalHit);
        assert_eq!(out.data_ready.raw(), 1014);
        assert!(l3.check_invariants());
    }

    #[test]
    fn overflow_demotes_to_shared_and_hits_at_19() {
        let mut l3 = AdaptiveL3::new(&tiny_machine(), AdaptiveParams::default());
        // Private capacity is 3; the fourth fill demotes the first block.
        for t in 0..4u64 {
            l3.access(c(0), addr(0, t), false, Cycle::new(t * 1000));
        }
        let out = l3.access(c(0), addr(0, 0), false, Cycle::new(10_000));
        assert_eq!(
            out.source,
            L3Source::RemoteHit,
            "demoted block hits in shared partition"
        );
        assert_eq!(out.data_ready.raw(), 10_019);
        assert!(l3.check_invariants());
        assert!(l3.stats().demotions >= 1);
    }

    #[test]
    fn shared_hit_swaps_back_into_private() {
        let mut l3 = AdaptiveL3::new(&tiny_machine(), AdaptiveParams::default());
        for t in 0..4u64 {
            l3.access(c(0), addr(0, t), false, Cycle::new(t * 1000));
        }
        // Tag 0 now shared; touch it (19 cycles) — it swaps into private.
        l3.access(c(0), addr(0, 0), false, Cycle::new(10_000));
        let out = l3.access(c(0), addr(0, 0), false, Cycle::new(20_000));
        assert_eq!(
            out.source,
            L3Source::LocalHit,
            "swapped block is now private"
        );
        assert!(l3.check_invariants());
    }

    #[test]
    fn cores_cannot_hit_each_others_private_blocks() {
        let mut l3 = AdaptiveL3::new(&machine(), AdaptiveParams::default());
        // ASID-tagged addresses differ per core, so core 1 misses on the
        // "same" address core 0 loaded.
        let a0 = Address::new(0x8000).with_asid(0);
        let a1 = Address::new(0x8000).with_asid(1);
        l3.access(c(0), a0, false, Cycle::new(0));
        let out = l3.access(c(1), a1, false, Cycle::new(1000));
        assert_eq!(out.source, L3Source::Memory);
    }

    #[test]
    fn eviction_records_shadow_tag_and_gain_counts() {
        let mut l3 = AdaptiveL3::new(&tiny_machine(), AdaptiveParams::default());
        // Fill set 0 completely from core 0 (16 ways: 3 private + shared).
        for t in 0..16u64 {
            l3.access(c(0), addr(0, t), false, Cycle::new(t * 100));
        }
        // Next fill evicts some block owned by core 0 -> shadow tag set.
        l3.access(c(0), addr(0, 16), false, Cycle::new(10_000));
        assert!(l3.stats().evictions >= 1);
        // A miss on the just-evicted tag increments the gain estimator.
        let victim_before = l3.engine().shadow_hits(c(0));
        // Find which tag was evicted by probing: access all old tags and
        // count shadow hits afterwards.
        for t in 0..16u64 {
            l3.access(c(0), addr(0, t), false, Cycle::new(20_000 + t * 100));
        }
        assert!(l3.engine().shadow_hits(c(0)) > victim_before);
        assert!(l3.check_invariants());
    }

    #[test]
    fn greedy_core_is_bounded_by_quota_under_algorithm1() {
        let mut l3 = AdaptiveL3::new(&tiny_machine(), AdaptiveParams::default());
        // Core 1 establishes a modest working set in set 0.
        for t in 0..3u64 {
            l3.access(
                c(1),
                addr(0, 100 + t).with_asid(1),
                false,
                Cycle::new(t * 100),
            );
        }
        // Core 0 streams over set 0 far beyond its quota.
        for t in 0..64u64 {
            l3.access(
                c(0),
                addr(0, t).with_asid(0),
                false,
                Cycle::new(1_000 + t * 100),
            );
        }
        // Algorithm 1 should have preferred evicting core 0's over-quota
        // blocks, so core 1's blocks survive.
        let mut survived = 0;
        for t in 0..3u64 {
            let out = l3.access(
                c(1),
                addr(0, 100 + t).with_asid(1),
                false,
                Cycle::new(100_000 + t * 100),
            );
            if out.source != L3Source::Memory {
                survived += 1;
            }
        }
        assert!(
            survived >= 2,
            "protected blocks survived pollution: {survived}/3"
        );
        assert!(l3.stats().over_quota_evictions > 0);
        assert!(l3.check_invariants());
    }

    #[test]
    fn without_algorithm1_pollution_wins() {
        let params = AdaptiveParams {
            use_algorithm1: false,
            // Disable repartitioning so only the victim policy differs.
            reeval_period: u64::MAX,
            ..AdaptiveParams::default()
        };
        let mut l3 = AdaptiveL3::new(&tiny_machine(), params);
        for t in 0..3u64 {
            l3.access(
                c(1),
                addr(0, 100 + t).with_asid(1),
                false,
                Cycle::new(t * 100),
            );
        }
        for t in 0..64u64 {
            l3.access(
                c(0),
                addr(0, t).with_asid(0),
                false,
                Cycle::new(1_000 + t * 100),
            );
        }
        let mut survived = 0;
        for t in 0..3u64 {
            let out = l3.access(
                c(1),
                addr(0, 100 + t).with_asid(1),
                false,
                Cycle::new(100_000 + t * 100),
            );
            if out.source != L3Source::Memory {
                survived += 1;
            }
        }
        // Core 1's private blocks (3 of them) are protected, but its
        // guaranteed shared block is not; plain LRU lets the streaming
        // core evict the whole shared partition. Private protection still
        // saves the private ones, so survival can be high — the real
        // difference shows in eviction counters.
        let s = l3.stats();
        assert_eq!(s.over_quota_evictions, 0, "Algorithm 1 disabled");
        assert!(survived <= 3);
    }

    #[test]
    fn writeback_marks_dirty_or_goes_to_memory() {
        let mut l3 = AdaptiveL3::new(&machine(), AdaptiveParams::default());
        let a = Address::new(0x8000);
        l3.access(c(0), a, false, Cycle::new(0));
        let busy = l3.memory_stats().busy_cycles;
        l3.writeback(c(0), a, Cycle::new(100));
        assert_eq!(l3.memory_stats().busy_cycles, busy);
        l3.writeback(c(0), Address::new(0xffff000), Cycle::new(200));
        assert_eq!(l3.memory_stats().busy_cycles, busy + 32);
    }

    #[test]
    fn quota_one_core_lives_in_shared_partition() {
        let params = AdaptiveParams {
            reeval_period: 1,
            ..AdaptiveParams::default()
        };
        let mut l3 = AdaptiveL3::new(&tiny_machine(), params);
        // Make core 0 the perpetual gainer: cycling over 17 tags in a
        // 16-way set means every eviction is re-referenced one access
        // later — each miss hits the shadow tag.
        for round in 0..2000u64 {
            l3.access(
                c(0),
                addr(0, round % 17).with_asid(0),
                false,
                Cycle::new(round * 50),
            );
        }
        let quotas = l3.quotas();
        assert!(quotas[0] > 4, "gainer grew: {quotas:?}");
        assert!(quotas.iter().all(|&q| q >= 1));
        // A quota-1 core can still cache (one shared block per set).
        let loser = quotas.iter().position(|&q| q == 1);
        if let Some(l) = loser {
            let lc = c(l as u8);
            let a = addr(0, 7777).with_asid(l as u8);
            l3.access(lc, a, false, Cycle::new(1_000_000));
            let out = l3.access(lc, a, false, Cycle::new(1_000_100));
            assert_eq!(out.source, L3Source::RemoteHit);
        }
        assert!(l3.check_invariants());
    }

    #[test]
    fn lazy_repartitioning_never_invalidates() {
        let params = AdaptiveParams {
            reeval_period: 1,
            ..AdaptiveParams::default()
        };
        let mut l3 = AdaptiveL3::new(&tiny_machine(), params);
        // Core 1 fills private blocks.
        for t in 0..3u64 {
            l3.access(c(1), addr(0, t).with_asid(1), false, Cycle::new(t * 100));
        }
        let before: u64 = (0..3u64)
            .filter(|&t| l3.find(0, addr(0, t).with_asid(1).block(6)).is_some())
            .count() as u64;
        // Shrink core 1's quota via core 0 gains.
        for round in 0..200u64 {
            l3.access(
                c(0),
                addr(1, round).with_asid(0),
                false,
                Cycle::new(10_000 + round * 100),
            );
        }
        let after: u64 = (0..3u64)
            .filter(|&t| l3.find(0, addr(0, t).with_asid(1).block(6)).is_some())
            .count() as u64;
        assert_eq!(before, after, "quota shrink alone never invalidates blocks");
        assert!(l3.check_invariants());
    }

    #[test]
    fn occupancy_tracks_resident_blocks() {
        let mut l3 = AdaptiveL3::new(&tiny_machine(), AdaptiveParams::default());
        for t in 0..6u64 {
            l3.access(c(0), addr(0, t), false, Cycle::new(t * 100));
        }
        let occ = l3.occupancy();
        assert_eq!(occ[0].total(), 6, "all six fills owned by core 0");
        assert_eq!(occ[0].private_blocks, 3, "private partition capped at 3");
        assert_eq!(occ[0].shared_blocks, 3, "overflow demoted to shared");
        assert_eq!(occ[1].total(), 0);
    }

    #[test]
    fn random_stress_preserves_invariants() {
        use simcore::rng::SimRng;
        let params = AdaptiveParams {
            reeval_period: 50,
            ..AdaptiveParams::default()
        };
        let mut l3 = AdaptiveL3::new(&tiny_machine(), params);
        let mut rng = SimRng::seed_from(31);
        for i in 0..20_000u64 {
            let core = rng.below(4) as u8;
            let a = addr(rng.below(16), rng.below(40)).with_asid(core);
            l3.access(c(core), a, rng.chance(0.3), Cycle::new(i * 10));
        }
        assert!(l3.check_invariants());
        let s = l3.stats();
        assert!(s.private_hits > 0 && s.shared_hits > 0 && s.misses > 0);
    }
}
