//! Foundation crate for the NUCA chip-multiprocessor simulator.
//!
//! `simcore` provides the vocabulary shared by every other crate in this
//! workspace:
//!
//! - [`types`] — strongly-typed identifiers and quantities ([`Address`],
//!   [`BlockAddr`], [`CoreId`], [`Cycle`]) so that byte addresses, block
//!   addresses, cycle counts and core indices can never be confused.
//! - [`config`] — the full machine description from Table 1 of the paper,
//!   with a builder and the derived configurations used by the evaluation
//!   (8-MByte last-level cache for Figure 9, technology-scaled latencies for
//!   Figure 10).
//! - [`stats`] — counters, histograms and the summary statistics the paper
//!   reports (harmonic and arithmetic mean of per-core IPC).
//! - [`parallel`] — a deterministic scoped-thread runner for independent
//!   simulation cells (the only sanctioned way to spawn threads; see
//!   `nuca-lint` rule L5).
//! - [`rng`] — a small, deterministic pseudo-random number generator
//!   (SplitMix64 seeding a xoshiro256** stream) so that every experiment is
//!   exactly reproducible from its seed.
//! - [`snapshot`] — the versioned, checksummed binary codec used to
//!   persist post-warm-up chip state for the campaign engine.
//! - [`error`] — the crate-level error type.
//!
//! # Example
//!
//! ```
//! use simcore::config::MachineConfig;
//! use simcore::types::CoreId;
//!
//! let machine = MachineConfig::baseline();
//! assert_eq!(machine.cores, 4);
//! assert_eq!(machine.l3.shared.total_ways(), 16);
//! let core = CoreId::new(2, machine.cores).expect("core 2 exists");
//! assert_eq!(core.index(), 2);
//! ```

pub mod config;
pub mod error;
pub mod invariant;
pub mod parallel;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod types;

pub use config::MachineConfig;
pub use error::{ConfigError, Result};
pub use invariant::{Invariant, Violation};
pub use rng::SimRng;
pub use types::{Address, BlockAddr, CoreId, Cycle};
