//! Versioned, checksummed binary encoding of simulator state.
//!
//! The campaign engine pays functional warm-up once per (machine, mix)
//! and forks the resulting chip state across every sweep point that
//! shares it. That requires a stable byte encoding of the mutable state
//! of every component — this module provides the primitives: a
//! [`SnapshotWriter`] that frames a payload with a magic/version header
//! and an FNV-1a checksum trailer, and a [`SnapshotReader`] that
//! verifies both before any field is decoded.
//!
//! Design rules (see DESIGN.md §9):
//!
//! - **Little-endian, fixed-width.** Every integer is written LE at its
//!   natural width; `f64` travels as its IEEE-754 bit pattern. No
//!   varints — decode offsets must not depend on values.
//! - **Mutable state only.** Components encode the fields a functional
//!   warm run can change and *nothing derived from configuration*
//!   (latencies, geometries, probabilities). Restoring into a freshly
//!   constructed component therefore keeps the new configuration's
//!   derived values, which is what lets one warm snapshot serve sweep
//!   points that differ only in timing knobs.
//! - **Fail closed.** Every decode path returns [`SnapshotError`];
//!   truncation, magic/version mismatch, checksum mismatch and
//!   structural mismatch (e.g. restoring a 4-core snapshot into a
//!   2-core chip) are all distinct, reportable errors.

use std::fmt;

use crate::types::Cycle;

/// First four payload bytes: "NUCS" as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"NUCS");

/// Current encoding version. Bump on any layout change; readers reject
/// other versions outright instead of guessing.
pub const VERSION: u32 = 1;

/// Byte length of the header (magic + version).
const HEADER_BYTES: usize = 8;

/// Byte length of the checksum trailer.
const TRAILER_BYTES: usize = 8;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the requested field.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic(u32),
    /// The version field is not [`VERSION`].
    BadVersion(u32),
    /// The FNV-1a trailer does not match the payload.
    BadChecksum {
        /// Checksum recomputed over the payload.
        expected: u64,
        /// Checksum stored in the trailer.
        found: u64,
    },
    /// A field decoded but contradicts the restoring component's
    /// structure (wrong core count, geometry, organization, …).
    Mismatch(&'static str),
    /// A field decoded to a value no encoder writes.
    Corrupt(&'static str),
    /// Decoding finished with payload bytes left over.
    TrailingBytes {
        /// Unconsumed payload bytes.
        remaining: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            SnapshotError::BadMagic(m) => {
                write!(f, "bad snapshot magic {m:#010x} (expected {MAGIC:#010x})")
            }
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::BadChecksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch: payload hashes to {expected:#018x}, trailer says {found:#018x}"
            ),
            SnapshotError::Mismatch(what) => {
                write!(f, "snapshot does not match this machine: {what}")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
            SnapshotError::TrailingBytes { remaining } => {
                write!(f, "snapshot decoded with {remaining} byte(s) left over")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// 64-bit FNV-1a over a byte slice — cheap, dependency-free and stable
/// across platforms, which is all an integrity trailer needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only encoder. Construction writes the header; [`finish`]
/// appends the checksum trailer and yields the bytes.
///
/// [`finish`]: SnapshotWriter::finish
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotWriter {
    /// A writer primed with the magic/version header.
    pub fn new() -> Self {
        let mut w = SnapshotWriter {
            buf: Vec::with_capacity(4096),
        };
        w.put_u32(MAGIC);
        w.put_u32(VERSION);
        w
    }

    /// Bytes written so far (header included).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing beyond the header was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= HEADER_BYTES
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a [`Cycle`] as its raw count.
    pub fn put_cycle(&mut self, c: Cycle) {
        self.put_u64(c.raw());
    }

    /// Writes a `u64` slice with a length prefix.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Writes a `u32` slice with a length prefix.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Writes a `u8` slice with a length prefix.
    pub fn put_u8_slice(&mut self, vs: &[u8]) {
        self.put_usize(vs.len());
        self.buf.extend_from_slice(vs);
    }

    /// Appends the FNV-1a trailer and returns the finished bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Sequential decoder over a finished snapshot. Construction verifies
/// the trailer checksum, magic and version before any field is read.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    /// Payload only: header consumed, trailer stripped.
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Opens a snapshot, verifying checksum, magic and version.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when shorter than header + trailer,
    /// [`SnapshotError::BadChecksum`], [`SnapshotError::BadMagic`] or
    /// [`SnapshotError::BadVersion`] when framing fails.
    pub fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
            });
        }
        let split = bytes.len() - TRAILER_BYTES;
        let (payload, trailer) = bytes.split_at(split);
        let mut found = [0u8; 8];
        found.copy_from_slice(trailer);
        let found = u64::from_le_bytes(found);
        let expected = fnv1a64(payload);
        if expected != found {
            return Err(SnapshotError::BadChecksum { expected, found });
        }
        let mut r = SnapshotReader {
            buf: payload,
            pos: 0,
        };
        let magic = r.get_u32()?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapshotError::Truncated { offset: self.pos })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated { offset: self.pos })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?.first().copied().unwrap_or_default())
    }

    /// Reads a `bool`; any byte other than 0/1 is corruption.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] or [`SnapshotError::Corrupt`].
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool byte not 0 or 1")),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn get_u128(&mut self) -> Result<u128, SnapshotError> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// Reads a `usize` written by [`SnapshotWriter::put_usize`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`], or [`SnapshotError::Corrupt`] when
    /// the value does not fit this platform's `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.get_u64()?).map_err(|_| SnapshotError::Corrupt("usize overflow"))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a [`Cycle`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of payload.
    pub fn get_cycle(&mut self) -> Result<Cycle, SnapshotError> {
        Ok(Cycle::new(self.get_u64()?))
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] or [`SnapshotError::Corrupt`] when
    /// the prefix exceeds the remaining payload.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.checked_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u32` vector.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] or [`SnapshotError::Corrupt`] when
    /// the prefix exceeds the remaining payload.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.checked_len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u8` vector.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] or [`SnapshotError::Corrupt`] when
    /// the prefix exceeds the remaining payload.
    pub fn get_u8_vec(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.checked_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length prefix for records of `elem_bytes` bytes each: the
    /// declared element count must fit in the bytes that remain, so
    /// corrupt prefixes fail fast instead of attempting multi-gigabyte
    /// allocations.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] or [`SnapshotError::Corrupt`] when
    /// the prefix exceeds the remaining payload.
    pub fn checked_len(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.get_usize()?;
        let remaining = self.buf.len().saturating_sub(self.pos);
        if n.checked_mul(elem_bytes).is_none_or(|b| b > remaining) {
            return Err(SnapshotError::Corrupt("length prefix exceeds payload"));
        }
        Ok(n)
    }

    /// Payload bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Declares decoding complete.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TrailingBytes`] when payload bytes are left —
    /// a decoder that stopped early almost certainly mis-decoded.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::TrailingBytes {
                remaining: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = SnapshotWriter::new();
        w.put_u8(0xab);
        w.put_bool(true);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_u128(u128::MAX - 7);
        w.put_f64(-0.25);
        w.put_cycle(Cycle::new(42));
        w.put_u64_slice(&[1, 2, 3]);
        w.put_u32_slice(&[9, 8]);
        w.put_u8_slice(&[5]);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_u128().unwrap(), u128::MAX - 7);
        assert_eq!(r.get_f64().unwrap(), -0.25);
        assert_eq!(r.get_cycle().unwrap(), Cycle::new(42));
        assert_eq!(r.get_u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u32_vec().unwrap(), vec![9, 8]);
        assert_eq!(r.get_u8_vec().unwrap(), vec![5]);
        r.finish().unwrap();
    }

    #[test]
    fn bit_flip_anywhere_fails_checksum() {
        let mut w = SnapshotWriter::new();
        w.put_u64(77);
        let bytes = w.finish();
        for i in 0..bytes.len() - 8 {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let err = SnapshotReader::open(&bad).unwrap_err();
            assert!(
                matches!(err, SnapshotError::BadChecksum { .. }),
                "flip at {i}: {err}"
            );
        }
    }

    #[test]
    fn version_and_magic_are_checked() {
        // Hand-build a frame with the wrong version but a valid checksum.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&(VERSION + 1).to_le_bytes());
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            SnapshotReader::open(&buf).unwrap_err(),
            SnapshotError::BadVersion(v) if v == VERSION + 1
        ));

        let mut buf = Vec::new();
        buf.extend_from_slice(&0x1234_5678u32.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            SnapshotReader::open(&buf).unwrap_err(),
            SnapshotError::BadMagic(0x1234_5678)
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_reported() {
        assert!(matches!(
            SnapshotReader::open(&[1, 2, 3]).unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
        let mut w = SnapshotWriter::new();
        w.put_u64(1);
        let bytes = w.finish();
        let r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            r.finish(),
            Err(SnapshotError::TrailingBytes { remaining: 8 })
        ));
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let _ = r.get_u64().unwrap();
        assert!(matches!(
            r.get_u64().unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn corrupt_length_prefix_fails_fast() {
        // A length prefix claiming more elements than bytes remain must
        // error without allocating.
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            r.get_u64_vec().unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn error_messages_name_the_failure() {
        let s = SnapshotError::BadVersion(9).to_string();
        assert!(s.contains("version 9"));
        let s = SnapshotError::Mismatch("core count").to_string();
        assert!(s.contains("core count"));
    }
}
