//! Counters, histograms and the summary statistics the paper reports.
//!
//! The paper evaluates schemes by the **harmonic mean** of per-core IPC
//! (Section 2.6 argues this is the right objective for multiprogrammed
//! CMPs, citing Smith), with the arithmetic mean reported alongside.
//! This module provides those reductions plus the bookkeeping types used by
//! the cache and pipeline models.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use simcore::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero, returning the previous value.
    pub fn reset(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Hit/miss bookkeeping for one cache (or one core's view of a cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMiss {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl HitMiss {
    /// Creates zeroed hit/miss counters.
    pub const fn new() -> Self {
        HitMiss { hits: 0, misses: 0 }
    }

    /// Total accesses.
    #[inline]
    pub const fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: HitMiss) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

impl fmt::Display for HitMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.2}% miss)",
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0
        )
    }
}

/// A fixed-bucket histogram over `u64` samples; the last bucket collects
/// overflow. Used for reuse-distance and latency distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    samples: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `bucket_width` is zero.
    pub fn new(buckets: usize, bucket_width: u64) -> Self {
        assert!(
            buckets > 0 && bucket_width > 0,
            "histogram needs nonzero shape"
        );
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            samples: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = value / self.bucket_width;
        let idx = usize::try_from(bucket)
            .unwrap_or(usize::MAX)
            .min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.samples += 1;
    }

    /// Number of recorded samples.
    pub const fn samples(&self) -> u64 {
        self.samples
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The smallest value `v` such that at least `q` (0..=1) of samples are
    /// `< v + bucket_width` — an upper bound on the `q`-quantile.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        // Clamping to [0, samples] bounds the float before the integer
        // conversion, so the cast is exact (samples fits f64's mantissa for
        // any run length this simulator reaches).
        let samples_f = self.samples as f64;
        let target = (samples_f * q.clamp(0.0, 1.0)).ceil().clamp(0.0, samples_f) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as u64 + 1) * self.bucket_width;
            }
        }
        self.counts.len() as u64 * self.bucket_width
    }
}

/// Harmonic mean of per-core IPC values (the paper's headline metric).
///
/// Returns zero for an empty slice; a zero element makes the mean zero,
/// mirroring that a stalled core dominates harmonic performance.
///
/// # Example
///
/// ```
/// use simcore::stats::harmonic_mean;
/// let hm = harmonic_mean(&[1.0, 1.0, 1.0, 0.5]);
/// assert!((hm - 0.8).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut denom = 0.0;
    for &v in values {
        if v <= 0.0 {
            return 0.0;
        }
        denom += 1.0 / v;
    }
    values.len() as f64 / denom
}

/// Arithmetic mean; zero for an empty slice.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean of positive values; zero if any value is non-positive or
/// the slice is empty. Used when averaging speedup ratios across mixes.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for &v in values {
        if v <= 0.0 {
            return 0.0;
        }
        log_sum += v.ln();
    }
    (log_sum / values.len() as f64).exp()
}

/// Relative speedup of `new` over `baseline` (1.0 = parity).
///
/// Returns zero when the baseline is non-positive (undefined speedup).
pub fn speedup(new: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        new / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.reset(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn hit_miss_ratio_and_merge() {
        let mut a = HitMiss { hits: 3, misses: 1 };
        assert!((a.miss_ratio() - 0.25).abs() < 1e-12);
        a.merge(HitMiss { hits: 1, misses: 3 });
        assert_eq!(a.accesses(), 8);
        assert!((a.miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(HitMiss::new().miss_ratio(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(4, 10);
        for v in [0, 5, 10, 25, 39, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.samples(), 7);
        assert_eq!(h.counts(), &[2, 1, 1, 3]);
    }

    #[test]
    fn histogram_quantile_bound() {
        let mut h = Histogram::new(10, 1);
        for v in 0..10 {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_bound(0.5), 5);
        assert_eq!(h.quantile_upper_bound(1.0), 10);
    }

    #[test]
    fn harmonic_mean_matches_hand_computation() {
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 0.5]) - (2.0 / 3.0)).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn harmonic_le_geometric_le_arithmetic() {
        let v = [0.3, 1.1, 2.7, 0.9];
        let h = harmonic_mean(&v);
        let g = geometric_mean(&v);
        let a = arithmetic_mean(&v);
        assert!(h <= g + 1e-12 && g <= a + 1e-12);
    }

    #[test]
    fn speedup_handles_degenerate_baseline() {
        assert!((speedup(1.2, 1.0) - 1.2).abs() < 1e-12);
        assert_eq!(speedup(1.0, 0.0), 0.0);
    }
}
