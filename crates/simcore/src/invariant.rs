//! Structural-invariant auditing shared by every simulator component.
//!
//! The seed grew three separate `check_invariants() -> bool` methods (L2
//! cache, sharing engine, adaptive L3) which could only say *that*
//! something broke, never *what*. This module unifies them behind one
//! trait returning structured [`Violation`]s — which set, way, core or
//! quota is inconsistent and why — so a failed audit in a billion-access
//! run pinpoints the corruption instead of flipping a bool.
//!
//! Components implement [`Invariant`]; `nuca-sim --paranoid` audits the
//! whole L3 hierarchy after every simulation step and aborts with the
//! violation list on the first inconsistency.

use std::fmt;

/// One structural inconsistency found by an audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which component reported it (e.g. `"cache"`, `"sharing-engine"`).
    pub component: &'static str,
    /// Cache set index, when the violation is set-local.
    pub set: Option<usize>,
    /// Way within the set, when way-specific.
    pub way: Option<usize>,
    /// Core the violation concerns, when core-specific.
    pub core: Option<usize>,
    /// The quota value involved, for partitioning violations.
    pub quota: Option<u32>,
    /// What is inconsistent.
    pub message: String,
}

impl Violation {
    /// Creates a violation with only component and message; attach
    /// coordinates with the builder methods.
    pub fn new(component: &'static str, message: impl Into<String>) -> Self {
        Violation {
            component,
            set: None,
            way: None,
            core: None,
            quota: None,
            message: message.into(),
        }
    }

    /// Attaches the set index.
    #[must_use]
    pub fn at_set(mut self, set: usize) -> Self {
        self.set = Some(set);
        self
    }

    /// Attaches the way index.
    #[must_use]
    pub fn at_way(mut self, way: usize) -> Self {
        self.way = Some(way);
        self
    }

    /// Attaches the core index.
    #[must_use]
    pub fn for_core(mut self, core: usize) -> Self {
        self.core = Some(core);
        self
    }

    /// Attaches the quota value.
    #[must_use]
    pub fn with_quota(mut self, quota: u32) -> Self {
        self.quota = Some(quota);
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.component, self.message)?;
        let mut coords = Vec::new();
        if let Some(s) = self.set {
            coords.push(format!("set {s}"));
        }
        if let Some(w) = self.way {
            coords.push(format!("way {w}"));
        }
        if let Some(c) = self.core {
            coords.push(format!("core {c}"));
        }
        if let Some(q) = self.quota {
            coords.push(format!("quota {q}"));
        }
        if !coords.is_empty() {
            write!(f, " [{}]", coords.join(", "))?;
        }
        Ok(())
    }
}

/// A component whose internal structure can be audited.
pub trait Invariant {
    /// Short name used as the `component` of reported violations.
    fn component(&self) -> &'static str;

    /// Returns every structural inconsistency currently present; an empty
    /// vector means the component is consistent.
    fn audit(&self) -> Vec<Violation>;

    /// Convenience bool form, the shape the original per-component
    /// `check_invariants` methods had.
    fn is_consistent(&self) -> bool {
        self.audit().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Broken;
    impl Invariant for Broken {
        fn component(&self) -> &'static str {
            "broken"
        }
        fn audit(&self) -> Vec<Violation> {
            vec![Violation::new("broken", "dangling way")
                .at_set(3)
                .at_way(1)
                .for_core(2)
                .with_quota(5)]
        }
    }

    #[test]
    fn display_includes_coordinates() {
        let v = &Broken.audit()[0];
        assert_eq!(
            v.to_string(),
            "broken: dangling way [set 3, way 1, core 2, quota 5]"
        );
    }

    #[test]
    fn display_without_coordinates_is_bare() {
        let v = Violation::new("engine", "quota sum mismatch");
        assert_eq!(v.to_string(), "engine: quota sum mismatch");
    }

    #[test]
    fn is_consistent_mirrors_audit() {
        assert!(!Broken.is_consistent());
        struct Fine;
        impl Invariant for Fine {
            fn component(&self) -> &'static str {
                "fine"
            }
            fn audit(&self) -> Vec<Violation> {
                Vec::new()
            }
        }
        assert!(Fine.is_consistent());
    }
}
