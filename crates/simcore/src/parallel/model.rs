//! Exhaustive schedule exploration for the parallel runner's
//! claim/reassemble protocol.
//!
//! [`explore`] runs the *same* protocol pieces the production runner uses
//! — [`super::AtomicSource`], [`super::WorkerState`],
//! [`super::reassemble`] — under a virtual scheduler instead of real
//! threads: a bounded DFS that, at every protocol state, branches on
//! *which worker performs the next claim*. Because a worker's entire
//! visible interaction with shared state is the single atomic claim
//! (`fetch_add`), interleaving at claim granularity covers every behavior
//! the real scoped-thread runner can exhibit under sequential
//! consistency; everything between two claims of one worker touches only
//! worker-local state.
//!
//! On every terminal schedule the explorer asserts the runner's two
//! correctness claims:
//!
//! 1. **index-ordered reassembly** — the merged pairs form exactly
//!    `0..n`, each index claimed once;
//! 2. **bit-identical output** — the reassembled result vector equals the
//!    serial reference `(0..n).map(f)`.
//!
//! A violation is reported as a [`ScheduleViolation`] carrying the exact
//! schedule (sequence of worker ids) that produced it, so a failure is a
//! replayable counterexample rather than a flaky test.
//!
//! The schedule count is `workers^n · workers!`, so this is a small-grid
//! tool by design: 3 workers × 9 cells explores 118,098 schedules in
//! well under a second. Loom-style partial-order reduction
//! is deliberately absent — the state space is small enough that the
//! unreduced DFS stays trivially fast, and the unreduced form is easier
//! to audit.

use super::{reassemble, AtomicSource, WorkerState};

/// A counterexample: the schedule (worker id per step) under which the
/// protocol produced a wrong result, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleViolation {
    /// Worker id chosen at each step, in order.
    pub schedule: Vec<usize>,
    /// What the terminal check found.
    pub kind: ViolationKind,
}

/// The class of protocol failure a schedule exposed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// The per-worker pairs were not a permutation of `0..n`.
    NotAPermutation,
    /// Reassembled output differed from the serial reference at an index.
    OutputDiverged {
        /// First index where the outputs differ.
        index: usize,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ViolationKind::NotAPermutation => write!(
                f,
                "schedule {:?}: claimed indices are not a permutation of the grid",
                self.schedule
            ),
            ViolationKind::OutputDiverged { index } => write!(
                f,
                "schedule {:?}: output diverges from the serial reference at cell {index}",
                self.schedule
            ),
        }
    }
}

/// Summary of one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// How many complete schedules were checked.
    pub schedules: usize,
    /// Whether the schedule bound stopped the search before exhaustion.
    pub truncated: bool,
}

/// One node of the scheduler DFS: the shared source plus each worker's
/// local state and liveness.
#[derive(Clone)]
struct ModelState<R> {
    source: AtomicSource,
    workers: Vec<WorkerState<R>>,
    live: Vec<bool>,
    schedule: Vec<usize>,
}

/// Runs the claim/reassemble protocol through every interleaving of
/// `workers` virtual workers over the `n`-cell grid computed by `f`,
/// checking index-ordered reassembly and bit-identical output on each
/// complete schedule.
///
/// `bound` caps the number of complete schedules checked (`None` =
/// exhaustive); when the cap fires, [`Exploration::truncated`] is set so
/// a caller can never mistake a bounded pass for a proof.
///
/// Returns the first violating schedule as an error, which makes a CI
/// failure directly replayable.
pub fn explore<R, F>(
    workers: usize,
    n: usize,
    f: F,
    bound: Option<usize>,
) -> Result<Exploration, ScheduleViolation>
where
    R: Clone + PartialEq,
    F: Fn(usize) -> R,
{
    let expected: Vec<R> = (0..n).map(&f).collect();
    let workers = workers.max(1);
    let mut summary = Exploration {
        schedules: 0,
        truncated: false,
    };
    let root = ModelState {
        source: AtomicSource::new(n),
        workers: (0..workers).map(|_| WorkerState::new()).collect(),
        live: vec![true; workers],
        schedule: Vec::new(),
    };
    dfs(root, &f, &expected, n, bound, &mut summary)?;
    Ok(summary)
}

/// Depth-first interleaving search. Each recursion level branches on the
/// live worker that takes the next claim step; a worker observing a
/// drained source becomes done. Terminal states (all workers done) run
/// the reassembly checks.
fn dfs<R, F>(
    state: ModelState<R>,
    f: &F,
    expected: &[R],
    n: usize,
    bound: Option<usize>,
    summary: &mut Exploration,
) -> Result<(), ScheduleViolation>
where
    R: Clone + PartialEq,
    F: Fn(usize) -> R,
{
    if bound.is_some_and(|b| summary.schedules >= b) {
        summary.truncated = true;
        return Ok(());
    }
    if state.live.iter().all(|l| !l) {
        summary.schedules += 1;
        return check_terminal(state, expected, n);
    }
    for w in 0..state.workers.len() {
        if !state.live[w] {
            continue;
        }
        let mut next = state.clone();
        next.schedule.push(w);
        if let Some(slot) = next.workers.get_mut(w) {
            if !slot.step(&next.source, f) {
                next.live[w] = false;
            }
        }
        dfs(next, f, expected, n, bound, summary)?;
    }
    Ok(())
}

/// The two per-schedule assertions: permutation reassembly and
/// bit-identical output.
fn check_terminal<R: Clone + PartialEq>(
    state: ModelState<R>,
    expected: &[R],
    n: usize,
) -> Result<(), ScheduleViolation> {
    let locals: Vec<Vec<(usize, R)>> = state
        .workers
        .into_iter()
        .map(WorkerState::into_local)
        .collect();
    let Some(out) = reassemble(locals, n) else {
        return Err(ScheduleViolation {
            schedule: state.schedule,
            kind: ViolationKind::NotAPermutation,
        });
    };
    if let Some(index) = (0..n).find(|&i| out.get(i) != expected.get(i)) {
        return Err(ScheduleViolation {
            schedule: state.schedule,
            kind: ViolationKind::OutputDiverged { index },
        });
    }
    Ok(())
}

/// Closed form for the number of complete schedules [`explore`] visits:
/// interleavings of `w` workers' step sequences, where each worker takes
/// some claims (a composition of `n`) plus one final drained step.
/// Exposed so tests can assert the DFS is genuinely exhaustive rather
/// than silently pruning.
pub fn schedule_count(workers: usize, n: usize) -> usize {
    // While work remains, every step is a successful claim by any of the
    // `w` live workers (`w^n` orderings); once the source drains, each
    // worker must still observe the drain once, in any order (`w!`
    // orderings). Saturating keeps an oversized request from wrapping —
    // the DFS would never finish such a space anyway.
    let w = workers.max(1);
    let claims = (0..n).fold(1usize, |acc, _| acc.saturating_mul(w));
    let drains = (1..=w).fold(1usize, |acc, k| acc.saturating_mul(k));
    claims.saturating_mul(drains)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_two_workers_four_cells() {
        let ex = explore(2, 4, |i| (i as u64).wrapping_mul(0x9e37_79b9), None)
            .expect("no schedule may violate the protocol");
        assert!(!ex.truncated);
        assert_eq!(ex.schedules, schedule_count(2, 4));
        assert!(ex.schedules > 1, "must branch, got {}", ex.schedules);
    }

    #[test]
    fn exhaustive_three_workers_3x3_grid() {
        let ex = explore(3, 9, |i| i * i, None).expect("no schedule may violate");
        assert!(!ex.truncated);
        assert_eq!(ex.schedules, schedule_count(3, 9));
    }

    #[test]
    fn bounded_run_reports_truncation() {
        let ex = explore(3, 9, |i| i, Some(100)).expect("prefix schedules are clean");
        assert!(ex.truncated);
        assert_eq!(ex.schedules, 100);
    }

    #[test]
    fn degenerate_grids() {
        let ex = explore(2, 0, |i| i, None).expect("empty grid");
        assert_eq!(ex.schedules, 2, "two drain orders and nothing else");
        let ex = explore(1, 5, |i| i, None).expect("single worker");
        assert_eq!(ex.schedules, 1, "serial order is the only schedule");
    }

    #[test]
    fn schedule_count_matches_hand_enumeration() {
        // 1 worker, n cells: exactly one schedule.
        assert_eq!(schedule_count(1, 3), 1);
        // 2 workers, 0 cells: both drain, in either order: 2 schedules.
        assert_eq!(schedule_count(2, 0), 2);
        // 2 workers, 1 cell: claim by A or B, then two drain orders = 2*2.
        assert_eq!(schedule_count(2, 1), 4);
    }

    #[test]
    fn a_broken_reassembly_is_caught_with_a_replayable_schedule() {
        // Sabotage: a worker pool where one worker's local pairs collide
        // (simulated by a source that double-hands-out index 0).
        struct DoubleSource {
            inner: std::sync::atomic::AtomicUsize,
        }
        impl crate::parallel::WorkSource for DoubleSource {
            fn claim(&self) -> Option<usize> {
                let i = self
                    .inner
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                // Hand out 0 twice, then drain: [0, 0, None...]
                (i < 2).then_some(0)
            }
        }
        let src = DoubleSource {
            inner: std::sync::atomic::AtomicUsize::new(0),
        };
        let f = |i: usize| i;
        let mut w = crate::parallel::WorkerState::new();
        while w.step(&src, &f) {}
        let out = crate::parallel::reassemble(vec![w.into_local()], 2);
        assert_eq!(out, None, "duplicate claims must be rejected");
    }
}
