//! Deterministic scoped-thread runner for independent simulation cells.
//!
//! Every figure in the paper is a grid of *cells* — one (machine,
//! organization, mix) simulation each — with no data flowing between
//! cells. [`run_indexed`] executes such a grid on `jobs` worker threads
//! using [`std::thread::scope`] and a shared atomic work index
//! (work-stealing by next-index claim), then reassembles the results in
//! cell order. Because each cell seeds its own [`crate::rng::SimRng`]
//! stream and touches no shared mutable state, the output is
//! **bit-identical** for every `jobs` value, including `jobs == 1`
//! (which short-circuits to a plain serial loop and spawns nothing).
//!
//! The claim/reassemble protocol is factored into three pieces the real
//! runner and the [`model`] schedule explorer share, so the property the
//! explorer proves is the property the runner actually executes:
//!
//! - [`WorkSource`] — the claim protocol (production impl:
//!   [`AtomicSource`], a `fetch_add` over `0..n`);
//! - [`WorkerState`] — one worker's loop body, advanced one claim at a
//!   time by [`WorkerState::step`];
//! - [`reassemble`] — the index-ordered merge of per-worker results.
//!
//! [`model`] drives these same pieces through *every* interleaving of
//! worker steps on small grids, turning "bit-identical for any `--jobs`"
//! from a sampled property into an exhaustively checked one.
//!
//! This is the only module in the workspace allowed to spawn threads
//! (enforced by `nuca-lint` rule L5): ad-hoc threading elsewhere could
//! reorder floating-point reductions or share RNG streams and silently
//! break the determinism the test suite relies on.

pub mod model;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use when the caller asked for "auto":
/// the host's available parallelism, or 1 if it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing `--jobs` value: `0` means "auto" (one worker
/// per available core), anything else is taken literally.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

/// The claim side of the work-stealing protocol: hands out each cell
/// index exactly once, then reports drained.
///
/// The real runner uses [`AtomicSource`] across threads; the model
/// checker drives the same trait from a virtual scheduler, so every
/// protocol state the explorer visits is one the runner can reach.
pub trait WorkSource: Sync {
    /// Claims the next unprocessed cell index, or `None` once the grid
    /// is drained. Each index in `0..n` is returned exactly once across
    /// all callers.
    fn claim(&self) -> Option<usize>;
}

/// Production [`WorkSource`]: a shared atomic counter over `0..n`.
///
/// `fetch_add` makes the claim a single atomic read-modify-write, so a
/// slow cell never stalls the rest of the grid (work-stealing by claim
/// rather than by deque).
#[derive(Debug)]
pub struct AtomicSource {
    next: AtomicUsize,
    n: usize,
}

impl AtomicSource {
    /// A source that will hand out `0..n` once each.
    pub fn new(n: usize) -> AtomicSource {
        AtomicSource {
            next: AtomicUsize::new(0),
            n,
        }
    }
}

impl Clone for AtomicSource {
    fn clone(&self) -> AtomicSource {
        AtomicSource {
            next: AtomicUsize::new(self.next.load(Ordering::Relaxed)),
            n: self.n,
        }
    }
}

impl WorkSource for AtomicSource {
    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.n).then_some(i)
    }
}

/// One worker's half of the protocol: local `(index, result)` pairs,
/// advanced one claim at a time.
#[derive(Debug, Clone, Default)]
pub struct WorkerState<R> {
    local: Vec<(usize, R)>,
}

impl<R> WorkerState<R> {
    /// A worker with no claims yet.
    pub fn new() -> WorkerState<R> {
        WorkerState { local: Vec::new() }
    }

    /// One protocol step: claim the next index from `source` and run the
    /// cell. Returns `false` when the source is drained (the worker's
    /// exit condition).
    pub fn step<S: WorkSource + ?Sized, F: Fn(usize) -> R>(&mut self, source: &S, f: &F) -> bool {
        match source.claim() {
            Some(i) => {
                self.local.push((i, f(i)));
                true
            }
            None => false,
        }
    }

    /// The worker's accumulated `(index, result)` pairs, in claim order.
    pub fn into_local(self) -> Vec<(usize, R)> {
        self.local
    }
}

/// Merges per-worker `(index, result)` pairs into index order — the
/// reassembly half of the protocol. Returns `None` if the pairs are not
/// a permutation of `0..n` (a protocol violation: an index claimed twice
/// or never).
pub fn reassemble<R>(locals: Vec<Vec<(usize, R)>>, n: usize) -> Option<Vec<R>> {
    let mut pairs: Vec<(usize, R)> = locals.into_iter().flatten().collect();
    if pairs.len() != n {
        return None;
    }
    pairs.sort_unstable_by_key(|(i, _)| *i);
    if pairs
        .iter()
        .enumerate()
        .any(|(want, (got, _))| want != *got)
    {
        return None;
    }
    Some(pairs.into_iter().map(|(_, r)| r).collect())
}

/// Runs `f(0..n)` on up to `jobs` scoped worker threads and returns the
/// results in index order.
///
/// Workers claim cell indices from a shared [`AtomicSource`]; each
/// worker keeps `(index, result)` pairs locally ([`WorkerState`]); after
/// all workers join, [`reassemble`] merges the pairs by index, so the
/// caller sees exactly the order a serial loop would produce regardless
/// of thread scheduling. [`model::explore`] checks this protocol under
/// every possible schedule.
///
/// With `jobs <= 1` or `n <= 1` no threads are spawned at all — the
/// serial path is the parallel path's reference semantics, not a
/// separate implementation.
///
/// A panic inside `f` is propagated to the caller after the remaining
/// workers drain (standard scoped-thread behavior).
pub fn run_indexed<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let source = AtomicSource::new(n);
    let f = &f;
    let source = &source;
    let mut locals: Vec<Vec<(usize, R)>> = Vec::with_capacity(jobs);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(move || {
                    let mut state = WorkerState::new();
                    while state.step(source, f) {}
                    state.into_local()
                })
            })
            .collect();
        for w in workers {
            match w.join() {
                Ok(local) => locals.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Every index in 0..n is claimed by exactly one fetch_add, so after
    // a panic-free join the pairs are a permutation of 0..n.
    match reassemble(locals, n) {
        Some(out) => out,
        None => {
            debug_assert!(
                false,
                "claim protocol violated: result set is not a permutation"
            );
            Vec::new()
        }
    }
}

/// Maps `f` over a slice on up to `jobs` worker threads, preserving
/// order (convenience wrapper over [`run_indexed`]).
pub fn map_slice<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_indexed(jobs, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(1, 100, |i| i * i);
        for jobs in [2, 3, 4, 8, 100, 1000] {
            assert_eq!(run_indexed(jobs, 100, |i| i * i), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_grids() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 7), vec![7]);
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn results_are_in_index_order_under_contention() {
        // Uneven per-cell work so threads finish out of order.
        let out = run_indexed(4, 64, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn map_slice_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = map_slice(3, &items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_jobs_auto_and_literal() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn atomic_source_hands_out_each_index_once() {
        let s = AtomicSource::new(3);
        assert_eq!(s.claim(), Some(0));
        assert_eq!(s.claim(), Some(1));
        assert_eq!(s.claim(), Some(2));
        assert_eq!(s.claim(), None);
        assert_eq!(s.claim(), None, "drained source stays drained");
    }

    #[test]
    fn reassemble_rejects_protocol_violations() {
        assert_eq!(
            reassemble(vec![vec![(1, 'b')], vec![(0, 'a')]], 2),
            Some(vec!['a', 'b'])
        );
        assert_eq!(reassemble(vec![vec![(0, 'a')]], 2), None, "missing index");
        assert_eq!(
            reassemble(vec![vec![(0, 'a'), (0, 'b')]], 2),
            None,
            "duplicate claim"
        );
    }
}
