//! Machine configuration: Table 1 of the paper, encoded as data.
//!
//! [`MachineConfig::baseline`] reproduces the baseline CMP used for all
//! experiments: four 4-wide out-of-order cores, per-core L1/L2, and a
//! 4-MByte last-level (L3) cache that the different organizations under
//! study manage differently. The derived configurations used by the
//! evaluation section are also provided:
//!
//! - [`MachineConfig::with_l3_scale`] — the 8-MByte L3 of Figure 9,
//! - [`MachineConfig::technology_scaled`] — the latency-scaled machine of
//!   Figure 10 (L2 9→11 cycles, L3 14/19→16/24, memory 258/260→330/338).

use std::fmt;

use crate::error::{ConfigError, Result};

/// Geometry and latency of one cache level.
///
/// # Example
///
/// ```
/// use simcore::config::CacheGeometry;
/// let l1d = CacheGeometry::new(64 * 1024, 2, 64, 3).unwrap();
/// assert_eq!(l1d.sets(), 512);
/// assert_eq!(l1d.offset_bits(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    assoc: u32,
    block_bytes: u32,
    latency: u64,
}

impl CacheGeometry {
    /// Creates a cache geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the block size or total size is not a
    /// power of two, if the associativity is zero or above 32, or if the
    /// size is not divisible into whole sets.
    pub fn new(size_bytes: u64, assoc: u32, block_bytes: u32, latency: u64) -> Result<Self> {
        if !block_bytes.is_power_of_two() {
            return Err(ConfigError::new("cache block size must be a power of two"));
        }
        if assoc == 0 {
            return Err(ConfigError::new("cache associativity must be nonzero"));
        }
        // Per-set validity/dirty state is a u32 bitmask, so associativity
        // caps at 32 ways — Table 1's largest configuration is the 4-core
        // shared L3 at 16 ways, and the robustness suite goes to 32 (the
        // 8-core chip).
        if assoc > 32 {
            return Err(ConfigError::new(
                "cache associativity above 32 is not supported (per-set bitmask encoding)",
            ));
        }
        if size_bytes == 0 || !size_bytes.is_multiple_of(assoc as u64 * block_bytes as u64) {
            return Err(ConfigError::new(
                "cache size must be a nonzero multiple of associativity times block size",
            ));
        }
        let sets = size_bytes / (assoc as u64 * block_bytes as u64);
        if !sets.is_power_of_two() {
            return Err(ConfigError::new(
                "number of cache sets must be a power of two",
            ));
        }
        Ok(CacheGeometry {
            size_bytes,
            assoc,
            block_bytes,
            latency,
        })
    }

    /// Const constructor for statically-known geometries (the Table 1
    /// constants). Enforces the same invariants as [`CacheGeometry::new`];
    /// used to initialize a `const`, a violation is a compile error rather
    /// than a runtime panic.
    const fn checked(size_bytes: u64, assoc: u32, block_bytes: u32, latency: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "cache block size must be a power of two"
        );
        assert!(
            assoc != 0 && assoc <= 32,
            "cache associativity must be in 1..=32"
        );
        assert!(
            size_bytes != 0 && size_bytes.is_multiple_of(assoc as u64 * block_bytes as u64),
            "cache size must be a nonzero multiple of associativity times block size"
        );
        let sets = size_bytes / (assoc as u64 * block_bytes as u64);
        assert!(
            sets.is_power_of_two(),
            "number of cache sets must be a power of two"
        );
        CacheGeometry {
            size_bytes,
            assoc,
            block_bytes,
            latency,
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (ways per set).
    #[inline]
    pub const fn total_ways(&self) -> u32 {
        self.assoc
    }

    /// Block (line) size in bytes.
    #[inline]
    pub const fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Hit latency in cycles.
    #[inline]
    pub const fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of sets.
    #[inline]
    pub const fn sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.block_bytes as u64)
    }

    /// log2 of the block size.
    #[inline]
    pub const fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// log2 of the number of sets.
    #[inline]
    pub const fn index_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// Returns a copy with a different hit latency.
    #[must_use]
    pub const fn with_latency(mut self, latency: u64) -> Self {
        self.latency = latency;
        self
    }

    /// Returns a copy scaled to `factor` times the capacity (same
    /// associativity, more sets).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the scaled size is invalid.
    pub fn scaled_capacity(&self, factor: u64) -> Result<Self> {
        CacheGeometry::new(
            self.size_bytes * factor,
            self.assoc,
            self.block_bytes,
            self.latency,
        )
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB {}-way, {} B blocks, {}-cycle",
            self.size_bytes / 1024,
            self.assoc,
            self.block_bytes,
            self.latency
        )
    }
}

/// Pipeline parameters of one out-of-order core (Table 1, upper half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineConfig {
    /// Register update unit (instruction window / ROB) size.
    pub ruu_size: usize,
    /// Load/store queue size.
    pub lsq_size: usize,
    /// Fetch queue size in instructions.
    pub fetch_queue: usize,
    /// Fetch, decode, issue and commit width (instructions per cycle).
    pub width: usize,
    /// Number of integer ALUs.
    pub int_alus: usize,
    /// Number of floating-point ALUs.
    pub fp_alus: usize,
    /// Number of integer multiply/divide units.
    pub int_mul: usize,
    /// Number of floating-point multiply/divide units.
    pub fp_mul: usize,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
}

impl PipelineConfig {
    /// The Table 1 baseline pipeline.
    pub const TABLE1: Self = PipelineConfig {
        ruu_size: 128,
        lsq_size: 64,
        fetch_queue: 4,
        width: 4,
        int_alus: 4,
        fp_alus: 4,
        int_mul: 1,
        fp_mul: 1,
        mispredict_penalty: 7,
    };
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::TABLE1
    }
}

/// Branch predictor parameters (combined predictor with BTB, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchConfig {
    /// Bimodal table entries.
    pub bimodal_entries: usize,
    /// Second-level (history-indexed) table entries.
    pub level2_entries: usize,
    /// Global history length in bits.
    pub history_bits: u32,
    /// Chooser (meta-predictor) table entries.
    pub chooser_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Branch target buffer associativity.
    pub btb_assoc: usize,
}

impl BranchConfig {
    /// The Table 1 baseline combined predictor.
    pub const TABLE1: Self = BranchConfig {
        bimodal_entries: 4096,
        level2_entries: 1024,
        history_bits: 10,
        chooser_entries: 4096,
        btb_entries: 512,
        btb_assoc: 4,
    };
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig::TABLE1
    }
}

/// Translation lookaside buffer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Number of fully-associative entries.
    pub entries: usize,
    /// Miss penalty in cycles.
    pub miss_penalty: u64,
}

impl TlbConfig {
    /// The Table 1 baseline TLB.
    pub const TABLE1: Self = TlbConfig {
        entries: 128,
        miss_penalty: 30,
    };
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::TABLE1
    }
}

/// Main-memory timing (Table 1, "Main Memory" row).
///
/// The first chunk of a line fill arrives after `first_chunk_*` cycles;
/// subsequent 8-byte chunks arrive every `inter_chunk` cycles. The shared
/// off-chip bus enforces the 9 GB/s (2 bytes/cycle at 4.5 GHz) limit by
/// serializing chunk transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryConfig {
    /// First-chunk latency when the L3 is organized as a shared/NUCA cache.
    pub first_chunk_shared: u64,
    /// First-chunk latency when the L3 is a pure private organization
    /// (two cycles less: no global lookup before going off chip).
    pub first_chunk_private: u64,
    /// Cycles between successive chunks of the same line fill.
    pub inter_chunk: u64,
    /// Chunk size in bytes.
    pub chunk_bytes: u32,
}

impl MemoryConfig {
    /// The Table 1 baseline memory timing.
    pub const TABLE1: Self = MemoryConfig {
        first_chunk_shared: 260,
        first_chunk_private: 258,
        inter_chunk: 4,
        chunk_bytes: 8,
    };
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::TABLE1
    }
}

impl MemoryConfig {
    /// Number of chunks in one `block_bytes`-byte line fill.
    #[inline]
    pub const fn chunks_per_line(&self, block_bytes: u32) -> u64 {
        (block_bytes / self.chunk_bytes) as u64
    }

    /// Bus occupancy of one line fill in cycles.
    #[inline]
    pub const fn line_occupancy(&self, block_bytes: u32) -> u64 {
        self.chunks_per_line(block_bytes) * self.inter_chunk
    }
}

/// Last-level (L3) cache description: both the shared and the per-core
/// private geometries, since the organizations under study interpret the
/// same silicon differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct L3Config {
    /// The aggregate shared organization: 4 MByte, 16-way, 19 cycles.
    pub shared: CacheGeometry,
    /// One core's private slice: 1 MByte, 4-way, 14 cycles.
    pub private: CacheGeometry,
    /// Latency of a hit in a neighboring slice or in the shared partition.
    pub neighbor_latency: u64,
    /// Set-sampled simulation: `Some(k)` simulates only `1/2^k` of the
    /// last-level sets in full detail (selected in the shared-geometry
    /// index frame) and charges accesses to unsampled sets a calibrated
    /// latency estimate, SMARTS-style. `None` (the default) simulates
    /// every set; `Some(0)` routes through the sampling wrapper with
    /// full membership — same results, used by the differential tests.
    pub sample_shift: Option<u32>,
}

impl L3Config {
    /// The baseline 4-MByte L3 of Table 1 for a `cores`-core chip.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cores` is zero or the derived geometries
    /// are invalid.
    pub fn baseline(cores: usize) -> Result<Self> {
        if cores == 0 {
            return Err(ConfigError::new("core count must be nonzero"));
        }
        let shared_bytes = 4 * 1024 * 1024;
        let shared = CacheGeometry::new(shared_bytes, 4 * cores as u32, 64, 19)?;
        let private = CacheGeometry::new(shared_bytes / cores as u64, 4, 64, 14)?;
        Ok(L3Config {
            shared,
            private,
            neighbor_latency: 19,
            sample_shift: None,
        })
    }
}

/// The complete simulated machine: Table 1 of the paper.
///
/// Construct with [`MachineConfig::baseline`] or via
/// [`MachineConfigBuilder`]; derive the evaluation variants with
/// [`MachineConfig::with_l3_scale`] (Figure 9) and
/// [`MachineConfig::technology_scaled`] (Figure 10).
///
/// # Example
///
/// ```
/// use simcore::config::MachineConfig;
/// let m = MachineConfig::baseline();
/// let big = m.with_l3_scale(2).unwrap();     // Figure 9: 8-MByte L3
/// assert_eq!(big.l3.shared.size_bytes(), 8 * 1024 * 1024);
/// let scaled = m.technology_scaled();        // Figure 10 latencies
/// assert_eq!(scaled.l2.latency(), 11);
/// assert_eq!(scaled.memory.first_chunk_shared, 338);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Number of independent cores (the paper evaluates 4).
    pub cores: usize,
    /// Pipeline parameters shared by all cores.
    pub pipeline: PipelineConfig,
    /// Branch predictor parameters.
    pub branch: BranchConfig,
    /// L1 instruction cache: 64 KiB 2-way, 2-cycle.
    pub l1i: CacheGeometry,
    /// L1 data cache: 64 KiB 2-way, 3-cycle.
    pub l1d: CacheGeometry,
    /// Unified per-core L2: 256 KiB 4-way, 9-cycle.
    pub l2: CacheGeometry,
    /// Last-level cache description.
    pub l3: L3Config,
    /// Instruction/data TLBs.
    pub tlb: TlbConfig,
    /// Main memory and off-chip bus.
    pub memory: MemoryConfig,
}

impl MachineConfig {
    /// The baseline 4-core machine of Table 1 as a compile-time constant.
    ///
    /// Every geometry goes through [`CacheGeometry::checked`], so an
    /// invalid constant fails the build instead of erroring at runtime;
    /// the cross-field invariants are pinned by unit test against
    /// [`MachineConfigBuilder`].
    pub const TABLE1: Self = MachineConfig {
        cores: 4,
        pipeline: PipelineConfig::TABLE1,
        branch: BranchConfig::TABLE1,
        l1i: CacheGeometry::checked(64 * 1024, 2, 64, 2),
        l1d: CacheGeometry::checked(64 * 1024, 2, 64, 3),
        l2: CacheGeometry::checked(256 * 1024, 4, 64, 9),
        l3: L3Config {
            shared: CacheGeometry::checked(4 * 1024 * 1024, 16, 64, 19),
            private: CacheGeometry::checked(1024 * 1024, 4, 64, 14),
            neighbor_latency: 19,
            sample_shift: None,
        },
        tlb: TlbConfig::TABLE1,
        memory: MemoryConfig::TABLE1,
    };

    /// The baseline 4-core configuration of Table 1.
    pub const fn baseline() -> Self {
        Self::TABLE1
    }

    /// Returns a copy with the L3 capacity multiplied by `factor`
    /// (Figure 9 uses `factor = 2` for the 8-MByte cache, keeping the same
    /// timing model as the 4-MByte cache, as the paper does).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the scaled geometry is invalid.
    pub fn with_l3_scale(&self, factor: u64) -> Result<Self> {
        let mut next = *self;
        next.l3.shared = self.l3.shared.scaled_capacity(factor)?;
        next.l3.private = self.l3.private.scaled_capacity(factor)?;
        Ok(next)
    }

    /// The technology-scaled machine of Section 4.5 / Figure 10.
    ///
    /// Core cycle time shrinks by 30 % while wires do not: L2 goes from 9 to
    /// 11 cycles, the L3 private/shared latencies from 14/19 to 16/24, and
    /// main memory from 258/260 to 330/338 cycles.
    #[must_use]
    pub fn technology_scaled(&self) -> Self {
        let mut next = *self;
        next.l2 = next.l2.with_latency(11);
        next.l3.private = next.l3.private.with_latency(16);
        next.l3.shared = next.l3.shared.with_latency(24);
        next.l3.neighbor_latency = 24;
        next.memory.first_chunk_private = 330;
        next.memory.first_chunk_shared = 338;
        next
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when block sizes disagree between levels or
    /// the L3 slices do not tile the shared capacity.
    pub fn validate(&self) -> Result<()> {
        if self.cores == 0 || self.cores > 256 {
            return Err(ConfigError::new("core count must be in 1..=256"));
        }
        let b = self.l1d.block_bytes();
        if self.l1i.block_bytes() != b
            || self.l2.block_bytes() != b
            || self.l3.shared.block_bytes() != b
            || self.l3.private.block_bytes() != b
        {
            return Err(ConfigError::new(
                "all cache levels must share one block size",
            ));
        }
        if self.l3.private.size_bytes() * self.cores as u64 != self.l3.shared.size_bytes() {
            return Err(ConfigError::new(
                "private L3 slices must tile the shared L3 capacity exactly",
            ));
        }
        if self.l3.private.total_ways() * self.cores as u32 != self.l3.shared.total_ways() {
            return Err(ConfigError::new(
                "private L3 ways times cores must equal shared L3 ways",
            ));
        }
        if let Some(shift) = self.l3.sample_shift {
            if shift >= self.l3.shared.index_bits() {
                return Err(ConfigError::new(
                    "L3 sample shift must leave at least one sampled set",
                ));
            }
        }
        if self.pipeline.width == 0 || self.pipeline.ruu_size == 0 {
            return Err(ConfigError::new(
                "pipeline width and RUU size must be nonzero",
            ));
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::baseline()
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cores, {}-wide OoO, RUU {} / LSQ {}",
            self.cores, self.pipeline.width, self.pipeline.ruu_size, self.pipeline.lsq_size
        )?;
        writeln!(f, "L1I {}", self.l1i)?;
        writeln!(f, "L1D {}", self.l1d)?;
        writeln!(f, "L2  {}", self.l2)?;
        writeln!(
            f,
            "L3  shared {} / private slice {} (neighbor {}-cycle)",
            self.l3.shared, self.l3.private, self.l3.neighbor_latency
        )?;
        write!(
            f,
            "mem {}+{}x{} cycles ({} B chunks)",
            self.memory.first_chunk_shared,
            self.memory.chunks_per_line(self.l1d.block_bytes()) - 1,
            self.memory.inter_chunk,
            self.memory.chunk_bytes
        )
    }
}

/// Builder for [`MachineConfig`] (C-BUILDER).
///
/// All setters take and return `&mut self`; call [`build`](Self::build) to
/// validate and produce the configuration.
///
/// # Example
///
/// ```
/// use simcore::config::MachineConfigBuilder;
/// let m = MachineConfigBuilder::new()
///     .cores(4)
///     .l3_private_latency(14)
///     .build()
///     .unwrap();
/// assert_eq!(m.l3.private.latency(), 14);
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cores: usize,
    pipeline: PipelineConfig,
    branch: BranchConfig,
    tlb: TlbConfig,
    memory: MemoryConfig,
    l2_size: u64,
    l3_shared_latency: u64,
    l3_private_latency: u64,
    l3_neighbor_latency: u64,
    l3_capacity: u64,
}

impl MachineConfigBuilder {
    /// Starts from the Table 1 baseline.
    pub fn new() -> Self {
        MachineConfigBuilder {
            cores: 4,
            pipeline: PipelineConfig::default(),
            branch: BranchConfig::default(),
            tlb: TlbConfig::default(),
            memory: MemoryConfig::default(),
            l2_size: 256 * 1024,
            l3_shared_latency: 19,
            l3_private_latency: 14,
            l3_neighbor_latency: 19,
            l3_capacity: 4 * 1024 * 1024,
        }
    }

    /// Sets the number of cores.
    pub fn cores(&mut self, cores: usize) -> &mut Self {
        self.cores = cores;
        self
    }

    /// Sets the pipeline parameters.
    pub fn pipeline(&mut self, pipeline: PipelineConfig) -> &mut Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the branch predictor parameters.
    pub fn branch(&mut self, branch: BranchConfig) -> &mut Self {
        self.branch = branch;
        self
    }

    /// Sets the TLB parameters.
    pub fn tlb(&mut self, tlb: TlbConfig) -> &mut Self {
        self.tlb = tlb;
        self
    }

    /// Sets the memory timing.
    pub fn memory(&mut self, memory: MemoryConfig) -> &mut Self {
        self.memory = memory;
        self
    }

    /// Sets the unified L2 capacity in bytes.
    pub fn l2_size(&mut self, bytes: u64) -> &mut Self {
        self.l2_size = bytes;
        self
    }

    /// Sets the aggregate L3 capacity in bytes.
    pub fn l3_capacity(&mut self, bytes: u64) -> &mut Self {
        self.l3_capacity = bytes;
        self
    }

    /// Sets the shared-organization L3 hit latency.
    pub fn l3_shared_latency(&mut self, cycles: u64) -> &mut Self {
        self.l3_shared_latency = cycles;
        self
    }

    /// Sets the private-slice L3 hit latency.
    pub fn l3_private_latency(&mut self, cycles: u64) -> &mut Self {
        self.l3_private_latency = cycles;
        self
    }

    /// Sets the neighbor-slice / shared-partition hit latency.
    pub fn l3_neighbor_latency(&mut self, cycles: u64) -> &mut Self {
        self.l3_neighbor_latency = cycles;
        self
    }

    /// Validates and builds the [`MachineConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any geometry is invalid or cross-field
    /// invariants fail.
    pub fn build(&self) -> Result<MachineConfig> {
        let l1i = CacheGeometry::new(64 * 1024, 2, 64, 2)?;
        let l1d = CacheGeometry::new(64 * 1024, 2, 64, 3)?;
        let l2 = CacheGeometry::new(self.l2_size, 4, 64, 9)?;
        let shared = CacheGeometry::new(
            self.l3_capacity,
            4 * self.cores as u32,
            64,
            self.l3_shared_latency,
        )?;
        let private = CacheGeometry::new(
            self.l3_capacity / self.cores.max(1) as u64,
            4,
            64,
            self.l3_private_latency,
        )?;
        let config = MachineConfig {
            cores: self.cores,
            pipeline: self.pipeline,
            branch: self.branch,
            l1i,
            l1d,
            l2,
            l3: L3Config {
                shared,
                private,
                neighbor_latency: self.l3_neighbor_latency,
                sample_shift: None,
            },
            tlb: self.tlb,
            memory: self.memory,
        };
        config.validate()?;
        Ok(config)
    }
}

impl Default for MachineConfigBuilder {
    fn default() -> Self {
        MachineConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_1() {
        let m = MachineConfig::baseline();
        assert_eq!(m.cores, 4);
        assert_eq!(m.pipeline.ruu_size, 128);
        assert_eq!(m.pipeline.lsq_size, 64);
        assert_eq!(m.pipeline.width, 4);
        assert_eq!(m.pipeline.mispredict_penalty, 7);
        assert_eq!(m.l1i.size_bytes(), 64 * 1024);
        assert_eq!(m.l1i.latency(), 2);
        assert_eq!(m.l1d.latency(), 3);
        assert_eq!(m.l2.size_bytes(), 256 * 1024);
        assert_eq!(m.l2.latency(), 9);
        assert_eq!(m.l3.shared.size_bytes(), 4 * 1024 * 1024);
        assert_eq!(m.l3.shared.total_ways(), 16);
        assert_eq!(m.l3.shared.latency(), 19);
        assert_eq!(m.l3.private.size_bytes(), 1024 * 1024);
        assert_eq!(m.l3.private.total_ways(), 4);
        assert_eq!(m.l3.private.latency(), 14);
        assert_eq!(m.l3.neighbor_latency, 19);
        assert_eq!(m.tlb.entries, 128);
        assert_eq!(m.tlb.miss_penalty, 30);
        assert_eq!(m.memory.first_chunk_shared, 260);
        assert_eq!(m.memory.first_chunk_private, 258);
        assert_eq!(m.memory.inter_chunk, 4);
        m.validate().unwrap();
    }

    #[test]
    fn const_baseline_equals_builder_output() {
        // The compile-time TABLE1 constant and the runtime builder must
        // describe the same machine, so neither can silently drift.
        let built = MachineConfigBuilder::new().build().unwrap();
        assert_eq!(MachineConfig::TABLE1, built);
        MachineConfig::TABLE1.validate().unwrap();
    }

    #[test]
    fn geometry_rejects_bad_parameters() {
        assert!(CacheGeometry::new(1000, 2, 64, 1).is_err());
        assert!(CacheGeometry::new(64 * 1024, 0, 64, 1).is_err());
        assert!(CacheGeometry::new(64 * 1024, 2, 48, 1).is_err());
        assert!(CacheGeometry::new(0, 2, 64, 1).is_err());
    }

    #[test]
    fn geometry_derived_fields() {
        let g = CacheGeometry::new(4 * 1024 * 1024, 16, 64, 19).unwrap();
        assert_eq!(g.sets(), 4096);
        assert_eq!(g.index_bits(), 12);
        assert_eq!(g.offset_bits(), 6);
    }

    #[test]
    fn figure9_scaling_doubles_l3() {
        let m = MachineConfig::baseline().with_l3_scale(2).unwrap();
        assert_eq!(m.l3.shared.size_bytes(), 8 * 1024 * 1024);
        assert_eq!(m.l3.private.size_bytes(), 2 * 1024 * 1024);
        // Same timing model as the 4-MByte cache, per Section 4.4.
        assert_eq!(m.l3.shared.latency(), 19);
        m.validate().unwrap();
    }

    #[test]
    fn figure10_technology_scaling_latencies() {
        let m = MachineConfig::baseline().technology_scaled();
        assert_eq!(m.l2.latency(), 11);
        assert_eq!(m.l3.private.latency(), 16);
        assert_eq!(m.l3.shared.latency(), 24);
        assert_eq!(m.l3.neighbor_latency, 24);
        assert_eq!(m.memory.first_chunk_private, 330);
        assert_eq!(m.memory.first_chunk_shared, 338);
        m.validate().unwrap();
    }

    #[test]
    fn memory_chunk_arithmetic() {
        let mem = MemoryConfig::default();
        assert_eq!(mem.chunks_per_line(64), 8);
        assert_eq!(mem.line_occupancy(64), 32);
    }

    #[test]
    fn builder_customization() {
        let m = MachineConfigBuilder::new()
            .cores(2)
            .l3_capacity(2 * 1024 * 1024)
            .l3_private_latency(12)
            .build()
            .unwrap();
        assert_eq!(m.cores, 2);
        assert_eq!(m.l3.shared.total_ways(), 8);
        assert_eq!(m.l3.private.latency(), 12);
    }

    #[test]
    fn builder_rejects_zero_cores() {
        assert!(MachineConfigBuilder::new().cores(0).build().is_err());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(format!("{}", MachineConfig::baseline()).contains("L3"));
    }
}
