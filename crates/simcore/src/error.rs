//! Error types for the simulator foundation.

use std::error::Error;
use std::fmt;

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, ConfigError>;

/// An invalid machine or experiment configuration.
///
/// # Example
///
/// ```
/// use simcore::config::CacheGeometry;
/// let err = CacheGeometry::new(1000, 2, 64, 1).unwrap_err();
/// assert!(err.to_string().contains("power of two") || !err.to_string().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        let e = ConfigError::new("cache size must be a power of two");
        assert!(e.to_string().starts_with("invalid configuration"));
        assert_eq!(e.message(), "cache size must be a power of two");
    }
}
