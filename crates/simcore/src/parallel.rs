//! Deterministic scoped-thread runner for independent simulation cells.
//!
//! Every figure in the paper is a grid of *cells* — one (machine,
//! organization, mix) simulation each — with no data flowing between
//! cells. [`run_indexed`] executes such a grid on `jobs` worker threads
//! using [`std::thread::scope`] and a shared atomic work index
//! (work-stealing by next-index claim), then reassembles the results in
//! cell order. Because each cell seeds its own [`crate::rng::SimRng`]
//! stream and touches no shared mutable state, the output is
//! **bit-identical** for every `jobs` value, including `jobs == 1`
//! (which short-circuits to a plain serial loop and spawns nothing).
//!
//! This is the only module in the workspace allowed to spawn threads
//! (enforced by `nuca-lint` rule L5): ad-hoc threading elsewhere could
//! reorder floating-point reductions or share RNG streams and silently
//! break the determinism the test suite relies on.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use when the caller asked for "auto":
/// the host's available parallelism, or 1 if it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing `--jobs` value: `0` means "auto" (one worker
/// per available core), anything else is taken literally.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

/// Runs `f(0..n)` on up to `jobs` scoped worker threads and returns the
/// results in index order.
///
/// Workers claim cell indices from a shared [`AtomicUsize`] via
/// `fetch_add`, so a slow cell never stalls the rest of the grid
/// (work-stealing by claim rather than by deque). Each worker keeps
/// `(index, result)` pairs locally; after all workers join, the pairs
/// are merged by index, so the caller sees exactly the order a serial
/// loop would produce regardless of thread scheduling.
///
/// With `jobs <= 1` or `n <= 1` no threads are spawned at all — the
/// serial path is the parallel path's reference semantics, not a
/// separate implementation.
///
/// A panic inside `f` is propagated to the caller after the remaining
/// workers drain (standard scoped-thread behavior).
pub fn run_indexed<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut pairs: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for w in workers {
            match w.join() {
                Ok(local) => pairs.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Every index in 0..n is claimed by exactly one fetch_add, so after
    // a panic-free join `pairs` is a permutation of 0..n.
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over a slice on up to `jobs` worker threads, preserving
/// order (convenience wrapper over [`run_indexed`]).
pub fn map_slice<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_indexed(jobs, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(1, 100, |i| i * i);
        for jobs in [2, 3, 4, 8, 100, 1000] {
            assert_eq!(run_indexed(jobs, 100, |i| i * i), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_grids() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 7), vec![7]);
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn results_are_in_index_order_under_contention() {
        // Uneven per-cell work so threads finish out of order.
        let out = run_indexed(4, 64, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn map_slice_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = map_slice(3, &items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_jobs_auto_and_literal() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }
}
