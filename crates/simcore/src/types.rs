//! Strongly-typed identifiers and quantities used throughout the simulator.
//!
//! The newtypes here follow the C-NEWTYPE guideline: a byte [`Address`], a
//! cache-line [`BlockAddr`], a [`CoreId`] and a [`Cycle`] count are all
//! machine words at run time, but the compiler keeps them apart.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A byte address in the simulated (per-core, virtual) address space.
///
/// Addresses are 64-bit. The top byte is reserved for the address-space
/// identifier inserted by the CMP layer so that distinct programs running on
/// distinct cores never alias in shared cache structures (the paper runs
/// multiprogrammed workloads with disjoint address spaces).
///
/// # Example
///
/// ```
/// use simcore::types::Address;
/// let a = Address::new(0x1040);
/// assert_eq!(a.block(6).index_bits(0, 12), (0x1040 >> 6) & 0xfff);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-block address for a block of `2^offset_bits` bytes.
    #[inline]
    pub const fn block(self, offset_bits: u32) -> BlockAddr {
        BlockAddr(self.0 >> offset_bits)
    }

    /// Returns the virtual page number for 4-KiB pages.
    #[inline]
    pub const fn page(self) -> u64 {
        self.0 >> 12
    }

    /// Tags this address with an address-space identifier in the top byte.
    ///
    /// The CMP layer uses this to keep multiprogrammed address spaces
    /// disjoint inside shared structures. ASIDs above 255 are rejected by
    /// construction of [`CoreId`], which is the only ASID source.
    #[inline]
    pub const fn with_asid(self, asid: u8) -> Self {
        Address((self.0 & 0x00ff_ffff_ffff_ffff) | ((asid as u64) << 56))
    }

    /// Returns the address offset by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Self {
        Address(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

/// A cache-block (line) address: a byte address shifted right by the block
/// offset bits.
///
/// The same `BlockAddr` type is used for every cache level; the level's
/// geometry decides how it is split into set index and tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw block number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Extracts `bits` set-index bits starting at bit `lo` of the block
    /// number.
    #[inline]
    pub const fn index_bits(self, lo: u32, bits: u32) -> u64 {
        (self.0 >> lo) & ((1u64 << bits) - 1)
    }

    /// Returns the tag for a cache with `index_bits` set-index bits
    /// (everything above the index).
    #[inline]
    pub const fn tag(self, index_bits: u32) -> u64 {
        self.0 >> index_bits
    }

    /// Reconstructs the byte address of the first byte in the block.
    #[inline]
    pub const fn first_byte(self, offset_bits: u32) -> Address {
        Address::new(self.0 << offset_bits)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(raw: u64) -> Self {
        BlockAddr(raw)
    }
}

/// Identifies one of the cores of the simulated chip multiprocessor.
///
/// A `CoreId` is always valid for the machine it was created for: the
/// constructor checks the index against the core count, so downstream code
/// can index per-core arrays without bounds anxieties.
///
/// # Example
///
/// ```
/// use simcore::types::CoreId;
/// assert!(CoreId::new(3, 4).is_some());
/// assert!(CoreId::new(4, 4).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u8);

impl CoreId {
    /// Creates a core identifier, or `None` if `index >= cores`.
    #[inline]
    pub fn new(index: usize, cores: usize) -> Option<Self> {
        if index < cores && cores <= 256 {
            Some(CoreId(index as u8))
        } else {
            None
        }
    }

    /// Creates a core identifier without a range check.
    ///
    /// Only intended for tests and for iteration helpers that already know
    /// the machine's core count.
    #[inline]
    pub const fn from_index(index: u8) -> Self {
        CoreId(index)
    }

    /// The zero-based index of this core.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The address-space identifier used to tag this core's addresses.
    #[inline]
    pub const fn asid(self) -> u8 {
        self.0
    }

    /// Iterates over all cores of a `cores`-way machine.
    pub fn all(cores: usize) -> impl Iterator<Item = CoreId> {
        (0..cores.min(256)).map(|i| CoreId(i as u8))
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A count of processor clock cycles.
///
/// `Cycle` supports the arithmetic needed for timestamping events
/// (`+ u64`, differences) while preventing accidental mixing with other
/// integer quantities such as instruction counts.
///
/// # Example
///
/// ```
/// use simcore::types::Cycle;
/// let t = Cycle::ZERO + 14;
/// assert_eq!((t + 5).since(t), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero — the beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle timestamp from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Cycles elapsed since `earlier`, saturating at zero.
    #[inline]
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

/// The kind of a memory access as seen by the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An instruction fetch.
    Fetch,
    /// A data load.
    Load,
    /// A data store (write-allocate, write-back hierarchy).
    Store,
}

impl AccessKind {
    /// Whether the access writes the block.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessKind::Fetch => "fetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_block_and_tag_round_trip() {
        let a = Address::new(0xdead_beef_cafe);
        let blk = a.block(6);
        assert_eq!(blk.raw(), 0xdead_beef_cafe >> 6);
        assert_eq!(blk.first_byte(6).raw(), (0xdead_beef_cafe >> 6) << 6);
    }

    #[test]
    fn address_asid_tagging_replaces_top_byte() {
        let a = Address::new(0xff00_0000_0000_1234).with_asid(3);
        assert_eq!(a.raw() >> 56, 3);
        assert_eq!(a.raw() & 0xffff, 0x1234);
    }

    #[test]
    fn index_bits_extract_expected_field() {
        let blk = BlockAddr::new(0b1011_0110);
        assert_eq!(blk.index_bits(1, 3), 0b011);
        assert_eq!(blk.tag(4), 0b1011);
    }

    #[test]
    fn core_id_validates_range() {
        assert_eq!(CoreId::new(0, 4).map(|c| c.index()), Some(0));
        assert_eq!(CoreId::new(3, 4).map(|c| c.index()), Some(3));
        assert!(CoreId::new(4, 4).is_none());
        assert_eq!(CoreId::all(4).count(), 4);
    }

    #[test]
    fn cycle_arithmetic_behaves() {
        let t = Cycle::new(100);
        assert_eq!((t + 30).since(t), 30);
        assert_eq!(t.since(t + 30), 0);
        assert_eq!((t + 7) - t, 7);
        assert_eq!(t.max(t + 1).raw(), 101);
    }

    #[test]
    fn access_kind_write_classification() {
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
        assert!(!AccessKind::Fetch.is_write());
    }

    #[test]
    fn page_number_uses_4k_pages() {
        assert_eq!(Address::new(0x3000).page(), 3);
        assert_eq!(Address::new(0x3fff).page(), 3);
        assert_eq!(Address::new(0x4000).page(), 4);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", Address::new(0)).is_empty());
        assert!(!format!("{}", BlockAddr::new(0)).is_empty());
        assert!(!format!("{}", CoreId::from_index(0)).is_empty());
        assert!(!format!("{}", Cycle::ZERO).is_empty());
        assert!(!format!("{}", AccessKind::Load).is_empty());
    }
}
