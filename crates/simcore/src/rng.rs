//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the simulator (workload generators, the
//! cooperative scheme's random neighbor choice, workload mixing) draws from
//! a [`SimRng`], a xoshiro256** generator seeded through SplitMix64. The
//! implementation is self-contained so results are bit-identical across
//! platforms and library versions — a requirement for a reproduction whose
//! experiment tables must be regenerable.

/// A deterministic xoshiro256** pseudo-random number generator.
///
/// # Example
///
/// ```
/// use simcore::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let state = [next_sm(), next_sm(), next_sm(), next_sm()];
        SimRng { state }
    }

    /// Derives an independent child generator; used to give each core and
    /// each application its own stream from one experiment seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x2545_f491_4f6c_dd1d);
        SimRng::seed_from(s)
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniformly random integer in `[0, bound)` (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a nonzero bound");
        // Widening-multiply rejection sampling; bias is < 2^-64 * bound and
        // corrected by the rejection loop.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniformly random integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// A uniform floating-point number in `[0, 1)` with 53 bits of
    /// precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A geometrically distributed integer with success probability `p`:
    /// the number of failures before the first success. Used for reuse
    /// (stack) distance sampling in the workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric() requires p in (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        self.geometric_from_ln((1.0 - p).ln())
    }

    /// [`geometric`](Self::geometric) with the denominator `ln(1 - p)`
    /// precomputed by the caller. Hot generators sample this once per
    /// micro-op; hoisting the constant logarithm out of the loop halves
    /// the transcendental work while producing bit-identical samples
    /// (the division operands are the same values either way).
    #[inline]
    pub fn geometric_from_ln(&mut self, ln_one_minus_p: f64) -> u64 {
        debug_assert!(
            ln_one_minus_p < 0.0,
            "ln(1-p) must be negative for p in (0, 1)"
        );
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / ln_one_minus_p) as u64
    }

    /// Picks an index according to the given relative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted() requires positive weights"
        );
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= *w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Writes the generator state to a snapshot.
    pub fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        for s in self.state {
            w.put_u64(s);
        }
    }

    /// Restores the generator state from a snapshot.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from the reader.
    pub fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        for s in &mut self.state {
            *s = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = SimRng::seed_from(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(11);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[rng.below(8) as usize] += 1;
        }
        for b in buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} far from 10000"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = SimRng::seed_from(9);
        let p = 0.25;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.15, "mean {mean} vs {expected}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = SimRng::seed_from(13);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.05);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::seed_from(21);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
