//! Exhaustive interleaving check of the parallel runner's protocol with
//! realistic simulation cells.
//!
//! The unit tests in `simcore::parallel::model` use arithmetic cells;
//! here each cell does what a real experiment-grid cell does — fork its
//! own deterministic RNG stream from a per-cell seed and reduce a few
//! hundred draws into a stats-like digest — so the bit-identity the
//! explorer asserts is over the same kind of value the campaign harness
//! reassembles. This test backs the CI `model-check` job and must stay
//! well under 60 seconds (it runs in milliseconds).

use simcore::parallel::model::{explore, schedule_count};
use simcore::parallel::run_indexed;
use simcore::rng::SimRng;

/// A miniature experiment cell: per-cell seeded RNG stream reduced into
/// a digest, exactly the shape of real grid cells (no shared state, all
/// randomness derived from the cell index).
fn sim_cell(i: usize) -> (u64, u64) {
    let mut rng = SimRng::seed_from(0xC0FF_EE00 ^ i as u64);
    let mut hits = 0u64;
    let mut acc = 0u64;
    for _ in 0..256 {
        let v = rng.next_u64();
        acc = acc.wrapping_mul(31).wrapping_add(v);
        if v.is_multiple_of(3) {
            hits += 1;
        }
    }
    (hits, acc)
}

#[test]
fn two_workers_four_cells_exhaustive() {
    let ex = explore(2, 4, sim_cell, None).expect("no schedule may break bit-identity");
    assert!(!ex.truncated);
    assert_eq!(ex.schedules, schedule_count(2, 4));
}

#[test]
fn two_workers_six_cells_exhaustive() {
    let ex = explore(2, 6, sim_cell, None).expect("no schedule may break bit-identity");
    assert!(!ex.truncated);
    assert_eq!(ex.schedules, schedule_count(2, 6));
}

#[test]
fn three_workers_3x3_grid_exhaustive() {
    let ex = explore(3, 9, sim_cell, None).expect("no schedule may break bit-identity");
    assert!(!ex.truncated);
    assert_eq!(ex.schedules, schedule_count(3, 9), "3^9 * 3! schedules");
}

#[test]
fn model_reference_matches_the_real_runner() {
    // The serial reference the model checks against is byte-for-byte what
    // the threaded runner returns for every jobs value.
    let serial: Vec<(u64, u64)> = (0..9).map(sim_cell).collect();
    for jobs in [1, 2, 3, 4, 8] {
        assert_eq!(run_indexed(jobs, 9, sim_cell), serial, "jobs={jobs}");
    }
}
