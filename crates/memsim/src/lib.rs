//! Main memory and the shared off-chip bus.
//!
//! Table 1 models memory as chunked transfers: the first 8-byte chunk of a
//! 64-byte line arrives after 260 cycles (258 for a pure private last-level
//! organization, which skips the global lookup), and subsequent chunks
//! every 4 cycles — which at the paper's 4.5 GHz corresponds to the
//! 9 GByte/s theoretical bus limit. All four cores share this bus, so the
//! simulator must model *congestion*: a line fill occupies the bus for
//! 8 chunks × 4 cycles and later requests queue behind it.
//!
//! # Example
//!
//! ```
//! use memsim::MainMemory;
//! use simcore::config::MemoryConfig;
//! use simcore::types::Cycle;
//!
//! let mut mem = MainMemory::new(MemoryConfig::default(), 64);
//! let r1 = mem.request(Cycle::new(0), false);
//! assert_eq!(r1.data_ready, Cycle::new(260));
//! let r2 = mem.request(Cycle::new(0), false); // queues behind r1
//! assert_eq!(r2.data_ready, Cycle::new(292));
//! ```

use simcore::config::MemoryConfig;
use simcore::types::Cycle;

/// Timing of one line fill returned by [`MainMemory::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryResponse {
    /// When the critical (first) chunk is available to the requester —
    /// loads can complete at this point (critical-word-first).
    pub data_ready: Cycle,
    /// When the full line has been transferred and can be installed.
    pub line_filled: Cycle,
    /// Cycles the request waited for the bus before starting.
    pub queue_delay: u64,
}

/// Aggregate statistics for the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Number of line fills served.
    pub requests: u64,
    /// Total cycles requests spent queued for the bus.
    pub total_queue_delay: u64,
    /// Total cycles the bus spent transferring data.
    pub busy_cycles: u64,
}

impl MemoryStats {
    /// Mean queueing delay per request.
    pub fn mean_queue_delay(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_queue_delay as f64 / self.requests as f64
        }
    }

    /// Bus utilization over an interval of `elapsed` cycles.
    pub fn utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / elapsed as f64
        }
    }
}

/// The shared main-memory channel.
///
/// A single in-order bus: requests are granted in arrival order, each
/// occupying the bus for one full line transfer. This matches the paper's
/// "congestion to main memory" extension of SimpleScalar.
#[derive(Debug, Clone)]
pub struct MainMemory {
    cfg: MemoryConfig,
    block_bytes: u32,
    bus_free_at: Cycle,
    stats: MemoryStats,
}

impl MainMemory {
    /// Creates a memory channel for `block_bytes`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a positive multiple of the chunk
    /// size.
    pub fn new(cfg: MemoryConfig, block_bytes: u32) -> Self {
        assert!(
            block_bytes > 0 && block_bytes.is_multiple_of(cfg.chunk_bytes),
            "line size must be a positive multiple of the chunk size"
        );
        MainMemory {
            cfg,
            block_bytes,
            bus_free_at: Cycle::ZERO,
            stats: MemoryStats::default(),
        }
    }

    /// The timing configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Issues a line-fill at `now`. `private_org` selects the 258-cycle
    /// first-chunk latency of the pure private organization; every other
    /// organization pays 260 cycles.
    pub fn request(&mut self, now: Cycle, private_org: bool) -> MemoryResponse {
        let start = now.max(self.bus_free_at);
        let queue_delay = start.since(now);
        let first = if private_org {
            self.cfg.first_chunk_private
        } else {
            self.cfg.first_chunk_shared
        };
        let chunks = self.cfg.chunks_per_line(self.block_bytes);
        let occupancy = chunks * self.cfg.inter_chunk;
        let data_ready = start + first;
        let line_filled = data_ready + (chunks - 1) * self.cfg.inter_chunk;
        self.bus_free_at = start + occupancy;

        self.stats.requests += 1;
        self.stats.total_queue_delay += queue_delay;
        self.stats.busy_cycles += occupancy;

        MemoryResponse {
            data_ready,
            line_filled,
            queue_delay,
        }
    }

    /// A dirty write-back occupies the bus for one line transfer but
    /// nothing waits on it; returns the queueing delay it suffered.
    pub fn writeback(&mut self, now: Cycle) -> u64 {
        let start = now.max(self.bus_free_at);
        let chunks = self.cfg.chunks_per_line(self.block_bytes);
        let occupancy = chunks * self.cfg.inter_chunk;
        self.bus_free_at = start + occupancy;
        self.stats.busy_cycles += occupancy;
        start.since(now)
    }

    /// Declares the bus idle as of `now`. Functional warm-up (state-only
    /// execution) issues requests far faster than real time, which would
    /// leave `bus_free_at` millions of cycles in the future; call this at
    /// the warm/timed boundary so the timed phase starts uncongested.
    pub fn quiesce(&mut self, now: Cycle) {
        self.bus_free_at = now;
    }

    /// Writes the bus state and statistics to a snapshot. The timing
    /// configuration is not encoded: bus occupancy depends only on the
    /// chunking parameters, so a snapshot may be restored under different
    /// first-chunk latencies (the latency-axis sharing the campaign
    /// engine relies on).
    pub fn save_state(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_cycle(self.bus_free_at);
        w.put_u64(self.stats.requests);
        w.put_u64(self.stats.total_queue_delay);
        w.put_u64(self.stats.busy_cycles);
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Decode errors from the reader.
    pub fn load_state(
        &mut self,
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<(), simcore::snapshot::SnapshotError> {
        self.bus_free_at = r.get_cycle()?;
        self.stats.requests = r.get_u64()?;
        self.stats.total_queue_delay = r.get_u64()?;
        self.stats.busy_cycles = r.get_u64()?;
        Ok(())
    }

    /// Statistics since the last reset.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Clears statistics (bus state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MainMemory {
        MainMemory::new(MemoryConfig::default(), 64)
    }

    #[test]
    fn uncontended_latency_matches_table1() {
        let mut m = mem();
        let r = m.request(Cycle::new(100), false);
        assert_eq!(r.data_ready, Cycle::new(360)); // 100 + 260
        assert_eq!(r.line_filled, Cycle::new(360 + 7 * 4));
        assert_eq!(r.queue_delay, 0);
        let mut m2 = mem();
        let r2 = m2.request(Cycle::new(100), true);
        assert_eq!(r2.data_ready, Cycle::new(358)); // private org: 258
    }

    #[test]
    fn back_to_back_requests_queue_at_32_cycles() {
        let mut m = mem();
        let a = m.request(Cycle::new(0), false);
        let b = m.request(Cycle::new(0), false);
        let c = m.request(Cycle::new(0), false);
        assert_eq!(a.data_ready.raw(), 260);
        assert_eq!(b.data_ready.raw(), 292);
        assert_eq!(b.queue_delay, 32);
        assert_eq!(c.data_ready.raw(), 324);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut m = mem();
        m.request(Cycle::new(0), false);
        let b = m.request(Cycle::new(100), false);
        assert_eq!(b.queue_delay, 0);
        assert_eq!(b.data_ready.raw(), 360);
    }

    #[test]
    fn bandwidth_limit_is_two_bytes_per_cycle() {
        // 1000 back-to-back line fills of 64 B should occupy 32k cycles.
        let mut m = mem();
        for _ in 0..1000 {
            m.request(Cycle::ZERO, false);
        }
        assert_eq!(m.stats().busy_cycles, 32_000);
        assert!((m.stats().utilization(32_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn writebacks_occupy_the_bus() {
        let mut m = mem();
        let delay = m.writeback(Cycle::new(0));
        assert_eq!(delay, 0);
        let r = m.request(Cycle::new(0), false);
        assert_eq!(r.queue_delay, 32, "fill queues behind the writeback");
    }

    #[test]
    fn stats_track_queueing() {
        let mut m = mem();
        m.request(Cycle::ZERO, false);
        m.request(Cycle::ZERO, false);
        let s = m.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.total_queue_delay, 32);
        assert!((s.mean_queue_delay() - 16.0).abs() < 1e-12);
        let mut m2 = m.clone();
        m2.reset_stats();
        assert_eq!(m2.stats().requests, 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the chunk size")]
    fn bad_line_size_panics() {
        let _ = MainMemory::new(MemoryConfig::default(), 60);
    }

    #[test]
    fn technology_scaled_latencies_apply() {
        use simcore::config::MachineConfig;
        let scaled = MachineConfig::baseline().technology_scaled();
        let mut m = MainMemory::new(scaled.memory, 64);
        let r = m.request(Cycle::ZERO, false);
        assert_eq!(r.data_ready.raw(), 338);
        let mut mp = MainMemory::new(scaled.memory, 64);
        let rp = mp.request(Cycle::ZERO, true);
        assert_eq!(rp.data_ready.raw(), 330);
    }
}
