//! Golden-file tests: one fixture per rule under `tests/fixtures/`, with
//! the expected machine-readable diagnostics stored next to it.
//!
//! Fixture format: a `.rs` file made of one or more sections, each opened
//! by a `//=== file: <repo-relative-path>` marker line. Every section is
//! indexed as its own pretend workspace file (line numbers restart at 1
//! per section), and all sections of a fixture are checked together so
//! cross-file rules (D4) see the whole picture. The expected `.json`
//! holds exactly the `violations` array the v2 JSON schema emits.
//!
//! Regenerating after an intentional rule change:
//!
//! ```text
//! NUCA_LINT_BLESS=1 cargo test -p nuca-lint --test golden
//! ```
//!
//! then diff the `.json` files and commit only what you can justify.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fs;
use std::path::{Path, PathBuf};

use nuca_lint::rules::{check_files, Diagnostic, Rule, Scopes};
use nuca_lint::syntax::FileIndex;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Splits a fixture into (pretend-path, section-source) pairs.
fn split_sections(raw: &str) -> Vec<(String, String)> {
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in raw.lines() {
        if let Some(rel) = line.strip_prefix("//=== file: ") {
            sections.push((rel.trim().to_string(), String::new()));
        } else if let Some((_, src)) = sections.last_mut() {
            src.push_str(line);
            src.push('\n');
        } else {
            panic!("fixture must start with a `//=== file:` marker, got {line:?}");
        }
    }
    assert!(!sections.is_empty(), "fixture has no sections");
    sections
}

fn check_fixture(name: &str) -> Vec<Diagnostic> {
    let raw = fs::read_to_string(fixtures_dir().join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("fixture {name}.rs: {e}"));
    let indexes: Vec<FileIndex> = split_sections(&raw)
        .into_iter()
        .map(|(rel, src)| FileIndex::build(&rel, &src))
        .collect();
    check_files(&indexes, &Scopes::default())
}

/// The `violations` array exactly as `render_json` would emit it, one
/// object per line for reviewable diffs.
fn to_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                '\t' => "\\t".chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"snippet\":\"{}\",\"message\":\"{}\"}}{}\n",
            d.rule,
            esc(&d.file),
            d.line,
            d.col,
            esc(&d.snippet),
            esc(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Checks one fixture against its golden JSON; `fired` lists the rules
/// that must appear at least once (the "demonstrably fires" criterion).
fn golden(name: &str, fired: &[Rule]) {
    let diags = check_fixture(name);
    for rule in fired {
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "fixture {name} must produce at least one {rule} finding, got: {diags:#?}"
        );
    }
    let got = to_json(&diags);
    let golden_path = fixtures_dir().join(format!("{name}.json"));
    if std::env::var_os("NUCA_LINT_BLESS").is_some() {
        fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!("golden {name}.json missing ({e}); run with NUCA_LINT_BLESS=1 to create")
    });
    assert_eq!(
        got, want,
        "fixture {name} diagnostics drifted from golden file"
    );
}

#[test]
fn golden_l1() {
    golden("l1", &[Rule::L1]);
}

#[test]
fn golden_l7_batched() {
    // The batched-L3 and wide-probe hot files (`l3iface.rs`,
    // `cache.rs`) joined the L7 hot set: any allocation in them fires.
    golden("l7_batched", &[Rule::L7]);
}

#[test]
fn golden_l2() {
    golden("l2", &[Rule::L2]);
}

#[test]
fn golden_l3() {
    golden("l3", &[Rule::L3]);
}

#[test]
fn golden_l4() {
    golden("l4", &[Rule::L4]);
}

#[test]
fn golden_l5() {
    golden("l5", &[Rule::L5]);
}

#[test]
fn golden_l6() {
    golden("l6", &[Rule::L6]);
}

#[test]
fn golden_l7() {
    golden("l7", &[Rule::L7]);
}

#[test]
fn golden_d1() {
    golden("d1", &[Rule::D1]);
}

#[test]
fn golden_d2() {
    golden("d2", &[Rule::D2]);
}

#[test]
fn golden_d3() {
    golden("d3", &[Rule::D3]);
}

#[test]
fn golden_d4() {
    golden("d4", &[Rule::D4]);
}

/// Regression for the v1 line-number drift: rule-shaped text inside a
/// multi-line raw string or block comment must neither fire nor shift
/// the location of the real finding after it.
#[test]
fn golden_drift_regression() {
    golden("drift", &[Rule::L1]);
    let diags = check_fixture("drift");
    assert_eq!(diags.len(), 1, "only the real finding fires: {diags:#?}");
    assert_eq!(diags[0].line, 10, "exact line after multi-line tokens");
    assert_eq!(
        diags[0].snippet, "self.table.last().copied().unwrap()",
        "snippet anchors to the real source line"
    );
}

/// The workspace itself must be clean under every rule — the self-check
/// that keeps the lint wall honest about its own codebase.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = nuca_lint::run_check(root, None).expect("run_check");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint findings: {:#?}",
        report.diagnostics
    );
    assert!(
        report.stale_markers.is_empty(),
        "stale inline markers: {:#?}",
        report.stale_markers
    );
    assert!(
        report.stale_entries.is_empty(),
        "stale lint.toml entries: {:#?}",
        report.stale_entries
    );
}
