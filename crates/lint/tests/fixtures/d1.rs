//=== file: crates/cpusim/src/fetch.rs
fn stamp(&mut self) {
    self.t0 = std::time::Instant::now();
}
fn wall(&self) -> std::time::SystemTime {
    std::time::SystemTime::now()
}
fn from_host(&mut self) {
    if let Ok(v) = std::env::var("NUCA_CORES") {
        self.cores = v.len();
    }
}
fn jitter(&mut self) -> u64 {
    rand::random::<u64>()
}
fn width(&self) -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
//=== file: crates/tracegen/src/mix.rs
use std::collections::HashMap;
fn blend(&self) -> u64 {
    let streams: HashMap<u32, u64> = self.streams();
    streams.values().sum()
}
