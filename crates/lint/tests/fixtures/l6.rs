//=== file: crates/core/src/experiment.rs
fn report(&self) {
    println!("ipc = {}", self.ipc);
}
fn warn(&self) {
    eprintln!("quota drift detected");
}
// A format! is not a print:
fn label(&self) -> String {
    format!("core{}", self.id)
}
//=== file: src/bin/nuca-sim.rs
fn main() {
    println!("binaries may print");
}
