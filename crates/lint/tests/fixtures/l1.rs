//=== file: crates/core/src/l3/policy.rs
fn lookup(&self, way: usize) -> u64 {
    self.table.get(way).copied().unwrap()
}
fn decode(&self, raw: u64) -> Kind {
    let k = self.kinds.get(&raw).expect("kind registered");
    k
}
fn impossible(&self) {
    panic!("partition state corrupted");
}
fn also_impossible(&self) {
    unreachable!()
}
// Decoys the v1 line scanner tripped over:
fn doc_example() -> &'static str {
    "call .unwrap() at your peril; panic!(\"not code\")"
}
fn ok_variants(&self) -> u64 {
    self.table.first().copied().unwrap_or(0)
}
#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        build().unwrap();
    }
}
