//=== file: crates/simcore/src/stats.rs
fn truncating(total: u64) -> u32 {
    total as u32
}
fn float_path(ipc: f64) -> u64 {
    (ipc * 1000.0).round() as u64
}
fn widening_is_fine(hits: u32) -> u64 {
    hits as u64
}
fn words_containing_as(assign: u64) -> u64 {
    assign
}
