//=== file: crates/core/src/engine.rs
/// Documented: returns the current epoch quota for `core`.
pub fn quota(&self, core: usize) -> usize {
    self.quotas[core]
}
pub fn undocumented_api(&self) -> u64 {
    self.cycle
}
fn private_needs_no_docs(&self) {}
#[cfg(test)]
mod tests {
    pub fn test_helpers_are_exempt() {}
}
