//=== file: crates/cachesim/src/directory.rs
use std::collections::HashMap;
use std::collections::HashSet;

struct Directory {
    sharers: HashMap<u64, u32>,
}
// Mentioning "HashMap" in a comment or string is not a finding:
const NOTE: &str = "HashMap is banned here";
use std::collections::BTreeMap; // the sanctioned ordered map
