//=== file: crates/cpusim/src/wakeup.rs
fn raw_latency(&self, wake_cycle: u64, now_cycle: u64) -> u64 {
    wake_cycle - now_cycle
}
fn guarded_latency(&self, wake_cycle: u64, now_cycle: u64) -> u64 {
    if wake_cycle >= now_cycle {
        wake_cycle - now_cycle
    } else {
        0
    }
}
fn saturating_latency(&self, wake_cycle: u64, now_cycle: u64) -> u64 {
    wake_cycle.saturating_sub(now_cycle)
}
fn unrelated_math(&self, a: u64, b: u64) -> u64 {
    a - b
}
fn raw_narrow(&self, cycle: u64) -> u32 {
    cycle as u32
}
fn bounded_narrow(&self, cycle: u64) -> u32 {
    let cycle_low = cycle % 16;
    cycle_low as u32
}
// A parenthesized bounding expression is conservatively accepted too:
fn inline_bounded(&self, quota: u64) -> u8 {
    (quota % 256) as u8
}
