//=== file: crates/cpusim/src/l3iface.rs
// The batched L3 request path joined the L7 hot set: queueing into the
// fixed-capacity L3Batch array must stay allocation-free.
impl L3Batch {
    fn push(&mut self, op: L3Op) {
        self.ops[self.len] = op;
        self.len += 1;
    }
    fn drain_copy(&self) -> Vec<L3Op> {
        self.ops.to_vec()
    }
}
//=== file: crates/cachesim/src/cache.rs
fn probe_scratch(&mut self) -> Vec<u32> {
    let mut mask = Vec::new();
    mask.push(1);
    mask
}
fn table(sets: usize) -> Vec<u64> {
    vec![0; sets]
}
// Reading the preallocated batch array is fine:
fn peek(&self, i: usize) -> u32 {
    self.ops[i]
}
