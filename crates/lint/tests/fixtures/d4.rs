//=== file: crates/cachesim/src/tables.rs
pub fn grow_shadow(sets: usize) -> Vec<u64> {
    vec![0; sets]
}
pub fn pure_mask(ways: usize) -> u64 {
    (1u64 << ways) - 1
}
//=== file: crates/cpusim/src/core.rs
fn step(&mut self) {
    let shadow = grow_shadow(self.sets);
    let mask = pure_mask(self.ways);
    self.apply(shadow, mask);
}
