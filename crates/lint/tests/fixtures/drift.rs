//=== file: crates/core/src/l3/doc_tables.rs
const USAGE_DOC: &str = r#"
worked example (not code):
    let hit = table.lookup(addr).unwrap();
    panic!("this line once produced a misreported finding")
"#;
/* block comment spanning
   several lines, mentioning HashMap and
   thread::spawn without firing */
fn real_finding_below(&self) -> u64 {
    self.table.last().copied().unwrap()
}
