//=== file: crates/cachesim/src/probe.rs
struct Probe {
    recorder: Recorder,
}
fn log_into(rec: &mut Recorder) {}
fn make() -> Recorder {
    Recorder::with_capacity(64)
}
fn optional(slot: Option<Recorder>) {}
// Constructing at the collection boundary is legal; only *type*
// positions hardwire the sink:
fn boundary() {
    let r = Recorder::with_capacity(Recorder::DEFAULT_CAPACITY);
}
fn generic_is_the_fix<S: Sink>(sink: &mut S) {}
