//=== file: crates/bench/src/campaign.rs
fn fan_out(&self) {
    std::thread::spawn(|| run_cell());
}
fn scoped(&self) {
    std::thread::scope(|s| {
        s.spawn(|| run_cell());
    });
}
// thread::sleep is not a spawn and does not fire:
fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
