//=== file: crates/cachesim/src/lru.rs
fn touch(&mut self, way: usize) {
    let mut order = Vec::new();
    order.push(way);
}
fn snapshot(&self) -> Vec<u64> {
    self.tags.to_vec()
}
fn boxed(&self) -> Box<u64> {
    Box::new(self.tags[0])
}
fn dup(&self) -> Recency {
    self.recency.clone()
}
fn macro_alloc(&self) -> Vec<u8> {
    vec![0; self.ways]
}
// Reading a preallocated buffer is fine:
fn read(&self, i: usize) -> u64 {
    self.tags[i]
}
