//! Lightweight item/block structure over the token stream.
//!
//! [`FileIndex`] is what the rules actually consume: the full token stream
//! plus the derived structure a semantic pass needs —
//!
//! - `code`: indices of non-comment tokens (rules match against these, so
//!   string/comment contents can never trigger a finding);
//! - `test_mask`: per-token flags for `#[cfg(test)]` / `#[test]` regions,
//!   computed by real attribute parsing (so `#[cfg(not(test))]` stays
//!   production code and a brace inside a string cannot desync the depth
//!   tracker the way it could in the v1 line scanner);
//! - `fns`: every `fn` item with its name, visibility, doc-comment status
//!   and body token range — the unit of analysis for the doc rule (L4) and
//!   the dataflow passes (D2, D4);
//! - `allows`: inline `lint:allow(RULE)` markers, parsed **only from
//!   comment tokens**, so a marker quoted inside a string literal no longer
//!   silently suppresses a real finding (a v1 bug).
//!
//! The parser is deliberately shallow: it tracks brace structure and item
//! heads, not expressions. That is enough for every rule in [`crate::rules`]
//! and keeps the crate std-only and fast.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::Rule;

/// One `fn` item (free function, method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based column of the `fn` keyword.
    pub col: usize,
    /// Whether the signature carries `pub` (any visibility form).
    pub is_pub: bool,
    /// Whether a doc comment (`///`, `/** */` or `#[doc]`) is attached.
    pub has_doc: bool,
    /// Whether the item sits inside a test region.
    pub is_test: bool,
    /// Positions in [`FileIndex::code`] of the body's `{` and `}`; `None`
    /// for bodyless trait method declarations.
    pub body: Option<(usize, usize)>,
}

/// One inline `lint:allow(RULE)` marker found in a comment token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllowMarker {
    /// Rule the marker suppresses.
    pub rule: Rule,
    /// 1-based line the marker's comment starts on — the marker applies to
    /// findings on this line.
    pub line: usize,
}

/// Fully indexed source file, ready for rule passes.
#[derive(Debug, Clone)]
pub struct FileIndex {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    /// Original source text.
    pub src: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// `test_mask[i]` is true when `tokens[code[i]]` is test code.
    pub test_mask: Vec<bool>,
    /// All `fn` items in the file.
    pub fns: Vec<FnItem>,
    /// Inline allow markers (comment tokens only).
    pub allows: Vec<AllowMarker>,
}

impl FileIndex {
    /// Lexes and indexes one file.
    pub fn build(rel: &str, src: &str) -> FileIndex {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let test_mask = test_mask(&tokens, &code, src);
        let fns = find_fns(&tokens, &code, &test_mask, src);
        let allows = find_allows(&tokens, src);
        FileIndex {
            rel: rel.to_string(),
            src: src.to_string(),
            tokens,
            code,
            test_mask,
            fns,
            allows,
        }
    }

    /// The token behind code position `i` (None past the end).
    pub fn ctok(&self, i: usize) -> Option<&Token> {
        self.code.get(i).and_then(|&t| self.tokens.get(t))
    }

    /// Text of the code token at position `i` ("" past the end).
    pub fn ctext(&self, i: usize) -> &str {
        self.ctok(i).map_or("", |t| t.text(&self.src))
    }

    /// Kind of the code token at position `i` (Punct past the end).
    pub fn ckind(&self, i: usize) -> TokenKind {
        self.ctok(i).map_or(TokenKind::Punct, |t| t.kind)
    }

    /// Whether code position `i` is test code.
    pub fn is_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// The trimmed source line containing 1-based line `line`, truncated
    /// for diagnostics.
    pub fn snippet(&self, line: usize) -> String {
        let text = self.src.lines().nth(line.saturating_sub(1)).unwrap_or("");
        let trimmed = text.trim();
        let mut s: String = trimmed.chars().take(120).collect();
        if trimmed.chars().count() > 120 {
            s.push('…');
        }
        s
    }

    /// True when a `lint:allow(rule)` marker covers `line`.
    pub fn allowed_inline(&self, rule: Rule, line: usize) -> bool {
        self.allows.iter().any(|a| a.rule == rule && a.line == line)
    }

    /// Code position of the matching `}` for the `{` at code position
    /// `open` (or the last token if unbalanced).
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < self.code.len() {
            match self.ctext(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.code.len().saturating_sub(1)
    }
}

/// Parses `#[...]` at code position `i` (pointing at `#`). Returns the code
/// position one past the closing `]`, or `None` if `i` is not an attribute.
fn attr_end(tokens: &[Token], code: &[usize], src: &str, i: usize) -> Option<usize> {
    let text = |p: usize| -> &str {
        code.get(p)
            .and_then(|&t| tokens.get(t))
            .map_or("", |t| t.text(src))
    };
    if text(i) != "#" {
        return None;
    }
    // Inner attributes `#![...]` also parse; callers decide relevance.
    let mut j = i + 1;
    if text(j) == "!" {
        j += 1;
    }
    if text(j) != "[" {
        return None;
    }
    let mut depth = 0i64;
    while j < code.len() {
        match text(j) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some(code.len())
}

/// Whether the attribute spanning code positions `[i, end)` marks a test
/// item: `#[test]`, `#[cfg(test)]`, or a `cfg` predicate that can only be
/// true under test (e.g. `#[cfg(all(test, ...))]`). `cfg(not(test))` and
/// friends are production code.
fn attr_is_test(tokens: &[Token], code: &[usize], src: &str, i: usize, end: usize) -> bool {
    let text = |p: usize| -> &str {
        code.get(p)
            .and_then(|&t| tokens.get(t))
            .map_or("", |t| t.text(src))
    };
    // Skip `#` ( `!` ) `[`.
    let mut j = i + 1;
    if text(j) == "!" {
        j += 1;
    }
    j += 1; // [
    match text(j) {
        "test" => text(j + 1) == "]",
        "cfg" => {
            // Scan the predicate for an ident `test` not under `not(...)`.
            let mut not_depth: Vec<i64> = Vec::new();
            let mut depth = 0i64;
            let mut k = j + 1;
            while k < end {
                match text(k) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        while not_depth.last().is_some_and(|&d| d > depth) {
                            not_depth.pop();
                        }
                    }
                    "not" if text(k + 1) == "(" => not_depth.push(depth + 1),
                    "test" if not_depth.is_empty() => return true,
                    _ => {}
                }
                k += 1;
            }
            false
        }
        _ => false,
    }
}

/// Computes the per-code-token test mask: tokens belonging to an item whose
/// attributes include a test marker (the attribute tokens themselves, the
/// item head, and its brace-delimited body).
fn test_mask(tokens: &[Token], code: &[usize], src: &str) -> Vec<bool> {
    let text = |p: usize| -> &str {
        code.get(p)
            .and_then(|&t| tokens.get(t))
            .map_or("", |t| t.text(src))
    };
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if let Some(after) = attr_end(tokens, code, src, i) {
            if attr_is_test(tokens, code, src, i, after) {
                // Consume any further attributes, then the item head up to
                // its opening `{` (or a `;`, which cancels the region:
                // `#[cfg(test)] mod t;`).
                let attr_start = i;
                let mut j = after;
                while let Some(next) = attr_end(tokens, code, src, j) {
                    j = next;
                }
                let mut brace: Option<usize> = None;
                while j < code.len() {
                    match text(j) {
                        "{" => {
                            brace = Some(j);
                            break;
                        }
                        ";" => break,
                        _ => j += 1,
                    }
                }
                let region_end = match brace {
                    Some(open) => {
                        let mut depth = 0i64;
                        let mut k = open;
                        loop {
                            match text(k) {
                                "{" => depth += 1,
                                "}" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                            if k >= code.len() {
                                k = code.len() - 1;
                                break;
                            }
                        }
                        k
                    }
                    None => j.min(code.len().saturating_sub(1)),
                };
                for m in mask
                    .iter_mut()
                    .take(region_end.saturating_add(1).min(code.len()))
                    .skip(attr_start)
                {
                    *m = true;
                }
                i = region_end + 1;
                continue;
            }
            i = after;
            continue;
        }
        i += 1;
    }
    mask
}

/// Modifier idents that may sit between `pub` and `fn`.
const FN_MODIFIERS: [&str; 4] = ["const", "unsafe", "async", "extern"];

/// Finds every `fn` item with visibility, doc status and body range.
fn find_fns(tokens: &[Token], code: &[usize], mask: &[bool], src: &str) -> Vec<FnItem> {
    let text = |p: usize| -> &str {
        code.get(p)
            .and_then(|&t| tokens.get(t))
            .map_or("", |t| t.text(src))
    };
    let tok = |p: usize| -> Option<&Token> { code.get(p).and_then(|&t| tokens.get(t)) };
    let mut out = Vec::new();
    for i in 0..code.len() {
        if text(i) != "fn" || tok(i).map(|t| t.kind) != Some(TokenKind::Ident) {
            continue;
        }
        let Some(name_tok) = tok(i + 1) else { continue };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn` inside e.g. `Fn(...)` bounds won't have a name
        }
        let name = name_tok.text(src).to_string();
        // Walk back over modifiers and visibility.
        let mut j = i;
        let mut is_pub = false;
        while j > 0 {
            let prev = text(j - 1);
            if FN_MODIFIERS.contains(&prev)
                || prev == ")"
                || prev == "("
                || prev == "crate"
                || prev == "super"
                || prev == "self"
                || prev == "in"
                || tok(j - 1).map(|t| t.kind) == Some(TokenKind::Str)
            {
                j -= 1;
            } else if prev == "pub" {
                is_pub = true;
                j -= 1;
            } else {
                break;
            }
        }
        let item_start = j;
        // Doc detection: walk the FULL token stream backwards from the
        // item's first token, skipping attributes, looking for an adjacent
        // doc comment or #[doc] attribute.
        let has_doc = doc_above(tokens, src, code.get(item_start).copied().unwrap_or(0));
        // Body: first `{` or `;` after the name.
        let mut k = i + 2;
        let mut body = None;
        while k < code.len() {
            match text(k) {
                "{" => {
                    let mut depth = 0i64;
                    let mut c = k;
                    while c < code.len() {
                        match text(c) {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        c += 1;
                    }
                    body = Some((k, c.min(code.len().saturating_sub(1))));
                    break;
                }
                ";" => break,
                _ => k += 1,
            }
        }
        let (line, col) = tok(i).map_or((0, 0), |t| (t.line, t.col));
        out.push(FnItem {
            name,
            line,
            col,
            is_pub,
            has_doc,
            is_test: mask.get(i).copied().unwrap_or(false),
            body,
        });
    }
    out
}

/// Walks backwards in the full token stream from token index `from`,
/// skipping attribute groups, to find an attached doc comment.
fn doc_above(tokens: &[Token], src: &str, from: usize) -> bool {
    let mut i = from;
    while i > 0 {
        i -= 1;
        let t = match tokens.get(i) {
            Some(t) => t,
            None => return false,
        };
        match t.kind {
            TokenKind::LineComment => {
                let txt = t.text(src);
                if txt.starts_with("///") {
                    return true;
                }
                // A plain `//` comment directly above does not document.
                return false;
            }
            TokenKind::BlockComment => return t.text(src).starts_with("/**"),
            TokenKind::Punct if t.text(src) == "]" => {
                // Skip the attribute group backwards to its `#`; a
                // `#[doc...]` attribute counts as documentation.
                let mut depth = 0i64;
                let mut saw_doc = false;
                while i > 0 {
                    let u = match tokens.get(i) {
                        Some(u) => u,
                        None => break,
                    };
                    match u.text(src) {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                if tokens.get(i + 1).is_some_and(|d| d.text(src) == "doc") {
                                    saw_doc = true;
                                }
                                // Step past the `#` (and optional `!`).
                                if i > 0 && tokens.get(i - 1).is_some_and(|d| d.text(src) == "#") {
                                    i -= 1;
                                }
                                break;
                            }
                        }
                        _ => {}
                    }
                    i -= 1;
                }
                if saw_doc {
                    return true;
                }
            }
            _ => return false,
        }
    }
    false
}

/// Extracts `lint:allow(RULE)` markers from comment tokens.
fn find_allows(tokens: &[Token], src: &str) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(src);
        let mut rest = text;
        while let Some(pos) = rest.find("lint:allow(") {
            let after = rest.get(pos + "lint:allow(".len()..).unwrap_or("");
            let name: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if let Some(rule) = Rule::parse(&name) {
                // Multi-line block comments anchor to their start line;
                // markers are written on the offending line by convention.
                out.push(AllowMarker { rule, line: t.line });
            }
            rest = after;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(src: &str) -> FileIndex {
        FileIndex::build("crates/x/src/a.rs", src)
    }

    #[test]
    fn cfg_test_module_is_masked_and_not_test_is_not() {
        let f = idx("fn prod() { a(); }\n#[cfg(test)]\nmod t {\n fn x() { b(); }\n}\nfn prod2() {}\n#[cfg(not(test))]\nfn gated() { c(); }\n");
        let text_of = |s: &str| {
            (0..f.code.len())
                .find(|&i| f.ctext(i) == s)
                .map(|i| f.is_test(i))
        };
        assert_eq!(text_of("b"), Some(true));
        assert_eq!(text_of("a"), Some(false));
        assert_eq!(text_of("c"), Some(false), "cfg(not(test)) is production");
        assert_eq!(text_of("prod2"), Some(false));
    }

    #[test]
    fn test_fn_and_semicolon_cancel() {
        let f = idx("#[test]\nfn t() { body(); }\n#[cfg(test)]\nmod tests;\nfn prod() { x(); }\n");
        let pos_body = (0..f.code.len()).find(|&i| f.ctext(i) == "body");
        assert_eq!(pos_body.map(|i| f.is_test(i)), Some(true));
        let pos_x = (0..f.code.len()).find(|&i| f.ctext(i) == "x");
        assert_eq!(pos_x.map(|i| f.is_test(i)), Some(false));
    }

    #[test]
    fn fns_carry_visibility_doc_and_body() {
        let f = idx("/// Documented.\n#[must_use]\npub fn good(&self) -> u64 { 1 }\npub(crate) fn vis() {}\nfn private() {}\npub fn bare() {}\n");
        let by_name = |n: &str| f.fns.iter().find(|x| x.name == n);
        let good = by_name("good").expect("good");
        assert!(good.is_pub && good.has_doc && good.body.is_some());
        let vis = by_name("vis").expect("vis");
        assert!(vis.is_pub && !vis.has_doc);
        let private = by_name("private").expect("private");
        assert!(!private.is_pub);
        let bare = by_name("bare").expect("bare");
        assert!(bare.is_pub && !bare.has_doc);
        assert_eq!(bare.line, 6);
    }

    #[test]
    fn plain_comment_above_is_not_doc() {
        let f = idx("// note, not docs\npub fn f() {}\n/* block */\npub fn g() {}\n");
        assert!(f.fns.iter().all(|x| !x.has_doc));
    }

    #[test]
    fn allow_markers_only_in_comments() {
        let f = idx("fn a() {} // lint:allow(L1): reason\nlet s = \"lint:allow(L2)\";\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, Rule::L1);
        assert_eq!(f.allows[0].line, 1);
        assert!(f.allowed_inline(Rule::L1, 1));
        assert!(!f.allowed_inline(Rule::L2, 2), "marker in string ignored");
    }

    #[test]
    fn trait_fn_without_body() {
        let f = idx("trait T { fn decl(&self); fn with_default(&self) { x(); } }\n");
        let decl = f.fns.iter().find(|x| x.name == "decl").expect("decl");
        assert!(decl.body.is_none());
        let d = f
            .fns
            .iter()
            .find(|x| x.name == "with_default")
            .expect("with_default");
        assert!(d.body.is_some());
    }

    #[test]
    fn snippet_is_trimmed() {
        let f = idx("   let x = 1;   \n");
        assert_eq!(f.snippet(1), "let x = 1;");
        assert_eq!(f.snippet(99), "");
    }
}
