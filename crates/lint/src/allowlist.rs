//! The `lint.toml` allowlist: justified exemptions from rules L1–L7 and
//! D1–D4.
//!
//! Grammar (line-oriented; `#` starts a comment):
//!
//! ```text
//! # rule  file[:line]                          -- justification (required)
//! allow L1 crates/core/src/cmp.rs:107          -- length checked two lines above
//! allow L2 crates/cpusim/src/scratch.rs        -- whole-file exemption
//! stats-path crates/bench/src/report.rs        # extend the L3 scope
//! hot-path crates/cachesim/src/cache.rs        # extend the L7 scope
//! ```
//!
//! Every `allow` entry must carry a `--`-separated justification; a bare
//! exemption is a parse error, so suppressions are self-documenting.

use crate::rules::Rule;

/// One parsed `allow` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule this entry suppresses.
    pub rule: Rule,
    /// Repo-relative file path.
    pub file: String,
    /// Specific line, or `None` for a whole-file exemption.
    pub line: Option<usize>,
    /// Why this exemption is acceptable.
    pub justification: String,
}

/// Parsed allowlist file.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// All `allow` entries.
    pub entries: Vec<AllowEntry>,
    /// Extra files added to the L3 statistics scope via `stats-path`.
    pub extra_stats_paths: Vec<String>,
    /// Extra files added to the L7 hot-path scope via `hot-path`.
    pub extra_hot_paths: Vec<String>,
}

impl Allowlist {
    /// Parses allowlist text; errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut list = Allowlist::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("allow") => {
                    let rule_word = words
                        .next()
                        .ok_or_else(|| format!("line {line_no}: missing rule after `allow`"))?;
                    let rule = Rule::parse(rule_word).ok_or_else(|| {
                        format!("line {line_no}: unknown rule `{rule_word}` (expected L1..L7 or D1..D4)")
                    })?;
                    let target = words
                        .next()
                        .ok_or_else(|| format!("line {line_no}: missing file path"))?;
                    let (file, line) =
                        split_target(target).map_err(|e| format!("line {line_no}: {e}"))?;
                    let rest = words.collect::<Vec<_>>().join(" ");
                    let justification = rest
                        .strip_prefix("--")
                        .map(str::trim)
                        .filter(|j| !j.is_empty())
                        .ok_or_else(|| {
                            format!("line {line_no}: allow entry needs `-- justification`")
                        })?
                        .to_string();
                    list.entries.push(AllowEntry {
                        rule,
                        file,
                        line,
                        justification,
                    });
                }
                Some("stats-path") => {
                    let path = words.next().ok_or_else(|| {
                        format!("line {line_no}: missing path after `stats-path`")
                    })?;
                    list.extra_stats_paths.push(path.to_string());
                }
                Some("hot-path") => {
                    let path = words
                        .next()
                        .ok_or_else(|| format!("line {line_no}: missing path after `hot-path`"))?;
                    list.extra_hot_paths.push(path.to_string());
                }
                Some(other) => {
                    return Err(format!(
                        "line {line_no}: unknown directive `{other}` (expected `allow`, `stats-path` or `hot-path`)"
                    ));
                }
                None => {}
            }
        }
        Ok(list)
    }

    /// Whether a diagnostic at `file:line` for `rule` is suppressed.
    pub fn is_allowed(&self, rule: Rule, file: &str, line: usize) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && e.file == file && e.line.is_none_or(|l| l == line))
    }
}

/// Splits `path[:line]`.
fn split_target(target: &str) -> Result<(String, Option<usize>), String> {
    match target.rsplit_once(':') {
        Some((file, line)) if line.chars().all(|c| c.is_ascii_digit()) && !line.is_empty() => {
            let n: usize = line
                .parse()
                .map_err(|_| format!("bad line number `{line}`"))?;
            Ok((file.to_string(), Some(n)))
        }
        _ => Ok((target.to_string(), None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_stats_paths() {
        let text = "# header\nallow L1 crates/a/src/x.rs:12 -- boot only\nallow L2 crates/b/src/y.rs -- scratch map\nstats-path crates/bench/src/report.rs\n";
        let a = Allowlist::parse(text).unwrap();
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].line, Some(12));
        assert_eq!(a.entries[1].line, None);
        assert_eq!(a.extra_stats_paths, vec!["crates/bench/src/report.rs"]);
    }

    #[test]
    fn requires_justification() {
        assert!(Allowlist::parse("allow L1 crates/a/src/x.rs:12\n").is_err());
        assert!(Allowlist::parse("allow L1 crates/a/src/x.rs:12 --\n").is_err());
    }

    #[test]
    fn rejects_unknown_rule_and_directive() {
        assert!(Allowlist::parse("allow L9 f.rs -- x\n").is_err());
        assert!(Allowlist::parse("permit L1 f.rs -- x\n").is_err());
    }

    #[test]
    fn matching() {
        let a = Allowlist::parse(
            "allow L1 crates/a/src/x.rs:12 -- why\nallow L2 crates/b/src/y.rs -- why\n",
        )
        .unwrap();
        assert!(a.is_allowed(Rule::L1, "crates/a/src/x.rs", 12));
        assert!(!a.is_allowed(Rule::L1, "crates/a/src/x.rs", 13));
        assert!(a.is_allowed(Rule::L2, "crates/b/src/y.rs", 99));
        assert!(!a.is_allowed(Rule::L1, "crates/b/src/y.rs", 99));
    }

    #[test]
    fn inline_comment_stripped() {
        let a = Allowlist::parse("stats-path a.rs # note\n").unwrap();
        assert_eq!(a.extra_stats_paths, vec!["a.rs"]);
    }

    #[test]
    fn hot_path_extends_the_l7_scope() {
        let a = Allowlist::parse("hot-path crates/cachesim/src/cache.rs\n").unwrap();
        assert_eq!(a.extra_hot_paths, vec!["crates/cachesim/src/cache.rs"]);
        assert!(Allowlist::parse("hot-path\n").is_err());
    }
}
