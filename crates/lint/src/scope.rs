//! Test-region detection: which lines of a (sanitized) source file belong
//! to `#[cfg(test)]` modules or `#[test]` functions.
//!
//! Rules L1–L3 only apply to production code; tests may unwrap/panic freely.
//! The detector is a brace-depth tracker: once a test attribute is seen, the
//! next `{` opens a region that lasts until the matching `}`. A `;` before
//! any `{` cancels the pending attribute (e.g. `#[cfg(test)] mod t;`).

/// Per-line flags: `true` when the line is inside (or is) a test region.
pub fn test_line_mask(sanitized: &str) -> Vec<bool> {
    let mut mask = Vec::new();
    let mut depth: i64 = 0;
    // Depth at which the innermost active test region will close.
    let mut region_close: Option<i64> = None;
    // A test attribute was seen and we are waiting for its `{`.
    let mut pending = false;

    for line in sanitized.lines() {
        let started_inside = region_close.is_some();
        let mut line_is_test = started_inside || pending;

        if region_close.is_none() && !pending {
            let t = line.trim_start();
            if t.starts_with("#[cfg(test)]") || t.starts_with("#[test]") {
                pending = true;
                line_is_test = true;
            }
        }

        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending && region_close.is_none() {
                        region_close = Some(depth - 1);
                        pending = false;
                        line_is_test = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if region_close == Some(depth) {
                        region_close = None;
                        // The closing line itself is still test code.
                        line_is_test = true;
                    }
                }
                ';' if pending && region_close.is_none() => pending = false,
                _ => {}
            }
        }

        mask.push(line_is_test || region_close.is_some());
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_masked() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let m = test_line_mask(src);
        assert_eq!(m, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_fn_is_masked() {
        let src = "#[test]\nfn t() {\n  body();\n}\nfn prod() {}\n";
        let m = test_line_mask(src);
        assert_eq!(m, vec![true, true, true, true, false]);
    }

    #[test]
    fn semicolon_cancels_pending() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() { x(); }\n";
        let m = test_line_mask(src);
        assert_eq!(m, vec![true, true, false]);
    }

    #[test]
    fn nested_braces_stay_in_region() {
        let src = "#[cfg(test)]\nmod t {\n fn a() { if x { y(); } }\n}\nfn p() {}\n";
        let m = test_line_mask(src);
        assert_eq!(m, vec![true, true, true, true, false]);
    }

    #[test]
    fn inline_attr_and_fn_same_line() {
        let src = "#[test] fn t() { a(); }\nfn p() {}\n";
        let m = test_line_mask(src);
        assert_eq!(m, vec![true, false]);
    }
}
