//! nuca-lint: workspace-native static analysis for the NUCA simulator.
//!
//! Run with `cargo run -p nuca-lint -- check` (add `--json` for machine
//! output, `--stale-allowlist` to also fail on dead suppressions). The
//! pass lexes every `.rs` file into a real token stream ([`lexer`]),
//! derives item/test structure ([`syntax`]), and runs the token-level and
//! semantic rules described in [`rules`] — L1–L7 plus the determinism and
//! dataflow passes D1–D4. Exemptions live in `lint.toml` at the repo root
//! and must carry a justification; see [`allowlist`].
//!
//! The crate is std-only by design: it must build offline, before any of
//! the simulator crates compile, so the lint wall can run first in CI.

pub mod allowlist;
pub mod dataflow;
pub mod lexer;
pub mod rules;
pub mod syntax;

use std::fs;
use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use rules::{check_files, Diagnostic, Scopes};
use syntax::FileIndex;

/// An inline `lint:allow` marker that no finding matched — dead weight
/// that silently suppresses nothing (or worse, the wrong line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleMarker {
    /// File containing the marker.
    pub file: String,
    /// 1-based line of the marker.
    pub line: usize,
    /// Rule named by the marker.
    pub rule: rules::Rule,
}

/// Result of a full `check` run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Surviving (non-suppressed) findings, sorted by file/line/col.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// How many findings inline markers + the allowlist suppressed.
    pub suppressed: usize,
    /// Inline markers that suppressed nothing.
    pub stale_markers: Vec<StaleMarker>,
    /// `lint.toml` `allow` entries (as written) that suppressed nothing.
    pub stale_entries: Vec<String>,
}

/// Directory names never descended into. `fixtures` keeps the golden-file
/// corpus under `crates/lint/tests/fixtures/` out of workspace scans.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "results", "node_modules", "fixtures"];

/// Runs the full analysis over the tree rooted at `root`.
///
/// `allowlist_path` overrides the default `<root>/lint.toml`; a missing
/// default file simply means "no exemptions", while a missing explicit
/// path is an error.
pub fn run_check(root: &Path, allowlist_path: Option<&Path>) -> Result<CheckReport, String> {
    let allow = load_allowlist(root, allowlist_path)?;
    let mut scopes = Scopes::default();
    scopes
        .stats_files
        .extend(allow.extra_stats_paths.iter().cloned());
    scopes
        .hot_files
        .extend(allow.extra_hot_paths.iter().cloned());

    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut indexes = Vec::with_capacity(files.len());
    for path in &files {
        let rel = relative_slash(root, path);
        let raw = fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        indexes.push(FileIndex::build(&rel, &raw));
    }

    Ok(filter_report(
        check_files(&indexes, &scopes),
        &indexes,
        &allow,
    ))
}

/// Applies inline markers then the allowlist to raw findings, tracking
/// which suppressions actually fired so dead ones can be reported.
fn filter_report(raw: Vec<Diagnostic>, indexes: &[FileIndex], allow: &Allowlist) -> CheckReport {
    let mut marker_used = vec![Vec::new(); indexes.len()];
    for (fi, f) in indexes.iter().enumerate() {
        marker_used[fi] = vec![false; f.allows.len()];
    }
    let mut entry_used = vec![false; allow.entries.len()];

    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for d in raw {
        let inline = indexes.iter().enumerate().find_map(|(fi, f)| {
            if f.rel != d.file {
                return None;
            }
            f.allows
                .iter()
                .position(|a| a.rule == d.rule && a.line == d.line)
                .map(|ai| (fi, ai))
        });
        if let Some((fi, ai)) = inline {
            if let Some(slot) = marker_used.get_mut(fi).and_then(|v| v.get_mut(ai)) {
                *slot = true;
            }
            suppressed += 1;
            continue;
        }
        let entry = allow.entries.iter().position(|e| {
            e.rule == d.rule && e.file == d.file && e.line.is_none_or(|l| l == d.line)
        });
        if let Some(ei) = entry {
            if let Some(slot) = entry_used.get_mut(ei) {
                *slot = true;
            }
            suppressed += 1;
            continue;
        }
        diagnostics.push(d);
    }

    let mut stale_markers = Vec::new();
    for (fi, f) in indexes.iter().enumerate() {
        for (ai, a) in f.allows.iter().enumerate() {
            let used = marker_used
                .get(fi)
                .and_then(|v| v.get(ai))
                .copied()
                .unwrap_or(false);
            if !used {
                stale_markers.push(StaleMarker {
                    file: f.rel.clone(),
                    line: a.line,
                    rule: a.rule,
                });
            }
        }
    }
    let stale_entries = allow
        .entries
        .iter()
        .zip(entry_used.iter())
        .filter(|(_, used)| !**used)
        .map(|(e, _)| {
            let target = match e.line {
                Some(l) => format!("{}:{l}", e.file),
                None => e.file.clone(),
            };
            format!("allow {} {target}", e.rule)
        })
        .collect();

    CheckReport {
        diagnostics,
        files_scanned: indexes.len(),
        suppressed,
        stale_markers,
        stale_entries,
    }
}

fn load_allowlist(root: &Path, explicit: Option<&Path>) -> Result<Allowlist, String> {
    let path = match explicit {
        Some(p) => p.to_path_buf(),
        None => {
            let default = root.join("lint.toml");
            if !default.is_file() {
                return Ok(Allowlist::default());
            }
            default
        }
    };
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("failed to read allowlist {}: {e}", path.display()))?;
    Allowlist::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| format!("failed to read dir entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Human-readable report. `stale` adds the dead-suppression section (the
/// `--stale-allowlist` mode).
pub fn render_text(report: &CheckReport, stale: bool) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if stale {
        for m in &report.stale_markers {
            out.push_str(&format!(
                "stale-marker: {}:{}: lint:allow({}) suppresses nothing — delete it\n",
                m.file, m.line, m.rule
            ));
        }
        for e in &report.stale_entries {
            out.push_str(&format!(
                "stale-entry: lint.toml: `{e}` suppresses nothing — delete it\n"
            ));
        }
    }
    let dirty = !report.diagnostics.is_empty()
        || (stale && (!report.stale_markers.is_empty() || !report.stale_entries.is_empty()));
    if dirty {
        out.push_str(&format!(
            "nuca-lint: {} violation(s) across {} files scanned ({} suppressed)\n",
            report.diagnostics.len(),
            report.files_scanned,
            report.suppressed
        ));
    } else {
        out.push_str(&format!(
            "nuca-lint: clean ({} files scanned, {} finding(s) suppressed)\n",
            report.files_scanned, report.suppressed
        ));
    }
    out
}

/// Machine-readable report, schema version 2 (stable):
///
/// ```json
/// {"version":2,
///  "violations":[{"rule":"L1","file":"...","line":1,"col":12,
///                 "snippet":"...","message":"..."}],
///  "stale_markers":[{"file":"...","line":3,"rule":"L7"}],
///  "stale_entries":["allow L1 crates/..."],
///  "count":1,"files_scanned":N,"suppressed":N}
/// ```
///
/// Consumers (CI problem-matcher, editors) may rely on every listed key
/// being present; new keys may be added, existing ones never change type.
pub fn render_json(report: &CheckReport) -> String {
    let mut out = String::from("{\"version\":2,\"violations\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"snippet\":\"{}\",\"message\":\"{}\"}}",
            d.rule,
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.snippet),
            json_escape(&d.message)
        ));
    }
    out.push_str("],\"stale_markers\":[");
    for (i, m) in report.stale_markers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\"}}",
            json_escape(&m.file),
            m.line,
            m.rule
        ));
    }
    out.push_str("],\"stale_entries\":[");
    for (i, e) in report.stale_entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(e)));
    }
    out.push_str(&format!(
        "],\"count\":{},\"files_scanned\":{},\"suppressed\":{}}}",
        report.diagnostics.len(),
        report.files_scanned,
        report.suppressed
    ));
    out.push('\n');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::Rule;

    fn tmp_tree(label: &str, files: &[(&str, &str)]) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nuca-lint-test-{}-{label}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for (rel, content) in files {
            let p = dir.join(rel);
            if let Some(parent) = p.parent() {
                fs::create_dir_all(parent).unwrap();
            }
            fs::write(p, content).unwrap();
        }
        dir
    }

    #[test]
    fn end_to_end_finds_and_allowlists() {
        let root = tmp_tree(
            "e2e",
            &[
                (
                    "crates/core/src/cmp.rs",
                    "fn a() { x.unwrap(); }\nfn b() { y.unwrap(); }\n",
                ),
                (
                    "lint.toml",
                    "allow L1 crates/core/src/cmp.rs:2 -- demo exemption\n",
                ),
            ],
        );
        let report = run_check(&root, None).unwrap();
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].line, 1);
        assert_eq!(report.suppressed, 1);
        assert!(report.stale_entries.is_empty());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn inline_marker_suppresses_and_string_marker_does_not() {
        let root = tmp_tree(
            "inline",
            &[(
                "crates/core/src/cmp.rs",
                "fn a() { x.unwrap(); } // lint:allow(L1): boot-only path\nfn b() { let s = \"lint:allow(L1)\"; y.unwrap(); }\n",
            )],
        );
        let report = run_check(&root, None).unwrap();
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].line, 2);
        assert_eq!(report.suppressed, 1);
        assert!(report.stale_markers.is_empty());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_marker_and_entry_are_reported() {
        let root = tmp_tree(
            "stale",
            &[
                (
                    "crates/core/src/cmp.rs",
                    "fn clean() {} // lint:allow(L1): nothing here fires\n",
                ),
                (
                    "lint.toml",
                    "allow L2 crates/core/src/cmp.rs -- no HashMap anywhere\n",
                ),
            ],
        );
        let report = run_check(&root, None).unwrap();
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.stale_markers.len(), 1);
        assert_eq!(report.stale_markers[0].rule, Rule::L1);
        assert_eq!(report.stale_entries.len(), 1);
        assert!(report.stale_entries[0].contains("allow L2"));
        let text = render_text(&report, true);
        assert!(text.contains("stale-marker"));
        assert!(text.contains("stale-entry"));
        // Without --stale-allowlist the same report renders clean.
        assert!(render_text(&report, false).contains("clean"));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn json_v2_schema_has_all_keys() {
        let report = CheckReport {
            diagnostics: vec![Diagnostic {
                rule: Rule::L2,
                file: "crates/x/src/a.rs".into(),
                line: 3,
                col: 5,
                snippet: "use std::collections::HashMap;".into(),
                message: "say \"hi\"".into(),
            }],
            files_scanned: 7,
            suppressed: 0,
            stale_markers: vec![StaleMarker {
                file: "crates/x/src/b.rs".into(),
                line: 9,
                rule: Rule::L7,
            }],
            stale_entries: vec!["allow L1 crates/x/src/c.rs:2".into()],
        };
        let j = render_json(&report);
        assert!(j.starts_with("{\"version\":2,"));
        assert!(j.contains("\"rule\":\"L2\""));
        assert!(j.contains("\"col\":5"));
        assert!(j.contains("\"snippet\":\"use std::collections::HashMap;\""));
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains(
            "\"stale_markers\":[{\"file\":\"crates/x/src/b.rs\",\"line\":9,\"rule\":\"L7\"}]"
        ));
        assert!(j.contains("\"stale_entries\":[\"allow L1 crates/x/src/c.rs:2\"]"));
        assert!(j.contains("\"count\":1"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn skips_target_and_fixture_dirs() {
        let root = tmp_tree(
            "skips",
            &[
                ("target/debug/build/gen.rs", "fn a() { x.unwrap(); }\n"),
                (
                    "crates/lint/tests/fixtures/l1.rs",
                    "fn a() { x.unwrap(); }\n",
                ),
                ("src/lib.rs", "fn clean() {}\n"),
            ],
        );
        let report = run_check(&root, None).unwrap();
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.files_scanned, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn multiline_raw_string_does_not_shift_later_findings() {
        // v1 regression: a rule token inside a multi-line raw string used
        // to either fire at the wrong line or hide the real finding below.
        let src = "const DOC: &str = r#\"\nexample: x.unwrap()\npanic!(\"not real\")\n\"#;\nfn f() { real.unwrap(); }\n";
        let root = tmp_tree("drift", &[("crates/core/src/cmp.rs", src)]);
        let report = run_check(&root, None).unwrap();
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].line, 5);
        assert_eq!(report.diagnostics[0].snippet, "fn f() { real.unwrap(); }");
        fs::remove_dir_all(&root).unwrap();
    }
}
