//! nuca-lint: workspace-native static analysis for the NUCA simulator.
//!
//! Run with `cargo run -p nuca-lint -- check` (add `--json` for machine
//! output). The pass walks every `.rs` file in the repository, strips
//! comments and string literals, masks test regions, and enforces the five
//! project rules described in [`rules`]. Exemptions live in `lint.toml` at
//! the repo root and must carry a justification; see [`allowlist`].
//!
//! The binary is std-only by design: it must build offline, before any of
//! the simulator crates compile, so the lint wall can run first in CI.

pub mod allowlist;
pub mod rules;
pub mod sanitize;
pub mod scope;

use std::fs;
use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use rules::{check_file, Diagnostic, Scopes};

/// Result of a full `check` run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Surviving (non-allowlisted) findings, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// How many findings the allowlist suppressed.
    pub suppressed: usize,
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "results", "node_modules"];

/// Runs the full analysis over the tree rooted at `root`.
///
/// `allowlist_path` overrides the default `<root>/lint.toml`; a missing
/// default file simply means "no exemptions", while a missing explicit
/// path is an error.
pub fn run_check(root: &Path, allowlist_path: Option<&Path>) -> Result<CheckReport, String> {
    let allow = load_allowlist(root, allowlist_path)?;
    let mut scopes = Scopes::default();
    scopes
        .stats_files
        .extend(allow.extra_stats_paths.iter().cloned());
    scopes
        .hot_files
        .extend(allow.extra_hot_paths.iter().cloned());

    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for path in &files {
        let rel = relative_slash(root, path);
        let raw = fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        let sanitized = sanitize::sanitize(&raw);
        let mask = scope::test_line_mask(&sanitized);
        for d in check_file(&rel, &raw, &sanitized, &mask, &scopes) {
            if allow.is_allowed(d.rule, &d.file, d.line) {
                suppressed += 1;
            } else {
                diagnostics.push(d);
            }
        }
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(CheckReport {
        diagnostics,
        files_scanned: files.len(),
        suppressed,
    })
}

fn load_allowlist(root: &Path, explicit: Option<&Path>) -> Result<Allowlist, String> {
    let path = match explicit {
        Some(p) => p.to_path_buf(),
        None => {
            let default = root.join("lint.toml");
            if !default.is_file() {
                return Ok(Allowlist::default());
            }
            default
        }
    };
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("failed to read allowlist {}: {e}", path.display()))?;
    Allowlist::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| format!("failed to read dir entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Human-readable report.
pub fn render_text(report: &CheckReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if report.diagnostics.is_empty() {
        out.push_str(&format!(
            "nuca-lint: clean ({} files scanned, {} finding(s) allowlisted)\n",
            report.files_scanned, report.suppressed
        ));
    } else {
        out.push_str(&format!(
            "nuca-lint: {} violation(s) across {} files scanned ({} allowlisted)\n",
            report.diagnostics.len(),
            report.files_scanned,
            report.suppressed
        ));
    }
    out
}

/// Machine-readable report:
/// `{"violations":[{"rule":..,"file":..,"line":..,"message":..}],"count":N,
///   "files_scanned":N,"suppressed":N}`.
pub fn render_json(report: &CheckReport) -> String {
    let mut out = String::from("{\"violations\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            d.rule,
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    out.push_str(&format!(
        "],\"count\":{},\"files_scanned\":{},\"suppressed\":{}}}",
        report.diagnostics.len(),
        report.files_scanned,
        report.suppressed
    ));
    out.push('\n');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::Rule;

    fn tmp_tree(files: &[(&str, &str)]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nuca-lint-test-{}-{:p}",
            std::process::id(),
            &files
        ));
        for (rel, content) in files {
            let p = dir.join(rel);
            if let Some(parent) = p.parent() {
                fs::create_dir_all(parent).unwrap();
            }
            fs::write(p, content).unwrap();
        }
        dir
    }

    #[test]
    fn end_to_end_finds_and_allowlists() {
        let root = tmp_tree(&[
            (
                "crates/core/src/cmp.rs",
                "fn a() { x.unwrap(); }\nfn b() { y.unwrap(); }\n",
            ),
            (
                "lint.toml",
                "allow L1 crates/core/src/cmp.rs:2 -- demo exemption\n",
            ),
        ]);
        let report = run_check(&root, None).unwrap();
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].line, 1);
        assert_eq!(report.suppressed, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = CheckReport {
            diagnostics: vec![Diagnostic {
                rule: Rule::L2,
                file: "crates/x/src/a.rs".into(),
                line: 3,
                message: "say \"hi\"".into(),
            }],
            files_scanned: 7,
            suppressed: 0,
        };
        let j = render_json(&report);
        assert!(j.contains("\"rule\":\"L2\""));
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains("\"count\":1"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn skips_target_dir() {
        let root = tmp_tree(&[
            ("target/debug/build/gen.rs", "fn a() { x.unwrap(); }\n"),
            ("src/lib.rs", "fn clean() {}\n"),
        ]);
        let report = run_check(&root, None).unwrap();
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.files_scanned, 1);
        fs::remove_dir_all(&root).unwrap();
    }
}
