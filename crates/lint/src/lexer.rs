//! A std-only Rust lexer producing a flat token stream with exact spans.
//!
//! This replaces the v1 "blank out strings and comments, then regex over
//! lines" sanitizer: every construct that confused a line-oriented scanner
//! — multi-line raw strings, nested block comments, `'a` lifetimes versus
//! `'a'` char literals, `b"..."` byte strings, `r#ident` raw identifiers —
//! is resolved here once, and every downstream rule works on tokens whose
//! `line`/`col` point at the real source location. String and comment
//! *contents* are never visible to the rules (they are opaque literal
//! tokens), which eliminates the false-positive class that used to need
//! `lint.toml` entries.
//!
//! The lexer is intentionally lossy where linting does not care: all
//! keywords are [`TokenKind::Ident`], multi-character operators arrive as
//! adjacent single-character [`TokenKind::Punct`] tokens (`::` is `:`,`:`),
//! and numeric literals are a single [`TokenKind::Num`] token regardless of
//! base or suffix. Rules match short token sequences, so this keeps both
//! the lexer and the matchers small without losing precision.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#name`).
    Ident,
    /// Lifetime such as `'a` or `'_` (the quote and the name).
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String or byte-string literal (`"..."`, `b"..."`), escapes resolved.
    Str,
    /// Raw (byte-)string literal (`r"..."`, `br##"..."##`).
    RawStr,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// `//`-to-end-of-line comment (including `///` and `//!` doc forms).
    LineComment,
    /// `/* ... */` comment, nesting resolved (including `/** ... */`).
    BlockComment,
    /// Any other single character (operators, brackets, `#`, `!`, ...).
    Punct,
}

/// One lexed token. Spans are byte offsets into the original source; the
/// `line`/`col` pair is 1-based and points at the first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: usize,
    /// 1-based byte column of `start` within its line.
    pub col: usize,
}

impl Token {
    /// The token's text as a slice of the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Lexes `src` into a token stream. Never fails: malformed input (an
/// unterminated string or comment) produces a final token that runs to the
/// end of the file, which is the most useful behavior for a linter that
/// must keep going.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line/col counters.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: usize, col: usize) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let (start, line, col) = (self.pos, self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.emit(TokenKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.string();
                    self.emit(TokenKind::Str, start, line, col);
                }
                b'r' | b'b' if self.raw_str_hashes().is_some() => {
                    // Unwrap is avoided: re-derive the hash count.
                    let hashes = self.raw_str_hashes().unwrap_or(0);
                    self.raw_string(hashes);
                    self.emit(TokenKind::RawStr, start, line, col);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.bump(); // b
                    self.string();
                    self.emit(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.bump(); // b
                    self.char_lit();
                    self.emit(TokenKind::Char, start, line, col);
                }
                b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier r#name.
                    self.bump_n(2);
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        self.bump(); // '
                        while self.peek(0).is_some_and(is_ident_continue) {
                            self.bump();
                        }
                        self.emit(TokenKind::Lifetime, start, line, col);
                    } else {
                        self.char_lit();
                        self.emit(TokenKind::Char, start, line, col);
                    }
                }
                b'0'..=b'9' => {
                    self.number();
                    self.emit(TokenKind::Num, start, line, col);
                }
                c if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                c if c < 0x80 => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, line, col);
                }
                _ => {
                    // Multi-byte UTF-8 scalar outside any literal: consume
                    // the whole sequence as one Punct to stay on char
                    // boundaries.
                    self.bump();
                    while self.peek(0).is_some_and(|c| (c & 0xC0) == 0x80) {
                        self.bump();
                    }
                    self.emit(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// Consumes a `/* ... */` comment (nesting resolved) starting at `/`.
    fn block_comment(&mut self) {
        self.bump_n(2); // /*
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if c == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    /// If the cursor sits on a raw-string prefix (`r"`, `r#"`, `br##"`...),
    /// returns the number of hashes.
    fn raw_str_hashes(&self) -> Option<usize> {
        let mut j = 0usize;
        if self.peek(j) == Some(b'b') {
            j += 1;
        }
        if self.peek(j) != Some(b'r') {
            return None;
        }
        j += 1;
        let mut hashes = 0usize;
        while self.peek(j) == Some(b'#') {
            hashes += 1;
            j += 1;
        }
        (self.peek(j) == Some(b'"')).then_some(hashes)
    }

    /// Consumes a raw string starting at the current `r`/`b` byte.
    fn raw_string(&mut self, hashes: usize) {
        // Prefix: optional b, r, hashes, opening quote.
        if self.peek(0) == Some(b'b') {
            self.bump();
        }
        self.bump(); // r
        self.bump_n(hashes);
        self.bump(); // "
        while let Some(c) = self.peek(0) {
            if c == b'"' && (1..=hashes).all(|k| self.peek(k) == Some(b'#')) {
                self.bump_n(hashes + 1);
                return;
            }
            self.bump();
        }
    }

    /// Consumes a `"..."` string starting at the opening quote.
    fn string(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a `'...'` char literal starting at the opening quote.
    fn char_lit(&mut self) {
        self.bump(); // opening '
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    return;
                }
                b'\n' => return, // malformed; don't swallow the file
                _ => self.bump(),
            }
        }
    }

    /// Distinguishes `'a` (lifetime) from `'a'` (char literal): after the
    /// quote comes an identifier; if the char right after that identifier
    /// is another quote, it was a one-char literal.
    fn lifetime_ahead(&self) -> bool {
        if !self.peek(1).is_some_and(is_ident_start) {
            return false;
        }
        let mut j = 2;
        while self.peek(j).is_some_and(is_ident_continue) {
            j += 1;
        }
        self.peek(j) != Some(b'\'')
    }

    /// Consumes a numeric literal: digits, `_`, suffixes, hex/oct/bin
    /// bodies, one fractional point when followed by a digit, and signed
    /// exponents. Range punctuation (`0..n`) is left alone.
    fn number(&mut self) {
        self.bump(); // leading digit
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                let is_exp = (c == b'e' || c == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit());
                self.bump();
                if is_exp {
                    self.bump(); // the sign
                }
            } else if c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let ks = kinds("pub fn f(x: u64) -> u64 { x }");
        assert_eq!(ks[0], (TokenKind::Ident, "pub".to_string()));
        assert_eq!(ks[1], (TokenKind::Ident, "fn".to_string()));
        assert!(ks.iter().any(|k| k == &(TokenKind::Punct, "{".to_string())));
    }

    #[test]
    fn strings_hide_their_contents_but_keep_spans() {
        let src = "let s = \"panic!(\\\"no\\\")\";\nx.unwrap();";
        let toks = lex(src);
        let s = toks
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert_eq!(s.line, 1);
        // The unwrap ident on line 2 must carry an exact location.
        let u = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text(src) == "unwrap")
            .expect("unwrap ident");
        assert_eq!((u.line, u.col), (2, 3));
    }

    #[test]
    fn multiline_raw_strings_span_lines() {
        let src = "let q = r#\"line one\nline .unwrap() two\n\"#;\nafter";
        let toks = lex(src);
        let raw = toks
            .iter()
            .find(|t| t.kind == TokenKind::RawStr)
            .expect("raw string");
        assert_eq!(raw.line, 1);
        assert!(raw.text(src).contains("unwrap"), "contents are opaque");
        let after = toks.iter().find(|t| t.text(src) == "after").expect("after");
        assert_eq!(after.line, 4);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "unwrap"));
    }

    #[test]
    fn nested_block_comments_resolve() {
        let src = "a /* one /* two */ still */ b";
        let ks = kinds(src);
        assert_eq!(ks.first().map(|k| k.1.as_str()), Some("a"));
        assert_eq!(ks.last().map(|k| k.1.as_str()), Some("b"));
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].0, TokenKind::BlockComment);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let q = '\"'; let n = '\\n'; }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"panic!\"; let b2 = b'x'; let r = br#\"HashMap\"#; z";
        let toks = lex(src);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "HashMap"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::RawStr).count(),
            1
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
        assert!(toks.iter().any(|t| t.text(src) == "z"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        let src = "let r#match = 1; r#match";
        let toks = lex(src);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Ident && t.text(src) == "r#match")
                .count(),
            2
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..16 { let f = 1.5e-3; let h = 0xFFu64; }";
        let nums: Vec<String> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(nums, vec!["0", "16", "1.5e-3", "0xFFu64"]);
    }

    #[test]
    fn line_and_col_are_exact_after_multiline_tokens() {
        let src = "/* a\nb\nc */ x = 1;\n\"s\ntr\" y";
        let toks = lex(src);
        let x = toks.iter().find(|t| t.text(src) == "x").expect("x");
        assert_eq!((x.line, x.col), (3, 6));
        let y = toks.iter().find(|t| t.text(src) == "y").expect("y");
        assert_eq!((y.line, y.col), (5, 5));
    }

    #[test]
    fn doc_comments_are_comment_tokens() {
        let src = "/// docs with unwrap()\npub fn f() {}\n//! inner\n/** block doc */";
        let toks = lex(src);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::LineComment)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::BlockComment)
                .count(),
            1
        );
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "unwrap"));
    }

    #[test]
    fn unterminated_constructs_run_to_eof() {
        assert_eq!(lex("\"never closed").len(), 1);
        assert_eq!(lex("/* never closed").len(), 1);
        assert_eq!(lex("r#\"never closed").len(), 1);
    }
}
