//! The project rules, implemented over the token stream (see DESIGN.md
//! §"Static analysis v2").
//!
//! Legacy rules, now token-aware (no string/comment false positives):
//!
//! - **L1** — no `unwrap()` / `expect()` / `panic!` / `unreachable!` in
//!   non-test code of the simulation crates.
//! - **L2** — no `HashMap` / `HashSet` in simulator state.
//! - **L3** — no bare `as` narrowing casts in statistics/counter paths.
//! - **L4** — every `pub fn` in the adaptive-partitioning core carries a
//!   doc comment.
//! - **L5** — no `thread::spawn` / `thread::scope` outside the sanctioned
//!   runner module.
//! - **L6** — no `println!` / `eprintln!` outside binaries/examples and
//!   exempted modules.
//! - **L7** — no heap allocation in the per-step hot-path modules.
//!
//! Determinism / semantic passes (new in v2):
//!
//! - **D1** — no host-nondeterminism inside the simulation crates: clock
//!   reads (`Instant`, `SystemTime`), environment reads (`env::var`,
//!   `env::args`), randomness (`thread_rng`, `rand::`), host-parallelism
//!   probes (`available_parallelism`), and hash-ordered containers in the
//!   crates L2 does not already cover (`tracegen` feeds simulation input,
//!   so its iteration order is output-affecting too). Bit-identical
//!   replay — skip-vs-noskip, `--jobs N` vs serial, trace replay — is the
//!   repo's central correctness claim; any of these tokens breaks it.
//! - **D2** — cycle-arithmetic audit: raw `-` on cycle/quota quantities
//!   must be guarded by an explicit ordering comparison in the same
//!   function (or use `saturating_sub`/`checked_sub`), and narrowing `as`
//!   casts of cycle/quota quantities only pass when an intraprocedural
//!   use-def walk proves the value bounded (see [`crate::dataflow`]).
//!   Cycle counters are `u64` and monotonically huge; an unchecked
//!   subtraction or truncation fails silently in release builds.
//! - **D3** — Sink-genericity: components that emit telemetry must be
//!   generic over `telemetry::Sink`, never hardwire the concrete
//!   `Recorder` in a field, parameter, return type or type argument.
//!   `NullSink` compiling away is what makes telemetry zero-cost-when-off;
//!   a hardwired `Recorder` re-introduces the cost for every caller.
//!   (Constructing a `Recorder` at a collection boundary is fine — the
//!   rule targets type positions, not expressions.)
//! - **D4** — call-graph-aware hot-path allocation: L7 extended one call
//!   level past the hot-module boundary. A call from a hot-path function
//!   to a workspace function that allocates is flagged at the call site,
//!   unless the callee is itself in a hot file (already under L7) or the
//!   callee's name is ambiguous across the workspace with mixed behavior
//!   (conservative: only unanimous allocators fire).

use std::collections::BTreeMap;
use std::fmt;

use crate::dataflow;
use crate::lexer::TokenKind;
use crate::syntax::FileIndex;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Panic-freedom in simulator code.
    L1,
    /// Determinism: no hash-ordered containers in simulator state.
    L2,
    /// Cast safety in statistics paths.
    L3,
    /// Doc coverage of the partitioning core's public API.
    L4,
    /// Determinism: no threads outside the sanctioned parallel runner.
    L5,
    /// No print macros outside binaries/examples and exempt modules.
    L6,
    /// No heap allocation in per-step hot-path modules.
    L7,
    /// Determinism: no clock/env/randomness/hash-order in sim crates.
    D1,
    /// Cycle-arithmetic audit: guarded subtraction, bounded narrowing.
    D2,
    /// Sink-genericity: no hardwired `Recorder` in component types.
    D3,
    /// Hot-path allocation, one call level deep.
    D4,
}

/// All rules, in diagnostic order.
pub const ALL_RULES: [Rule; 11] = [
    Rule::L1,
    Rule::L2,
    Rule::L3,
    Rule::L4,
    Rule::L5,
    Rule::L6,
    Rule::L7,
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::D4,
];

impl Rule {
    /// Short name as written in `lint.toml` and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
        }
    }

    /// Parses a rule name from allowlist text.
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a repo-relative file and an exact 1-based
/// line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub col: usize,
    /// Trimmed source line for context.
    pub snippet: String,
    /// Human-readable explanation of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}:{}: {}",
            self.rule, self.file, self.line, self.col, self.message
        )
    }
}

/// Which parts of the tree each rule applies to. Paths are repo-relative
/// with forward slashes; prefixes end in `/` except exact-file entries.
#[derive(Debug, Clone)]
pub struct Scopes {
    /// L1/L2: production source of the simulation crates.
    pub sim_prefixes: Vec<String>,
    /// L3: statistics/counter files (exact paths). Extendable from
    /// `lint.toml` via `stats-path` lines.
    pub stats_files: Vec<String>,
    /// L4: prefixes/exact files whose `pub fn`s must be documented.
    pub doc_paths: Vec<String>,
    /// L5/D1: exact files allowed to spawn threads and probe host
    /// parallelism (the sanctioned runner).
    pub runner_files: Vec<String>,
    /// L6: exact non-binary files allowed to print.
    pub print_files: Vec<String>,
    /// L7/D4: exact files whose non-test code is a per-step hot path.
    /// Extendable from `lint.toml` via `hot-path` lines.
    pub hot_files: Vec<String>,
    /// D1/D2: crates whose state or output must be deterministic — the
    /// sim prefixes plus `tracegen` (workload input is output-affecting).
    pub det_prefixes: Vec<String>,
    /// D3: prefix of the crate that legitimately defines `Recorder`.
    pub telemetry_prefix: String,
}

impl Default for Scopes {
    fn default() -> Self {
        let sim_prefixes = vec![
            "crates/simcore/src/".to_string(),
            "crates/cachesim/src/".to_string(),
            "crates/cpusim/src/".to_string(),
            "crates/memsim/src/".to_string(),
            "crates/core/src/".to_string(),
            "crates/campaign/src/".to_string(),
            "src/".to_string(),
        ];
        let mut det_prefixes = sim_prefixes.clone();
        det_prefixes.push("crates/tracegen/src/".to_string());
        // The facade's CLI layer reads env vars by design (NUCA_BENCH_JOBS
        // et al.); determinism rules cover the simulation crates proper.
        det_prefixes.retain(|p| p != "src/");
        Scopes {
            sim_prefixes,
            stats_files: vec!["crates/simcore/src/stats.rs".to_string()],
            doc_paths: vec![
                "crates/core/src/l3/".to_string(),
                "crates/core/src/engine.rs".to_string(),
            ],
            runner_files: vec!["crates/simcore/src/parallel/mod.rs".to_string()],
            print_files: vec!["crates/criterion/src/lib.rs".to_string()],
            hot_files: vec![
                "crates/core/src/l3/adaptive.rs".to_string(),
                "crates/cachesim/src/cache.rs".to_string(),
                "crates/cachesim/src/swar.rs".to_string(),
                "crates/cachesim/src/lru.rs".to_string(),
                "crates/cpusim/src/core.rs".to_string(),
                "crates/cpusim/src/core/functional.rs".to_string(),
                "crates/cpusim/src/fastpath.rs".to_string(),
                "crates/cpusim/src/l3iface.rs".to_string(),
                "crates/tracegen/src/generator.rs".to_string(),
            ],
            det_prefixes,
            telemetry_prefix: "crates/telemetry/src/".to_string(),
        }
    }
}

impl Scopes {
    fn in_sim(&self, rel: &str) -> bool {
        self.sim_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }

    fn in_det(&self, rel: &str) -> bool {
        self.det_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }

    fn in_stats(&self, rel: &str) -> bool {
        self.stats_files.iter().any(|p| p == rel)
    }

    fn in_doc(&self, rel: &str) -> bool {
        self.doc_paths
            .iter()
            .any(|p| rel == p || (p.ends_with('/') && rel.starts_with(p.as_str())))
    }

    fn is_runner(&self, rel: &str) -> bool {
        self.runner_files.iter().any(|p| p == rel)
    }

    fn in_hot(&self, rel: &str) -> bool {
        self.hot_files.iter().any(|p| p == rel)
    }

    /// Files where printing is structurally fine: binary sources, any
    /// `main.rs`, examples, plus the explicit `print_files` exemptions.
    fn may_print(&self, rel: &str) -> bool {
        rel.starts_with("src/bin/")
            || rel.contains("/src/bin/")
            || rel.starts_with("examples/")
            || rel.contains("/examples/")
            || rel.ends_with("/main.rs")
            || rel == "main.rs"
            || self.print_files.iter().any(|p| p == rel)
    }

    /// Files D3 covers: component library code under `crates/` that could
    /// hardwire a sink type. The telemetry crate defines `Recorder`, and
    /// the facade (`src/`, binaries) is the collection boundary that owns
    /// the concrete recorder by design — both are exempt.
    fn in_d3(&self, rel: &str) -> bool {
        rel.starts_with("crates/")
            && !rel.starts_with(self.telemetry_prefix.as_str())
            && !self.may_print(rel)
            && !rel.contains("/benches/")
            && !rel.contains("/tests/")
    }

    /// Files whose `fn` definitions feed the D4 facts table: the
    /// simulation/telemetry crates a hot path can actually call into.
    /// Restricting the table keeps unrelated tooling crates (whose fn
    /// names can collide with simulator helpers) out of name resolution.
    fn in_d4_facts(&self, rel: &str) -> bool {
        self.in_sim(rel) || self.in_det(rel) || rel.starts_with(self.telemetry_prefix.as_str())
    }
}

/// Integer types an `as` cast may silently truncate into.
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Float-producing methods whose result must not be `as`-cast to a 64-bit
/// integer.
const FLOAT_PRODUCERS: [&str; 4] = ["ceil", "floor", "round", "trunc"];

/// Name fragments that mark a quantity as cycle/quota arithmetic for D2.
const CYCLEISH: [&str; 6] = ["cycle", "cyc", "quota", "wake", "epoch", "deadline"];

/// Allocation calls L7/D4 forbid on hot paths, as token triples
/// (`a::b` paths) or method names.
const ALLOC_PATHS: [(&str, &str); 2] = [("Vec", "new"), ("Box", "new")];
const ALLOC_METHODS: [&str; 2] = ["clone", "to_vec"];

/// Host-environment reads D1 forbids (`env::<name>`).
const ENV_READS: [&str; 6] = ["var", "vars", "var_os", "args", "args_os", "current_dir"];

/// Facts about one workspace `fn`, for the D4 cross-file pass.
#[derive(Debug, Clone)]
struct FnFact {
    file: String,
    line: usize,
    in_hot: bool,
    /// First unjustified allocation line in the body, if any.
    alloc_line: Option<usize>,
}

/// Runs every rule over the indexed files and returns **raw** findings —
/// the caller applies inline markers and the `lint.toml` allowlist (so it
/// can also detect stale suppressions).
pub fn check_files(files: &[FileIndex], scopes: &Scopes) -> Vec<Diagnostic> {
    let facts = collect_fn_facts(files, scopes);
    let mut out = Vec::new();
    for f in files {
        check_one(f, scopes, &facts, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

/// Phase 1 of D4: every fn's allocation behavior, keyed by name.
fn collect_fn_facts(files: &[FileIndex], scopes: &Scopes) -> BTreeMap<String, Vec<FnFact>> {
    let mut table: BTreeMap<String, Vec<FnFact>> = BTreeMap::new();
    for f in files {
        if !scopes.in_d4_facts(&f.rel) {
            continue;
        }
        for item in &f.fns {
            if item.is_test {
                continue;
            }
            let alloc_line = item.body.and_then(|body| first_alloc_line(f, body));
            table.entry(item.name.clone()).or_default().push(FnFact {
                file: f.rel.clone(),
                line: item.line,
                in_hot: scopes.in_hot(&f.rel),
                alloc_line,
            });
        }
    }
    table
}

/// First line inside `body` (code-position span) carrying an allocation
/// token that is not in test code. Inline L7 allow markers do not
/// neutralize the *fact* — a justified cold allocation still makes the
/// callee an allocator from a hot caller's perspective; D4 call sites are
/// themselves suppressible.
fn first_alloc_line(f: &FileIndex, body: (usize, usize)) -> Option<usize> {
    let (open, close) = body;
    let mut i = open;
    while i <= close {
        if f.is_test(i) {
            i += 1;
            continue;
        }
        if let Some(line) = alloc_at(f, i) {
            return Some(line);
        }
        i += 1;
    }
    None
}

/// If code position `i` starts an allocation pattern, returns its line.
fn alloc_at(f: &FileIndex, i: usize) -> Option<usize> {
    let line = f.ctok(i).map(|t| t.line)?;
    let t = f.ctext(i);
    for (ty, m) in ALLOC_PATHS {
        if t == ty && f.ctext(i + 1) == ":" && f.ctext(i + 2) == ":" && f.ctext(i + 3) == m {
            return Some(line);
        }
    }
    if t == "vec" && f.ctext(i + 1) == "!" {
        return Some(line);
    }
    if t == "." && ALLOC_METHODS.contains(&f.ctext(i + 1)) && f.ctext(i + 2) == "(" {
        return Some(line);
    }
    None
}

/// Keywords that can precede a `(` without being a call.
const NOT_CALLEES: [&str; 12] = [
    "if", "while", "for", "match", "loop", "return", "fn", "as", "in", "move", "else", "let",
];

fn cycleish(name: &str) -> bool {
    CYCLEISH.iter().any(|k| name.contains(k))
}

/// Walks an operand path backwards from code position `end` (exclusive):
/// `self.a.b`, `x`, `Foo::BAR`. Returns the segment idents, innermost
/// last, or None when the operand is a complex expression.
fn operand_back(f: &FileIndex, end: usize) -> Option<Vec<String>> {
    let mut j = end;
    // Skip trailing `as Ty` chains: `x as u64 - y` parses the cast, the
    // operand is `x`.
    loop {
        if j >= 2 && f.ctext(j - 2) == "as" && f.ckind(j - 1) == TokenKind::Ident {
            j -= 2;
        } else {
            break;
        }
    }
    if j == 0 {
        return None;
    }
    match f.ckind(j - 1) {
        TokenKind::Ident | TokenKind::Num => {}
        _ => return None,
    }
    let mut segs = vec![f.ctext(j - 1).to_string()];
    let mut k = j - 1;
    while k >= 2 {
        let sep_dot = f.ctext(k - 1) == ".";
        let sep_path = k >= 3 && f.ctext(k - 1) == ":" && f.ctext(k - 2) == ":";
        if sep_dot && f.ckind(k.wrapping_sub(2)) == TokenKind::Ident {
            segs.push(f.ctext(k - 2).to_string());
            k -= 2;
        } else if sep_path && k >= 3 && f.ckind(k - 3) == TokenKind::Ident {
            segs.push(f.ctext(k - 3).to_string());
            k -= 3;
        } else {
            break;
        }
    }
    segs.reverse();
    Some(segs)
}

/// Reads an operand path forwards from code position `start`. Returns the
/// segment idents, or None when the operand is a complex expression.
fn operand_forward(f: &FileIndex, start: usize) -> Option<Vec<String>> {
    let mut i = start;
    // Unary borrow/deref on the operand is transparent.
    while matches!(f.ctext(i), "&" | "*" | "mut") {
        i += 1;
    }
    match f.ckind(i) {
        TokenKind::Ident | TokenKind::Num => {}
        _ => return None,
    }
    let mut segs = vec![f.ctext(i).to_string()];
    let mut k = i + 1;
    loop {
        if f.ctext(k) == "." && f.ckind(k + 1) == TokenKind::Ident {
            segs.push(f.ctext(k + 1).to_string());
            k += 2;
        } else if f.ctext(k) == ":" && f.ctext(k + 1) == ":" && f.ckind(k + 2) == TokenKind::Ident {
            segs.push(f.ctext(k + 2).to_string());
            k += 3;
        } else {
            break;
        }
    }
    // A call like `f(...)` is a complex operand, not a path.
    if f.ctext(k) == "(" {
        return None;
    }
    Some(segs)
}

/// The fn item whose body contains code position `i`, if any.
fn enclosing_fn(f: &FileIndex, i: usize) -> Option<(usize, usize)> {
    f.fns
        .iter()
        .filter_map(|item| item.body)
        .filter(|&(open, close)| open <= i && i <= close)
        .min_by_key(|&(open, close)| close - open)
}

/// Scans back from the cast position to the start of the enclosing
/// sub-expression looking for an inline bounding operation (`%`, `.min(`,
/// `& LITERAL`), e.g. `(cycle % 16) as u8`.
fn inline_bounded_before(f: &FileIndex, cast_pos: usize) -> bool {
    let mut depth = 0i64;
    let mut i = cast_pos;
    while i > 0 {
        i -= 1;
        match f.ctext(i) {
            ")" => depth += 1,
            "(" => {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            }
            ";" | "{" | "}" | "=" | "," if depth == 0 => return false,
            "%" => return true,
            "min" if f.ctext(i.wrapping_sub(1)) == "." => return true,
            "&" if f.ckind(i + 1) == TokenKind::Num => return true,
            _ => {}
        }
    }
    false
}

fn push(
    out: &mut Vec<Diagnostic>,
    f: &FileIndex,
    rule: Rule,
    line: usize,
    col: usize,
    message: String,
) {
    out.push(Diagnostic {
        rule,
        file: f.rel.clone(),
        line,
        col,
        snippet: f.snippet(line),
        message,
    });
}

/// All per-file rules.
fn check_one(
    f: &FileIndex,
    scopes: &Scopes,
    facts: &BTreeMap<String, Vec<FnFact>>,
    out: &mut Vec<Diagnostic>,
) {
    let rel = f.rel.as_str();
    let sim = scopes.in_sim(rel);
    let det = scopes.in_det(rel);
    let stats = scopes.in_stats(rel);
    let doc = scopes.in_doc(rel);
    let l5 = !scopes.is_runner(rel);
    let l6 = !scopes.may_print(rel);
    let hot = scopes.in_hot(rel);
    let d3 = scopes.in_d3(rel);
    let runner = scopes.is_runner(rel);

    for i in 0..f.code.len() {
        if f.is_test(i) {
            continue;
        }
        let Some(tok) = f.ctok(i) else { continue };
        let (line, col) = (tok.line, tok.col);
        let t = f.ctext(i);

        // --- L1: panic-freedom -------------------------------------------
        if sim {
            if t == "." && f.ctext(i + 2) == "(" {
                let m = f.ctext(i + 1);
                if m == "unwrap" || m == "expect" {
                    let at = f.ctok(i + 1).map_or((line, col), |t| (t.line, t.col));
                    push(
                        out,
                        f,
                        Rule::L1,
                        at.0,
                        at.1,
                        format!(
                            "{m}() in non-test simulator code; return a Result/Option or justify in lint.toml"
                        ),
                    );
                }
            }
            if (t == "panic" || t == "unreachable")
                && tok.kind == TokenKind::Ident
                && f.ctext(i + 1) == "!"
            {
                push(
                    out,
                    f,
                    Rule::L1,
                    line,
                    col,
                    format!("{t}! in non-test simulator code; return a Result/Option or justify in lint.toml"),
                );
            }
            // --- L2: hash-ordered containers -----------------------------
            if (t == "HashMap" || t == "HashSet") && tok.kind == TokenKind::Ident {
                push(
                    out,
                    f,
                    Rule::L2,
                    line,
                    col,
                    format!("{t} in simulator code: iteration order is nondeterministic; use BTreeMap/BTreeSet or a Vec"),
                );
            }
        }

        // --- L5: thread discipline ---------------------------------------
        if l5
            && t == "thread"
            && f.ctext(i + 1) == ":"
            && f.ctext(i + 2) == ":"
            && matches!(f.ctext(i + 3), "spawn" | "scope")
        {
            push(
                out,
                f,
                Rule::L5,
                line,
                col,
                format!(
                    "thread::{} outside the sanctioned runner; route parallelism through simcore::parallel so results stay deterministic",
                    f.ctext(i + 3)
                ),
            );
        }

        // --- L6: print discipline ----------------------------------------
        if l6 && (t == "println" || t == "eprintln") && f.ctext(i + 1) == "!" {
            push(
                out,
                f,
                Rule::L6,
                line,
                col,
                format!("{t}! in library code; report through return values or telemetry — printing belongs to src/bin/ binaries"),
            );
        }

        // --- L7: hot-path allocation -------------------------------------
        if hot {
            if let Some(alloc_line) = alloc_at(f, i) {
                let what = if t == "." {
                    format!("{}()", f.ctext(i + 1))
                } else if t == "vec" {
                    "vec!".to_string()
                } else {
                    format!("{}::{}", t, f.ctext(i + 3))
                };
                push(
                    out,
                    f,
                    Rule::L7,
                    alloc_line,
                    col,
                    format!("{what} in a per-step hot path; preallocate in the constructor or justify a cold path with lint:allow(L7)"),
                );
            }
        }

        // --- L3: narrowing casts in statistics paths ---------------------
        if stats && t == "as" && tok.kind == TokenKind::Ident {
            let target = f.ctext(i + 1);
            if NARROW_TARGETS.contains(&target) {
                push(
                    out,
                    f,
                    Rule::L3,
                    line,
                    col,
                    format!("narrowing `as {target}` cast in a statistics path; use try_into() or a saturating conversion"),
                );
            } else if (target == "u64" || target == "i64")
                && i >= 4
                && f.ctext(i - 1) == ")"
                && f.ctext(i - 2) == "("
                && FLOAT_PRODUCERS.contains(&f.ctext(i - 3))
                && f.ctext(i - 4) == "."
            {
                push(
                    out,
                    f,
                    Rule::L3,
                    line,
                    col,
                    format!("float-to-int `as {target}` cast in a statistics path; bound the value and use try_into()"),
                );
            }
        }

        // --- D1: host nondeterminism -------------------------------------
        if det {
            if (t == "Instant" || t == "SystemTime") && tok.kind == TokenKind::Ident {
                push(
                    out,
                    f,
                    Rule::D1,
                    line,
                    col,
                    format!("{t} is a host clock read; simulation state and output must be a function of the seed and config only"),
                );
            }
            if t == "env"
                && f.ctext(i + 1) == ":"
                && f.ctext(i + 2) == ":"
                && ENV_READS.contains(&f.ctext(i + 3))
            {
                push(
                    out,
                    f,
                    Rule::D1,
                    line,
                    col,
                    format!("env::{} reads the host environment inside a simulation crate; thread configuration through SimConfig instead", f.ctext(i + 3)),
                );
            }
            if t == "thread_rng" || (t == "rand" && f.ctext(i + 1) == ":" && f.ctext(i + 2) == ":")
            {
                push(
                    out,
                    f,
                    Rule::D1,
                    line,
                    col,
                    "host randomness in a simulation crate; use the seeded simcore::rng::SimRng streams".to_string(),
                );
            }
            if t == "available_parallelism" && !runner {
                push(
                    out,
                    f,
                    Rule::D1,
                    line,
                    col,
                    "available_parallelism probes the host inside a simulation crate; only the sanctioned runner may ask".to_string(),
                );
            }
            if !sim && (t == "HashMap" || t == "HashSet") && tok.kind == TokenKind::Ident {
                push(
                    out,
                    f,
                    Rule::D1,
                    line,
                    col,
                    format!("{t} feeds simulation input/output from this crate; iteration order is nondeterministic — use BTreeMap/BTreeSet or a Vec"),
                );
            }

            // --- D2: cycle arithmetic ------------------------------------
            if t == "-"
                && f.ctext(i + 1) != "=" // `-=` compound assignment
                && f.ctext(i + 1) != ">" // `->` return arrow
                && (matches!(f.ckind(i.wrapping_sub(1)), TokenKind::Ident | TokenKind::Num)
                    || matches!(f.ctext(i.wrapping_sub(1)), ")" | "]"))
            {
                let left = operand_back(f, i);
                let right = operand_forward(f, i + 1);
                let lseg = left.as_deref().unwrap_or(&[]);
                let rseg = right.as_deref().unwrap_or(&[]);
                let involved = lseg.iter().chain(rseg).any(|s| cycleish(s));
                if involved {
                    let body = enclosing_fn(f, i).unwrap_or((0, f.code.len()));
                    let lcore = lseg.last().map(String::as_str).unwrap_or("");
                    let rcore = rseg.last().map(String::as_str).unwrap_or("");
                    let guarded = !lcore.is_empty()
                        && !rcore.is_empty()
                        && dataflow::comparison_guard(f, body, i, lcore, rcore);
                    if !guarded {
                        push(
                            out,
                            f,
                            Rule::D2,
                            line,
                            col,
                            format!(
                                "unchecked subtraction on cycle/quota quantity `{}`; guard with an ordering comparison or use saturating_sub/checked_sub",
                                if lcore.is_empty() { rcore } else { lcore }
                            ),
                        );
                    }
                }
            }
            if t == "as" && tok.kind == TokenKind::Ident && NARROW_TARGETS.contains(&f.ctext(i + 1))
            {
                if let Some(segs) = operand_back(f, i) {
                    if segs.iter().any(|s| cycleish(s)) {
                        let body = enclosing_fn(f, i).unwrap_or((0, f.code.len()));
                        let bounds = dataflow::bounded_locals(f, body);
                        let core = segs.last().map(String::as_str).unwrap_or("");
                        let bounded = (segs.len() == 1 && bounds.is_bounded(core))
                            || inline_bounded_before(f, i);
                        if !bounded {
                            push(
                                out,
                                f,
                                Rule::D2,
                                line,
                                col,
                                format!(
                                    "narrowing `as {}` on cycle/quota quantity `{core}` with no bound in scope; bound it (%, .min, mask) or use try_into()",
                                    f.ctext(i + 1)
                                ),
                            );
                        }
                    }
                }
            }
        }

        // --- D3: Sink-genericity -----------------------------------------
        if d3
            && t == "Recorder"
            && tok.kind == TokenKind::Ident
            // `Recorder::CONST` / `Recorder::new(..)` is a path
            // *expression* (construction or associated item), not a type
            // position — even after a struct-literal field `:`.
            && !(f.ctext(i + 1) == ":" && f.ctext(i + 2) == ":")
        {
            // Type position: walk back over `&`, `mut`, lifetimes.
            let mut j = i;
            while j > 0
                && (matches!(f.ctext(j - 1), "&" | "mut") || f.ckind(j - 1) == TokenKind::Lifetime)
            {
                j -= 1;
            }
            let anno = j >= 1 && f.ctext(j - 1) == ":" && (j < 2 || f.ctext(j - 2) != ":");
            let ret = j >= 2 && f.ctext(j - 1) == ">" && f.ctext(j - 2) == "-";
            let targ = j >= 1 && f.ctext(j - 1) == "<";
            if anno || ret || targ {
                push(
                    out,
                    f,
                    Rule::D3,
                    line,
                    col,
                    "component hardwires telemetry::Recorder; take `S: Sink` generically so NullSink compiles the emission away".to_string(),
                );
            }
        }
    }

    // --- L4: doc coverage (item-level) -----------------------------------
    if doc {
        for item in &f.fns {
            if item.is_pub && !item.is_test && !item.has_doc {
                push(
                    out,
                    f,
                    Rule::L4,
                    item.line,
                    item.col,
                    format!("undocumented pub fn `{}`; add a /// doc comment", item.name),
                );
            }
        }
    }

    // --- D4: hot-path allocation, one call deep ---------------------------
    if hot {
        for item in &f.fns {
            if item.is_test {
                continue;
            }
            let Some((open, close)) = item.body else {
                continue;
            };
            for i in open..=close.min(f.code.len().saturating_sub(1)) {
                if f.is_test(i) {
                    continue;
                }
                let t = f.ctext(i);
                if f.ckind(i) != TokenKind::Ident
                    || f.ctext(i + 1) != "("
                    || NOT_CALLEES.contains(&t)
                {
                    continue;
                }
                // Skip definitions (`fn name(`) and method calls
                // (`.name(`) — a method name like `push` or `insert` would
                // collide with std collection methods, and D4's
                // name-based resolution cannot tell them apart. Free and
                // path calls (`helper(...)`, `Table::filled(...)`) are
                // where cross-file hot-path allocation actually hides.
                if i > 0 && matches!(f.ctext(i - 1), "fn" | ".") {
                    continue;
                }
                let Some(callees) = facts.get(t) else {
                    continue;
                };
                if callees.is_empty()
                    || callees.iter().any(|c| c.in_hot)
                    || !callees.iter().all(|c| c.alloc_line.is_some())
                {
                    continue;
                }
                let Some(first) = callees.first() else {
                    continue;
                };
                let (line, col) = f.ctok(i).map_or((0, 0), |t| (t.line, t.col));
                push(
                    out,
                    f,
                    Rule::D4,
                    line,
                    col,
                    format!(
                        "hot path calls `{t}` which allocates ({}:{}); hot-path allocation is forbidden one call level deep — preallocate, or justify with lint:allow(D4)",
                        first.file,
                        first.alloc_line.unwrap_or(first.line),
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, src: &str) -> Vec<Diagnostic> {
        let f = FileIndex::build(rel, src);
        check_files(std::slice::from_ref(&f), &Scopes::default())
    }

    fn check_many(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let idx: Vec<FileIndex> = files
            .iter()
            .map(|(rel, src)| FileIndex::build(rel, src))
            .collect();
        check_files(&idx, &Scopes::default())
    }

    #[test]
    fn l1_flags_unwrap_with_exact_col() {
        let d = check("crates/core/src/l3/adaptive.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L1);
        assert_eq!((d[0].line, d[0].col), (1, 12));
        assert_eq!(d[0].snippet, "fn f() { x.unwrap(); }");
    }

    #[test]
    fn l1_ignores_strings_comments_and_tests() {
        let src = "fn f() -> &'static str { \"x.unwrap()\" } // panic!()\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        assert!(check("crates/core/src/l3/mod.rs", src).is_empty());
    }

    #[test]
    fn l1_ignores_unwrap_or_variants() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_default(); z.unwrap_or_else(|| 1); }\n";
        assert!(check("crates/core/src/cmp.rs", src).is_empty());
    }

    #[test]
    fn l1_flags_panic_and_unreachable() {
        let d = check(
            "crates/cachesim/src/cache.rs",
            "fn f() { panic!(\"boom\"); }\nfn g() { unreachable!() }\n",
        );
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn l2_flags_hashmap() {
        let d = check(
            "crates/cpusim/src/tlb.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L2);
    }

    #[test]
    fn l3_flags_narrowing_and_float_casts_in_stats() {
        let d = check(
            "crates/simcore/src/stats.rs",
            "fn f(v: u64) -> usize { v as usize }\nfn g(x: f64) -> u64 { (x * 2.0).ceil() as u64 }\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::L3).count(), 2);
    }

    #[test]
    fn l3_allows_widening_and_words_containing_as() {
        let src = "fn f(v: u32) -> u64 { v as u64 }\nfn base(assign: u64) -> u64 { assign }\n";
        assert!(check("crates/simcore/src/stats.rs", src).is_empty());
    }

    #[test]
    fn l4_flags_undocumented_pub_fn_only_in_scope() {
        let d = check(
            "crates/core/src/engine.rs",
            "pub fn quota(&self) -> usize { 0 }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L4);
        assert!(d[0].message.contains("quota"));
        assert!(check("crates/core/src/cmp.rs", "pub fn helper() {}\n").is_empty());
    }

    #[test]
    fn l4_accepts_doc_comment_with_attributes_between() {
        let src = "/// Returns the quota.\n#[must_use]\npub fn quota(&self) -> usize { 0 }\n";
        assert!(check("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn l5_flags_threads_outside_the_runner() {
        let d = check(
            "crates/bench/src/figures.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L5);
        let ok = "fn f() { std::thread::scope(|s| {}); }\n";
        assert!(check("crates/simcore/src/parallel/mod.rs", ok).is_empty());
    }

    #[test]
    fn l6_flags_prints_in_library_code_and_exempts_binaries() {
        let d = check(
            "crates/core/src/experiment.rs",
            "fn f() { println!(\"{}\", 1); }\nfn g() { eprintln!(\"oops\"); }\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::L6).count(), 2);
        let src = "fn main() { println!(\"report\"); }\n";
        assert!(check("src/bin/nuca-sim.rs", src).is_empty());
        assert!(check("crates/lint/src/main.rs", src).is_empty());
        assert!(check("examples/quickstart.rs", src).is_empty());
        assert!(check("crates/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l7_flags_allocation_in_hot_paths() {
        let d = check(
            "crates/core/src/l3/adaptive.rs",
            "fn f() { let v: Vec<u8> = Vec::new(); }\nfn g() { let b = Box::new(1); }\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::L7).count(), 2);
        let d = check(
            "crates/cachesim/src/lru.rs",
            "fn f(x: &S) -> S { x.clone() }\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::L7).count(), 1);
    }

    #[test]
    fn d1_flags_clock_env_rand_and_parallelism() {
        let d = check(
            "crates/core/src/engine.rs",
            "fn f() { let t = std::time::Instant::now(); }\nfn g() { let v = std::env::var(\"X\"); }\nfn h() { let r = rand::random::<u8>(); }\nfn p() { let n = std::thread::available_parallelism(); }\n",
        );
        let d1: Vec<_> = d.iter().filter(|d| d.rule == Rule::D1).collect();
        assert_eq!(d1.len(), 4, "{d1:?}");
        assert!(d1[0].message.contains("clock"));
    }

    #[test]
    fn d1_extends_hash_ban_to_tracegen_without_double_reporting() {
        let d = check(
            "crates/tracegen/src/workload.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::D1);
        // In the L2 scope the finding stays L2-only.
        let d = check("crates/core/src/cmp.rs", "use std::collections::HashMap;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::L2);
    }

    #[test]
    fn d1_allows_the_runner_and_tests() {
        let src = "pub fn default_jobs() -> usize { std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1) }\n";
        let d = check("crates/simcore/src/parallel/mod.rs", src);
        assert!(d.iter().all(|d| d.rule != Rule::D1), "{d:?}");
        let test_src = "#[cfg(test)]\nmod t { fn f() { let t = Instant::now(); } }\n";
        assert!(check("crates/simcore/src/rng.rs", test_src).is_empty());
    }

    #[test]
    fn d2_flags_unguarded_cycle_subtraction() {
        let d = check(
            "crates/cpusim/src/l3iface.rs",
            "fn f(wake_cycle: u64, now: u64) -> u64 { wake_cycle - now }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::D2);
        assert!(d[0].message.contains("wake_cycle"));
    }

    #[test]
    fn d2_accepts_guarded_subtraction_and_saturating() {
        let guarded = "fn f(wake_cycle: u64, now_cycle: u64) -> u64 { if wake_cycle >= now_cycle { wake_cycle - now_cycle } else { 0 } }\n";
        assert!(check("crates/cpusim/src/l3iface.rs", guarded).is_empty());
        let sat = "fn f(wake_cycle: u64, now: u64) -> u64 { wake_cycle.saturating_sub(now) }\n";
        assert!(check("crates/cpusim/src/l3iface.rs", sat).is_empty());
        let unrelated = "fn f(a: u64, b: u64) -> u64 { a - b }\n";
        assert!(check("crates/cpusim/src/l3iface.rs", unrelated).is_empty());
    }

    #[test]
    fn d2_flags_unbounded_narrowing_and_accepts_bounded() {
        let raw = "fn f(cycle: u64) -> u32 { cycle as u32 }\n";
        let d = check("crates/core/src/cmp.rs", raw);
        assert_eq!(d.iter().filter(|d| d.rule == Rule::D2).count(), 1);
        let bounded = "fn f(cycle: u64) -> u32 { let w = cycle % 16; w as u32 }\n";
        assert!(check("crates/core/src/cmp.rs", bounded).is_empty());
        let inline = "fn f(cycle: u64) -> u8 { (cycle % 256) as u8 }\n";
        assert!(check("crates/core/src/cmp.rs", inline).is_empty());
    }

    #[test]
    fn d3_flags_type_positions_not_construction() {
        let d = check(
            "crates/core/src/engine.rs",
            "struct Probe { rec: Recorder }\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::D3).count(), 1);
        let d = check(
            "crates/core/src/cmp.rs",
            "fn log_to(rec: &mut Recorder) {}\n",
        );
        assert_eq!(d.iter().filter(|d| d.rule == Rule::D3).count(), 1);
        // Construction at a boundary is fine.
        let ok = "fn run() { let r = Recorder::with_capacity(64); }\n";
        assert!(check("crates/core/src/experiment.rs", ok)
            .iter()
            .all(|d| d.rule != Rule::D3));
        // The defining crate and binaries are exempt.
        assert!(check("crates/telemetry/src/sink.rs", "fn f(r: &Recorder) {}\n").is_empty());
        assert!(check("src/bin/nuca-sim.rs", "fn f(r: &Recorder) {}\n").is_empty());
    }

    #[test]
    fn d4_flags_hot_calls_into_allocating_helpers() {
        let helper = (
            "crates/cachesim/src/shadow.rs",
            "pub fn expand_table(n: usize) -> Vec<u64> { vec![0; n] }\npub fn pure_math(x: u64) -> u64 { x + 1 }\n",
        );
        let hot = (
            "crates/cpusim/src/core.rs",
            "fn step(&mut self) { let t = expand_table(4); let y = pure_math(1); }\n",
        );
        let d = check_many(&[helper, hot]);
        let d4: Vec<_> = d.iter().filter(|d| d.rule == Rule::D4).collect();
        assert_eq!(d4.len(), 1, "{d4:?}");
        assert!(d4[0].message.contains("expand_table"));
        assert!(d4[0].message.contains("shadow.rs"));
        assert_eq!(d4[0].file, "crates/cpusim/src/core.rs");
    }

    #[test]
    fn d4_skips_method_calls_and_out_of_scope_definitions() {
        // `.push(` is a std method even though a workspace fn shares the
        // name; and fns defined outside the sim crates never enter the
        // facts table.
        let files = [
            (
                "crates/lint/src/rules.rs",
                "pub fn push(v: &mut Vec<u8>) { v.extend([0].to_vec()); }\npub fn filled() -> Vec<u8> { vec![0] }\n",
            ),
            (
                "crates/cachesim/src/lru.rs",
                "fn touch(&mut self, x: u8) { self.order.push(x); let t = filled(); }\n",
            ),
        ];
        let d = check_many(&files);
        assert!(d.iter().all(|d| d.rule != Rule::D4), "{d:?}");
    }

    #[test]
    fn d3_skips_path_expressions() {
        let ok = "fn meta() -> usize { Recorder::DEFAULT_CAPACITY }\nfn build() { let m = Meta { cap: Recorder::DEFAULT_CAPACITY }; }\n";
        assert!(check("crates/core/src/experiment.rs", ok)
            .iter()
            .all(|d| d.rule != Rule::D3));
        // The facade CLI owns the concrete recorder: exempt.
        assert!(check("src/cli.rs", "fn drive(rec: Option<&Recorder>) {}\n").is_empty());
    }

    #[test]
    fn d4_skips_hot_callees_and_ambiguous_names() {
        // Callee in a hot file: already under L7, not re-flagged.
        let files = [
            (
                "crates/cachesim/src/lru.rs",
                "pub fn hot_helper() -> Vec<u64> { Vec::new() }\n",
            ),
            (
                "crates/cpusim/src/core.rs",
                "fn step(&mut self) { let t = hot_helper(); }\n",
            ),
        ];
        let d = check_many(&files);
        assert!(d.iter().all(|d| d.rule != Rule::D4), "{d:?}");
        // Ambiguous name with mixed behavior: conservative skip.
        let files = [
            (
                "crates/cachesim/src/shadow.rs",
                "pub fn helper() -> Vec<u64> { vec![0; 4] }\n",
            ),
            ("crates/memsim/src/lib.rs", "pub fn helper() -> u64 { 7 }\n"),
            (
                "crates/cpusim/src/core.rs",
                "fn step(&mut self) { let t = helper(); }\n",
            ),
        ];
        let d = check_many(&files);
        assert!(d.iter().all(|d| d.rule != Rule::D4), "{d:?}");
    }
}
